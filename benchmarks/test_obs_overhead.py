"""Observability overhead: enabled-vs-disabled, identical results.

Two arms, both published to ``benchmarks/results/obs_overhead.json``:

* **simulator** — the ``sim_throughput`` M = 100 operating point run
  with a live :class:`~repro.obs.metrics.MetricsRegistry` vs the
  default null registry.  The run **gates on bit-identical traces**
  (instrumentation must never perturb learning state); the wall-clock
  overhead percentage is recorded, **not** asserted (shared-runner
  jitter must not flake CI — the ≤5 % target is a recorded number the
  artifact history tracks).
* **serve** — a single-client check-in loop against a live
  ``repro-serve`` with and without ``--metrics``; same recording-only
  treatment, plus the enabled arm's scrape must be non-vacuous.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks._harness import publish_table
from benchmarks.test_serve_throughput import (
    BATCH_SIZE as SERVE_BATCH,
    CLASSES,
    DIM,
    spawn_server,
    stop_server,
)
from benchmarks.test_sim_throughput import _config, _data
from repro.core.protocol import CheckinMessage, CheckoutRequest
from repro.evaluation import assert_traces_identical
from repro.models import MulticlassLogisticRegression
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServiceClient
from repro.simulation import CrowdSimulator

REPEATS = 5  # best-of-N wall clock per arm (arms interleaved pairwise)
SIM_DEVICES = 100


def _sim_samples() -> int:
    return 120 if os.environ.get("REPRO_SCALE", "benchmark") == "smoke" else 200


def _serve_rounds() -> int:
    return 40 if os.environ.get("REPRO_SCALE", "benchmark") == "smoke" else 120


def _run_sim_once(parts, test, metrics):
    simulator = CrowdSimulator(
        MulticlassLogisticRegression(50, 10), parts, test,
        _config(SIM_DEVICES), seed=0, metrics=metrics,
    )
    start = time.perf_counter()
    trace = simulator.run()
    return trace, time.perf_counter() - start


def test_sim_overhead_and_parity():
    parts, test = _data(SIM_DEVICES, _sim_samples())
    registry = MetricsRegistry("overhead-bench")

    # Warm-up run (allocator, numpy caches), then interleave the arms,
    # alternating which goes first in each pair so run-position bias
    # cancels; best-of-N per arm is the overhead estimate.
    _run_sim_once(parts, test, metrics=None)
    disabled_time = enabled_time = None
    for repeat in range(REPEATS):
        order = [None, registry] if repeat % 2 == 0 else [registry, None]
        for metrics in order:
            trace, elapsed = _run_sim_once(parts, test, metrics=metrics)
            if metrics is None:
                disabled_trace = trace
                disabled_time = elapsed if disabled_time is None \
                    else min(disabled_time, elapsed)
            else:
                enabled_trace = trace
                enabled_time = elapsed if enabled_time is None \
                    else min(enabled_time, elapsed)

    # THE GATE: metrics are pure observation — the traces match bit for
    # bit, so golden curves and every downstream artifact are untouched.
    assert_traces_identical(disabled_trace, enabled_trace,
                            context="obs enabled vs disabled")
    np.testing.assert_array_equal(disabled_trace.final_parameters,
                                  enabled_trace.final_parameters)

    # The enabled arm really measured something.
    snapshot = registry.snapshot()
    counters = {c["name"]: c["value"] for c in snapshot["counters"]}
    assert counters["sim_runs_total"] == REPEATS
    assert counters["sim_samples_total"] == \
        REPEATS * enabled_trace.total_samples_consumed
    assert counters["sim_events_total"] > 0

    samples = disabled_trace.total_samples_consumed
    overhead_pct = 100.0 * (enabled_time - disabled_time) / disabled_time
    rows = {
        "simulator_M=100": {
            "samples": samples,
            "samples_per_sec_disabled": round(samples / disabled_time, 1),
            "samples_per_sec_enabled": round(samples / enabled_time, 1),
            "overhead_pct": round(overhead_pct, 2),
            "overhead_target_pct": 5.0,
            "bit_identical": True,
        },
    }
    text = (
        "obs_overhead simulator arm (M=100 operating point; timing "
        "non-gating, parity gated)\n"
        f"  disabled : {samples} samples in {disabled_time:.3f}s = "
        f"{samples / disabled_time:.0f} samples/s\n"
        f"  enabled  : {samples} samples in {enabled_time:.3f}s = "
        f"{samples / enabled_time:.0f} samples/s\n"
        f"  overhead : {overhead_pct:+.2f}% (target <= 5%; bit-identical "
        "traces)"
    )
    _publish_merged(text, rows)


def _drive_serve(url: str, num_rounds: int) -> float:
    model = MulticlassLogisticRegression(DIM, CLASSES)
    rng = np.random.default_rng(4242)
    client = ServiceClient(url, timeout=10.0)
    token = client.join(0)
    start = time.perf_counter()
    for seq in range(num_rounds):
        response = client.checkout(CheckoutRequest(0, token, 0.0))
        client.checkins([CheckinMessage(
            device_id=0, token=token,
            gradient=rng.normal(size=model.num_parameters),
            num_samples=SERVE_BATCH, noisy_error_count=0,
            noisy_label_counts=rng.integers(0, 5, size=CLASSES),
            checkout_iteration=response.server_iteration,
            checkin_seq=seq,
        )])
    return time.perf_counter() - start


def test_serve_overhead():
    num_rounds = _serve_rounds()

    process, url = spawn_server(max_iterations=10**7)
    try:
        disabled_time = _drive_serve(url, num_rounds)
        status = ServiceClient(url).status()
        assert status.iteration == num_rounds
    finally:
        stop_server(process)

    process, url = spawn_server(max_iterations=10**7, extra=("--metrics",))
    try:
        enabled_time = _drive_serve(url, num_rounds)
        scraped = ServiceClient(url).metrics_snapshot()
        assert scraped["enabled"] is True
        checkins = [
            c["value"] for c in scraped["counters"]
            if c["name"] == "service_requests_total"
            and c["labels"].get("endpoint") == "checkins"
        ]
        assert checkins == [num_rounds]  # non-vacuous scrape
    finally:
        stop_server(process)

    overhead_pct = 100.0 * (enabled_time - disabled_time) / disabled_time
    rows = {
        "serve_single_client": {
            "rounds": num_rounds,
            "rounds_per_sec_disabled": round(num_rounds / disabled_time, 1),
            "rounds_per_sec_enabled": round(num_rounds / enabled_time, 1),
            "overhead_pct": round(overhead_pct, 2),
            "server_errors": 0,
        },
    }
    text = (
        "obs_overhead serve arm (single client loop; timing non-gating)\n"
        f"  disabled : {num_rounds} rounds in {disabled_time:.3f}s = "
        f"{num_rounds / disabled_time:.0f} rounds/s\n"
        f"  enabled  : {num_rounds} rounds in {enabled_time:.3f}s = "
        f"{num_rounds / enabled_time:.0f} rounds/s (--metrics)\n"
        f"  overhead : {overhead_pct:+.2f}%"
    )
    _publish_merged(text, rows)


def _publish_merged(text: str, rows: dict) -> None:
    """Merge arms from both tests into one ``obs_overhead`` artifact.

    The text table keeps one block per arm (keyed by the block's first
    line), so re-running either test replaces its own block instead of
    appending forever.
    """
    import json

    from benchmarks._harness import RESULTS_DIR

    json_path = os.path.join(RESULTS_DIR, "obs_overhead.json")
    txt_path = os.path.join(RESULTS_DIR, "obs_overhead.txt")
    arms: dict = {}
    blocks: dict = {}
    if os.path.exists(json_path):
        with open(json_path) as handle:
            arms = json.load(handle).get("arms", {})
    if os.path.exists(txt_path):
        with open(txt_path) as handle:
            for block in handle.read().strip("\n").split("\n\n"):
                if block:
                    blocks[block.splitlines()[0]] = block
    arms.update(rows)
    blocks[text.splitlines()[0]] = text
    publish_table("obs_overhead", "\n\n".join(blocks.values()), arms)
