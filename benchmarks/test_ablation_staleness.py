"""Ablation A4 — Section IV-B3 staleness model vs measurement.

The paper estimates the number of interleaved updates per round trip as
roughly (τ_co + τ_ci)·M·F_s / b.  The event-driven simulator measures the
realized staleness of every applied gradient; this bench compares model
and measurement across (τ, b) and verifies the 1/b staleness reduction
that makes Fig. 6's b = 20 arms delay-proof.
"""

import numpy as np
import pytest

from benchmarks._harness import publish_table, run_once
from repro.analysis import SystemShape, staleness_for_uniform_delay
from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.network import LinkDelays
from repro.simulation import CrowdSimulator, SimulationConfig

DEVICES = 50


def measure(train, test, batch_size, tau):
    config = SimulationConfig(
        num_devices=DEVICES,
        batch_size=batch_size,
        link_delays=LinkDelays.uniform(tau),
        learning_rate_constant=30.0,
        num_passes=2,
    )
    parts = iid_partition(train, DEVICES, np.random.default_rng(0))
    trace = CrowdSimulator(
        MulticlassLogisticRegression(50, 10), parts, test, config, seed=0
    ).run()
    return trace.mean_staleness


def run_ablation():
    train, test = make_mnist_like(num_train=3000, num_test=300)
    rows = []
    for b in (1, 20):
        for tau in (0.5, 2.0, 8.0):
            shape = SystemShape(DEVICES, 50, 10, batch_size=b, sampling_rate=1.0)
            predicted = staleness_for_uniform_delay(shape, tau)
            measured = measure(train, test, b, tau)
            rows.append((b, tau, predicted, measured))
    return rows


def test_staleness_model(benchmark):
    rows = run_once(benchmark, run_ablation)
    lines = [f"{'b':>4} {'tau':>6} {'model':>10} {'measured':>10}"]
    for b, tau, predicted, measured in rows:
        lines.append(f"{b:>4d} {tau:>6.1f} {predicted:>10.2f} {measured:>10.2f}")
    publish_table("ablation_staleness", "\n".join(lines))

    for b, tau, predicted, measured in rows:
        # The closed form is a rough upper estimate; measurements sit below
        # it (waiting devices batch up) but within a small factor.
        assert measured <= predicted * 1.2 + 1.0
        if tau >= 2.0:
            assert measured >= predicted / 10

    # Staleness grows with tau and shrinks with b.
    by_key = {(b, tau): m for b, tau, _, m in rows}
    assert by_key[(1, 8.0)] > by_key[(1, 0.5)]
    assert by_key[(20, 8.0)] < by_key[(1, 8.0)]
