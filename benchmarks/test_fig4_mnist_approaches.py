"""Fig. 4 — MNIST-like: centralized vs crowd vs decentralized (E2).

Paper claims (no privacy, no delay, b = 1):
* Central (batch) reaches the lowest error (~0.1), tied by Crowd-ML;
* Crowd-ML's incremental curve converges to the same floor;
* Decentralized converges slower AND plateaus much higher (~0.5) despite
  consuming the same total number of samples.
"""

from benchmarks._harness import publish_table, run_once
from repro.experiments import run_fig4_experiment


def test_fig4_mnist_approaches(benchmark, scale):
    result = run_once(benchmark, run_fig4_experiment, scale)
    publish_table("fig4", result.format_table(), result)

    batch = result.reference_lines["Central (batch)"]
    crowd = result.curves["Crowd-ML (SGD)"]
    decentral = result.curves["Decentral (SGD)"]

    # Batch hits the dataset's ~0.1 floor.
    assert batch < 0.18

    # Crowd-ML ties batch (within a small tolerance of the floor).
    assert crowd.tail_error() <= batch + 0.05

    # Decentralized plateaus far above both.
    assert decentral.final_error > crowd.tail_error() + 0.15

    # Crowd-ML's curve decreases over time (incremental convergence).
    assert crowd.errors[-1] < crowd.errors[0]
