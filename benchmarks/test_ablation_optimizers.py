"""Ablation A3 — Remark 3: alternative server update rules under DP noise.

Compares plain projected SGD (Eq. 3), AdaGrad, and Polyak-averaged SGD as
the server optimizer while devices release ε = 10 Laplace-noised gradients.
Remark 3's claim: these swaps need no device-side change and adaptive rates
provide robustness to large noisy gradients.
"""

import numpy as np
import pytest

from benchmarks._harness import publish_table, run_once
from repro.core import CrowdMLServer, Device, DeviceConfig, ServerConfig
from repro.core.protocol import CheckoutRequest
from repro.data import iid_partition, make_mnist_like
from repro.evaluation import test_error as compute_test_error
from repro.models import MulticlassLogisticRegression
from repro.optim import SGD, AdaGrad, AveragedSGD, InverseSqrtRate, L2BallProjection


def drive(server, model, parts, epsilon, seed, num_passes=3):
    """Run synchronous passes of device check-ins against `server`."""
    rng = np.random.default_rng(seed)
    config = DeviceConfig.default(batch_size=10, num_classes=10, epsilon=epsilon)
    devices = {}
    for index in range(len(parts)):
        token = server.register_device(index)
        devices[index] = (Device(index, model, config, token, rng), token)
    for _ in range(num_passes):
        for index, local in enumerate(parts):
            device, token = devices[index]
            for x, y in local.samples():
                if device.observe(x, y):
                    device.mark_checkout_requested()
                    response = server.handle_checkout(
                        CheckoutRequest(index, token, 0.0)
                    )
                    result = device.complete_checkout(
                        response.parameters, response.server_iteration
                    )
                    server.handle_checkin(result.message)


def run_ablation():
    train, test = make_mnist_like(num_train=6000, num_test=1500)
    epsilon = 10.0
    model = MulticlassLogisticRegression(50, 10, l2_regularization=1e-4)
    parts = iid_partition(train, 60, np.random.default_rng(0))
    projection = L2BallProjection(100.0)

    optimizers = {
        "SGD (Eq. 3)": lambda: SGD(
            model.init_parameters(), InverseSqrtRate(30.0), projection
        ),
        "AdaGrad": lambda: AdaGrad(
            model.init_parameters(), constant=0.35, projection=projection
        ),
        # Average only the settled tail: with ~1800 noisy updates total,
        # averaging the descent phase would drag the estimate backward.
        "Averaged SGD": lambda: AveragedSGD(
            model.init_parameters(), InverseSqrtRate(30.0), projection, burn_in=1200
        ),
    }
    rows = {}
    for name, make_optimizer in optimizers.items():
        optimizer = make_optimizer()
        server = CrowdMLServer(model, optimizer, ServerConfig(max_iterations=10**9))
        drive(server, model, parts, epsilon, seed=1)
        params = (
            optimizer.averaged_parameters
            if isinstance(optimizer, AveragedSGD)
            else server.parameters
        )
        rows[name] = compute_test_error(model, params, test)
    return rows


def test_remark3_optimizer_swaps(benchmark):
    rows = run_once(benchmark, run_ablation)
    lines = [f"{name:<16} test error {error:.3f}" for name, error in rows.items()]
    publish_table("ablation_optimizers", "\n".join(lines),
                  {name: {"final_error": error}
                   for name, error in rows.items()})

    # Every update rule learns under DP noise (well below chance 0.9).
    for name, error in rows.items():
        assert error < 0.65, name

    # Averaging should not be (much) worse than the raw final iterate.
    assert rows["Averaged SGD"] <= rows["SGD (Eq. 3)"] + 0.1
