"""Fig. 8 — CIFAR-like under privacy ε⁻¹ = 0.1 (E6, Appendix D).

Same claims as Fig. 5 with a higher error floor.
"""

from benchmarks._harness import publish_table, run_once
from repro.experiments import run_fig8_experiment


def test_fig8_cifar_privacy(benchmark, scale):
    result = run_once(benchmark, run_fig8_experiment, scale)
    publish_table("fig8", result.format_table(), result)

    tails = result.tail_errors()
    private_batch = result.reference_lines["Central (batch)"]

    # Crowd-ML b=20 beats the input-perturbed central batch.  The margin
    # widens with iteration count (the paper runs 250k iterations; the
    # benchmark scale runs ~36k), so assert the direction with a modest
    # floor rather than the paper's full gap.
    assert tails["Crowd-ML (SGD,b=20)"] < private_batch - 0.05

    # Monotone improvement with b.
    assert tails["Crowd-ML (SGD,b=20)"] < tails["Crowd-ML (SGD,b=1)"]

    # Central SGD with perturbed inputs stays near-useless.
    for b in (1, 10, 20):
        assert tails[f"Central (SGD,b={b})"] > 0.6
