"""Fig. 7 — CIFAR-like: approaches comparison (E5, Appendix D).

Same claims as Fig. 4 but on the harder object-recognition features:
the common error floor sits near 0.3 instead of 0.1.
"""

from benchmarks._harness import publish_table, run_once
from repro.experiments import run_fig7_experiment


def test_fig7_cifar_approaches(benchmark, scale):
    result = run_once(benchmark, run_fig7_experiment, scale)
    publish_table("fig7", result.format_table(), result)

    batch = result.reference_lines["Central (batch)"]
    crowd = result.curves["Crowd-ML (SGD)"]
    decentral = result.curves["Decentral (SGD)"]

    # The CIFAR-like floor is higher than MNIST's (paper: ~0.3 vs ~0.1).
    assert 0.2 < batch < 0.45

    # Crowd-ML ties the batch floor.
    assert crowd.tail_error() <= batch + 0.06

    # Decentralized plateaus well above.
    assert decentral.final_error > crowd.tail_error() + 0.12
