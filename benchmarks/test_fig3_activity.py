"""Fig. 3 — activity recognition on 7 devices (DESIGN.md E1).

Regenerates the time-averaged prediction-error curves for a sweep of
learning-rate constants.  Paper claims: the curves for different c are
similar and virtually converge within ~50 samples (~7 per device).
"""

import numpy as np

from benchmarks._harness import publish_table, run_once
from repro.experiments import run_fig3_experiment


def test_fig3_activity_recognition(benchmark):
    result = run_once(benchmark, run_fig3_experiment)
    publish_table("fig3", result.format_table(), result)

    curves = result.curves
    assert len(curves) == 4

    # Claim 1: every curve improves over its start (learning happens) and
    # ends below chance (2/3 for 3 classes with label-change sampling).
    for name, curve in curves.items():
        assert curve.errors[-1] < 0.62, name

    # Claim 2: after ~50 samples the curves are in a common band — the
    # paper's "very similar and virtually converge after only 50 samples".
    at_50 = [curve.value_at(50) for curve in curves.values()]
    finals = [curve.final_error for curve in curves.values()]
    assert max(finals) - min(finals) < 0.35

    # Claim 3: the error at 300 samples is no worse than shortly after
    # convergence onset (no divergence for any c in the sweep).
    for name, curve in curves.items():
        assert curve.final_error <= curve.value_at(50) + 0.05, name
