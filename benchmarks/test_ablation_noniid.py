"""Ablation A9 — label-skewed (non-i.i.d.) device data.

The paper's trials assign samples to devices uniformly at random; real
crowds are skewed (each phone sees its owner's habits).  Crowd-ML pools
gradients at the server, so — unlike the decentralized approach, whose
per-device models can only learn the classes they see — global accuracy
should degrade only mildly as per-device label diversity collapses.
"""

import numpy as np
import pytest

from benchmarks._harness import publish_table, run_once
from repro.baselines import DecentralizedTrainer
from repro.data import (
    dirichlet_partition,
    iid_partition,
    make_mnist_like,
    shard_partition,
)
from repro.models import MulticlassLogisticRegression
from repro.optim import InverseSqrtRate
from repro.simulation import SimulationConfig, run_crowd_trials

DEVICES = 100


def model_factory():
    return MulticlassLogisticRegression(50, 10, l2_regularization=1e-4)


def run_ablation():
    train, test = make_mnist_like(num_train=6000, num_test=1200)
    partitions = {
        "iid": iid_partition,
        "dirichlet a=0.5": lambda ds, m, rng: dirichlet_partition(ds, m, rng, 0.5),
        "dirichlet a=0.1": lambda ds, m, rng: dirichlet_partition(ds, m, rng, 0.1),
        "shards x2": lambda ds, m, rng: shard_partition(ds, m, rng, 2),
    }
    rows = []
    for name, partition in partitions.items():
        config = SimulationConfig(
            num_devices=DEVICES, learning_rate_constant=30.0,
            l2_regularization=1e-4, num_passes=3,
        )
        crowd = run_crowd_trials(
            model_factory, train, test, config, num_trials=1, partition=partition,
        ).tail_error()
        parts = partition(train, DEVICES, np.random.default_rng(0))
        local = DecentralizedTrainer(
            model_factory(), InverseSqrtRate(30.0), evaluation_devices=8
        ).fit(parts, test, np.random.default_rng(1), num_passes=3).curve.final_error
        rows.append((name, crowd, local))
    return rows


def test_noniid_robustness(benchmark):
    rows = run_once(benchmark, run_ablation)
    lines = [f"{'partition':<18} {'crowd':>8} {'decentral':>10}"]
    for name, crowd, local in rows:
        lines.append(f"{name:<18} {crowd:>8.3f} {local:>10.3f}")
    publish_table("ablation_noniid", "\n".join(lines),
                  {name: {"crowd": crowd, "decentralized": local}
                   for name, crowd, local in rows})

    by_name = {r[0]: r for r in rows}
    iid_crowd = by_name["iid"][1]

    # Crowd-ML degrades only mildly under heavy skew (pooled gradients).
    for name, crowd, local in rows:
        assert crowd < iid_crowd + 0.15, name

    # The decentralized approach collapses under skew: devices trained on
    # ~2 classes cannot classify 10.  Crowd-ML dominates it everywhere,
    # and the gap widens as skew grows.
    for name, crowd, local in rows:
        assert crowd < local, name
    iid_gap = by_name["iid"][2] - by_name["iid"][1]
    shard_gap = by_name["shards x2"][2] - by_name["shards x2"][1]
    assert shard_gap > iid_gap
