"""Serve smoke + throughput: a live ``repro-serve`` process under load.

The CI ``serve-smoke`` job runs this module.  It spawns the real
``repro-serve`` console entry point (a subprocess, loopback port 0),
then:

1. **Parity gate** — a full ``CrowdSimulator`` training run through
   :class:`~repro.serve.remote.HttpTransport` against the live process
   must end **bit-identical** (final parameters, curve, counters) to the
   in-process :class:`~repro.network.transport.DirectTransport` run of
   the same spec.  This is the assertion the job gates on.
2. **Concurrent smoke** — ≥ 8 :class:`~repro.serve.RemoteDevice`
   threads drive the same server at once; the run must finish with zero
   server-side errors and ``iterations == accepted check-ins``.
3. **Throughput** — sequential and concurrent HTTP round trips per
   second, published to ``benchmarks/results/serve_throughput.json``.
   Wall-clock numbers are recorded, **not** asserted (shared-runner
   jitter must not flake CI).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time

import numpy as np

from benchmarks._harness import publish_table
from repro.core.config import DeviceConfig
from repro.data import iid_partition, make_mnist_like
from repro.evaluation import assert_traces_identical
from repro.models import MulticlassLogisticRegression
from repro.serve import HttpTransport, RemoteDevice, ServiceClient
from repro.simulation import CrowdSimulator, SimulationConfig

DIM, CLASSES = 50, 10
NUM_DEVICES = 8
BATCH_SIZE = 5
LEARNING_RATE = 1.0
PROJECTION_RADIUS = 100.0
SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _scale():
    if os.environ.get("REPRO_SCALE", "benchmark") == "smoke":
        return 400, 40  # training samples, smoke-round samples per device
    return 1600, 120


def spawn_server(max_iterations: int):
    """Launch the actual repro-serve entry point; returns (process, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli",
         "--num-features", str(DIM), "--num-classes", str(CLASSES),
         "--learning-rate-constant", str(LEARNING_RATE),
         "--projection-radius", str(PROJECTION_RADIUS),
         "--max-iterations", str(max_iterations),
         "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    line = process.stdout.readline()
    match = re.match(r"serving on (http://[\d.]+:\d+)$", line.strip())
    assert match, f"repro-serve did not announce a URL: {line!r}"
    url = match.group(1)
    client = ServiceClient(url, timeout=10)
    deadline = time.time() + 15
    while time.time() < deadline:
        try:
            client.status()
            break
        except Exception:
            time.sleep(0.05)
    else:
        raise AssertionError("repro-serve never became reachable")
    return process, url


def stop_server(process) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=15)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=15)


def test_serve_smoke_and_throughput():
    num_train, smoke_samples = _scale()
    train, test = make_mnist_like(num_train=num_train, num_test=100, seed=0)
    parts = iid_partition(train, NUM_DEVICES, np.random.default_rng(0))
    total = sum(len(p) for p in parts)
    base = dict(num_devices=NUM_DEVICES, batch_size=BATCH_SIZE, num_snapshots=4)
    model = MulticlassLogisticRegression(DIM, CLASSES)

    # In-process reference (the parity target).
    direct = CrowdSimulator(
        model, parts, test, SimulationConfig(transport="direct", **base), seed=3,
    ).run()

    process, url = spawn_server(max_iterations=total + 1)
    try:
        start = time.perf_counter()
        http = CrowdSimulator(
            model, parts, test,
            SimulationConfig(transport="http", server_url=url, **base),
            seed=3,
        ).run()
        sequential_elapsed = time.perf_counter() - start

        # THE GATE: learning-state parity with DirectTransport, bit for bit.
        assert_traces_identical(direct, http, context="serve_smoke")
        assert np.array_equal(direct.final_parameters, http.final_parameters)
        status = ServiceClient(url).status()
        assert status.iteration == direct.server_iterations
        sequential_rounds = http.communication.checkins_delivered
        sequential_rps = sequential_rounds / max(sequential_elapsed, 1e-9)
    finally:
        stop_server(process)

    # Concurrent multi-client smoke on a fresh server.
    process, url = spawn_server(max_iterations=10**7)
    try:
        transport = HttpTransport(ServiceClient(url))
        failures: list[Exception] = []

        def drive(device_index: int) -> None:
            try:
                rng = np.random.default_rng(300 + device_index)
                remote = RemoteDevice.join(
                    transport, device_index, MulticlassLogisticRegression(DIM, CLASSES),
                    DeviceConfig.default(batch_size=BATCH_SIZE, num_classes=CLASSES),
                    np.random.default_rng(device_index),
                )
                for _ in range(smoke_samples):
                    if remote.observe(rng.normal(size=DIM),
                                      int(rng.integers(CLASSES))):
                        assert remote.run_round() is not None
            except Exception as error:  # noqa: BLE001
                failures.append(error)

        threads = [
            threading.Thread(target=drive, args=(m,)) for m in range(NUM_DEVICES)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        concurrent_elapsed = time.perf_counter() - start

        assert not failures, failures[0]
        expected_rounds = NUM_DEVICES * (smoke_samples // BATCH_SIZE)
        status = ServiceClient(url).status()
        # Zero server errors + every completed round applied exactly once.
        assert status.rejected_messages == 0
        assert status.iteration == expected_rounds
        concurrent_rps = expected_rounds / max(concurrent_elapsed, 1e-9)
    finally:
        stop_server(process)

    metrics = {
        "sequential": {
            "rounds": sequential_rounds,
            "seconds": round(sequential_elapsed, 4),
            "rounds_per_sec": round(sequential_rps, 1),
            "bit_identical_to_direct": True,
        },
        "concurrent": {
            "devices": NUM_DEVICES,
            "rounds": expected_rounds,
            "seconds": round(concurrent_elapsed, 4),
            "rounds_per_sec": round(concurrent_rps, 1),
            "server_errors": 0,
        },
    }
    lines = [
        "serve_throughput (loopback repro-serve subprocess; timing non-gating)",
        f"  sequential : {sequential_rounds} rounds in "
        f"{sequential_elapsed:.2f}s = {sequential_rps:.0f} rounds/s "
        f"(bit-identical to DirectTransport)",
        f"  concurrent : {NUM_DEVICES} devices x "
        f"{expected_rounds // NUM_DEVICES} rounds in "
        f"{concurrent_elapsed:.2f}s = {concurrent_rps:.0f} rounds/s "
        f"(0 server errors)",
    ]
    publish_table("serve_throughput", "\n".join(lines), metrics)
