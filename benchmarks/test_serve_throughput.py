"""Serve smoke + throughput: a live ``repro-serve`` process under load.

The CI ``serve-smoke`` job runs this module.  It spawns the real
``repro-serve`` console entry point (a subprocess, loopback port 0),
then:

1. **Parity gate** — a full ``CrowdSimulator`` training run through
   :class:`~repro.serve.remote.HttpTransport` against the live process
   must end **bit-identical** (final parameters, curve, counters) to the
   in-process :class:`~repro.network.transport.DirectTransport` run of
   the same spec.  This is the assertion the job gates on.
2. **Concurrent smoke** — ≥ 8 :class:`~repro.serve.RemoteDevice`
   threads drive the same server at once; the run must finish with zero
   server-side errors and ``iterations == accepted check-ins``.
3. **Throughput** — sequential and concurrent HTTP round trips per
   second, published to ``benchmarks/results/serve_throughput.json``.
   Wall-clock numbers are recorded, **not** asserted (shared-runner
   jitter must not flake CI).
4. **Gateway tier** — a 256-device crowd behind
   :class:`~repro.gateway.edge.EdgeGateway`\\ s, swept over
   devices-per-gateway.  Two assertions gate: the batched tier must
   clear **≥ 10×** the per-device rounds/s at 256 devices with zero
   server errors, and a sequential pass-through gateway must land on
   **bit-identical** final parameters to an in-process
   ``Device``/``ServerCore`` replay of the same schedule.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

from benchmarks._harness import RESULTS_DIR, publish_table
from repro.core.config import DeviceConfig, ServerConfig
from repro.core.device import Device
from repro.core.protocol import CheckinMessage, CheckoutRequest
from repro.core.server_core import ServerCore
from repro.data import iid_partition, make_mnist_like
from repro.evaluation import assert_traces_identical
from repro.gateway import TwoTierTopology
from repro.gateway.edge import EdgeGateway
from repro.models import MulticlassLogisticRegression
from repro.optim import paper_sgd
from repro.serve import HttpTransport, RemoteDevice, ServiceClient
from repro.simulation import CrowdSimulator, SimulationConfig

DIM, CLASSES = 50, 10
NUM_DEVICES = 8
BATCH_SIZE = 5
LEARNING_RATE = 1.0
PROJECTION_RADIUS = 100.0
SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _scale():
    if os.environ.get("REPRO_SCALE", "benchmark") == "smoke":
        return 400, 40  # training samples, smoke-round samples per device
    return 1600, 120


def spawn_server(max_iterations: int, extra: tuple = ()):
    """Launch the actual repro-serve entry point; returns (process, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli",
         "--num-features", str(DIM), "--num-classes", str(CLASSES),
         "--learning-rate-constant", str(LEARNING_RATE),
         "--projection-radius", str(PROJECTION_RADIUS),
         "--max-iterations", str(max_iterations),
         "--port", "0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    line = process.stdout.readline()
    match = re.match(r"serving on (http://[\d.]+:\d+)$", line.strip())
    assert match, f"repro-serve did not announce a URL: {line!r}"
    url = match.group(1)
    client = ServiceClient(url, timeout=10)
    deadline = time.time() + 15
    while time.time() < deadline:
        try:
            client.status()
            break
        except Exception:
            time.sleep(0.05)
    else:
        raise AssertionError("repro-serve never became reachable")
    return process, url


def spawn_sharded_server(num_workers: int, state_dir: str,
                         max_iterations: int):
    """Launch ``repro-serve --workers N``; returns (process, frontend_url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli",
         "--num-features", str(DIM), "--num-classes", str(CLASSES),
         "--learning-rate-constant", str(LEARNING_RATE),
         "--projection-radius", str(PROJECTION_RADIUS),
         "--max-iterations", str(max_iterations),
         "--port", "0", "--workers", str(num_workers),
         "--state-dir", state_dir],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    line = process.stdout.readline()
    match = re.match(r"serving on (http://[\d.]+:\d+)$", line.strip())
    assert match, f"sharded repro-serve did not announce a URL: {line!r}"
    url = match.group(1)
    client = ServiceClient(url, timeout=10)
    deadline = time.time() + 30
    while time.time() < deadline:
        try:
            client.status()
            break
        except Exception:
            time.sleep(0.05)
    else:
        raise AssertionError("sharded repro-serve never became reachable")
    return process, url


def scrape_latency_percentiles(url: str) -> dict:
    """Per-endpoint p50/p95/p99 (ms) from a live ``/v1/metrics`` scrape.

    The server must have been spawned with ``--metrics``; percentiles
    are exact over the histogram's retention window (single process).
    """
    snapshot = ServiceClient(url).metrics_snapshot()
    assert snapshot["enabled"], "scrape target was not spawned with --metrics"
    out: dict = {}
    for hist in snapshot["histograms"]:
        if hist["name"] != "service_request_seconds":
            continue
        endpoint = hist["labels"].get("endpoint", "other")
        if not hist["count"]:
            continue
        pcts = hist["percentiles"]
        out[endpoint] = {
            "count": hist["count"],
            "p50_ms": round(pcts["p50"] * 1e3, 3),
            "p95_ms": round(pcts["p95"] * 1e3, 3),
            "p99_ms": round(pcts["p99"] * 1e3, 3),
        }
    return out


def stop_server(process) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=15)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=15)


def test_serve_smoke_and_throughput():
    num_train, smoke_samples = _scale()
    train, test = make_mnist_like(num_train=num_train, num_test=100, seed=0)
    parts = iid_partition(train, NUM_DEVICES, np.random.default_rng(0))
    total = sum(len(p) for p in parts)
    base = dict(num_devices=NUM_DEVICES, batch_size=BATCH_SIZE, num_snapshots=4)
    model = MulticlassLogisticRegression(DIM, CLASSES)

    # In-process reference (the parity target).
    direct = CrowdSimulator(
        model, parts, test, SimulationConfig(transport="direct", **base), seed=3,
    ).run()

    process, url = spawn_server(max_iterations=total + 1)
    try:
        start = time.perf_counter()
        http = CrowdSimulator(
            model, parts, test,
            SimulationConfig(transport="http", server_url=url, **base),
            seed=3,
        ).run()
        sequential_elapsed = time.perf_counter() - start

        # THE GATE: learning-state parity with DirectTransport, bit for bit.
        assert_traces_identical(direct, http, context="serve_smoke")
        assert np.array_equal(direct.final_parameters, http.final_parameters)
        status = ServiceClient(url).status()
        assert status.iteration == direct.server_iterations
        sequential_rounds = http.communication.checkins_delivered
        sequential_rps = sequential_rounds / max(sequential_elapsed, 1e-9)
    finally:
        stop_server(process)

    # Concurrent multi-client smoke on a fresh server — observed, so the
    # published table carries per-endpoint latency percentiles (PR 9).
    process, url = spawn_server(max_iterations=10**7, extra=("--metrics",))
    try:
        transport = HttpTransport(ServiceClient(url))
        failures: list[Exception] = []

        def drive(device_index: int) -> None:
            try:
                rng = np.random.default_rng(300 + device_index)
                remote = RemoteDevice.join(
                    transport, device_index, MulticlassLogisticRegression(DIM, CLASSES),
                    DeviceConfig.default(batch_size=BATCH_SIZE, num_classes=CLASSES),
                    np.random.default_rng(device_index),
                )
                for _ in range(smoke_samples):
                    if remote.observe(rng.normal(size=DIM),
                                      int(rng.integers(CLASSES))):
                        assert remote.run_round() is not None
            except Exception as error:  # noqa: BLE001
                failures.append(error)

        threads = [
            threading.Thread(target=drive, args=(m,)) for m in range(NUM_DEVICES)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        concurrent_elapsed = time.perf_counter() - start

        assert not failures, failures[0]
        expected_rounds = NUM_DEVICES * (smoke_samples // BATCH_SIZE)
        status = ServiceClient(url).status()
        # Zero server errors + every completed round applied exactly once.
        assert status.rejected_messages == 0
        assert status.iteration == expected_rounds
        concurrent_rps = expected_rounds / max(concurrent_elapsed, 1e-9)
        latency = scrape_latency_percentiles(url)
        assert latency.get("checkins", {}).get("count", 0) > 0
    finally:
        stop_server(process)

    metrics = {
        "sequential": {
            "rounds": sequential_rounds,
            "seconds": round(sequential_elapsed, 4),
            "rounds_per_sec": round(sequential_rps, 1),
            "bit_identical_to_direct": True,
        },
        "concurrent": {
            "devices": NUM_DEVICES,
            "rounds": expected_rounds,
            "seconds": round(concurrent_elapsed, 4),
            "rounds_per_sec": round(concurrent_rps, 1),
            "server_errors": 0,
            "latency_percentiles": latency,
        },
    }
    lines = [
        "serve_throughput (loopback repro-serve subprocess; timing non-gating)",
        f"  sequential : {sequential_rounds} rounds in "
        f"{sequential_elapsed:.2f}s = {sequential_rps:.0f} rounds/s "
        f"(bit-identical to DirectTransport)",
        f"  concurrent : {NUM_DEVICES} devices x "
        f"{expected_rounds // NUM_DEVICES} rounds in "
        f"{concurrent_elapsed:.2f}s = {concurrent_rps:.0f} rounds/s "
        f"(0 server errors)",
    ]
    for endpoint in sorted(latency):
        row = latency[endpoint]
        lines.append(
            f"    {endpoint:<9s}: p50 {row['p50_ms']:.2f}ms  "
            f"p95 {row['p95_ms']:.2f}ms  p99 {row['p99_ms']:.2f}ms  "
            f"({row['count']} requests)"
        )
    _publish_merged("\n".join(lines), metrics)


# --------------------------------------------------------------------- #
# Gateway tier: 256 devices behind EdgeGateways, devices-per-gateway     #
# sweep.  The speedup gate IS asserted (it is request-count-driven: the  #
# batched tier collapses 2·N data requests per round into ~2 per gateway #
# — a 10× margin survives any shared-runner jitter).                     #
# --------------------------------------------------------------------- #

CROWD_DEVICES = 256
CROWD_BATCH = 2
DEVICES_PER_GATEWAY = (16, 64, 256)


def _crowd_rounds() -> int:
    return 2 if os.environ.get("REPRO_SCALE", "benchmark") == "smoke" else 4


def _publish_merged(text: str, metrics: dict) -> None:
    """Publish under the single ``serve_throughput`` name, merging with
    whatever arms an earlier test in this module already wrote — the CI
    artifact carries the HTTP arms and the gateway arms side by side."""
    json_path = os.path.join(RESULTS_DIR, "serve_throughput.json")
    txt_path = os.path.join(RESULTS_DIR, "serve_throughput.txt")
    arms: dict = {}
    existing_text = ""
    if os.path.exists(json_path):
        with open(json_path) as handle:
            arms = json.load(handle).get("arms", {})
    if os.path.exists(txt_path):
        with open(txt_path) as handle:
            existing_text = handle.read().rstrip("\n")
    arms = {key: value for key, value in arms.items() if key not in metrics}
    arms.update(metrics)
    if existing_text and not text.startswith(existing_text):
        text = existing_text + "\n" + text
    publish_table("serve_throughput", text, arms)


def _drive_crowd(url: str, num_rounds: int, gateways=None, assignment=None,
                 seed: int = 50):
    """One fixed round-robin schedule of device rounds over HTTP.

    Same schedule (device rngs, data streams, visit order) regardless of
    routing, so arms differ only in how the traffic reaches the server.
    Returns (devices, data_requests_made, rounds_elapsed); the timed
    window covers the rounds plus trailing flushes — enrollment is
    identical setup in every arm and stays outside it.
    """
    transport = HttpTransport(url)
    model = MulticlassLogisticRegression(DIM, CLASSES)
    devices = []
    for d in range(CROWD_DEVICES):
        gateway = gateways[assignment[d]] if gateways is not None else None
        devices.append(RemoteDevice.join(
            transport, d, model,
            DeviceConfig.default(batch_size=CROWD_BATCH, num_classes=CLASSES),
            np.random.default_rng(seed + d),
            gateway=gateway,
        ))
    streams = [np.random.default_rng(7000 + d) for d in range(CROWD_DEVICES)]
    start = time.perf_counter()
    for _ in range(num_rounds):
        for device, stream in zip(devices, streams):
            while not device.observe(
                stream.normal(size=DIM), int(stream.integers(CLASSES))
            ):
                pass
            device.run_round()
    if gateways is not None:
        for gateway in gateways:
            if not gateway.stopped:
                gateway.flush()
    elapsed = time.perf_counter() - start
    if gateways is not None:
        requests = sum(g.requests_made for g in gateways)
    else:
        # Fallback path: one checkout + one single-message POST per round.
        requests = 2 * CROWD_DEVICES * num_rounds
    return devices, requests, elapsed


def _direct_reference(num_rounds: int, seed: int = 50) -> ServerCore:
    """In-process Device + ServerCore replay of ``_drive_crowd``'s
    schedule — the DirectTransport-semantics parity target."""
    model = MulticlassLogisticRegression(DIM, CLASSES)
    core = ServerCore(
        model,
        paper_sgd(model.init_parameters(),
                  learning_rate_constant=LEARNING_RATE,
                  projection_radius=PROJECTION_RADIUS),
        ServerConfig(max_iterations=10**7),
    )
    devices = [
        Device(d, model,
               DeviceConfig.default(batch_size=CROWD_BATCH, num_classes=CLASSES),
               core.register_device(d), np.random.default_rng(seed + d))
        for d in range(CROWD_DEVICES)
    ]
    streams = [np.random.default_rng(7000 + d) for d in range(CROWD_DEVICES)]
    for _ in range(num_rounds):
        for device, stream in zip(devices, streams):
            while not device.observe(
                stream.normal(size=DIM), int(stream.integers(CLASSES))
            ):
                pass
            device.mark_checkout_requested()
            response = core.handle_checkout(
                CheckoutRequest(device.device_id, device.token, 0.0)
            )
            result = device.complete_checkout(
                response.parameters, response.server_iteration
            )
            core.handle_checkins([result.message])
    return core


def test_gateway_throughput():
    num_rounds = _crowd_rounds()
    total_rounds = CROWD_DEVICES * num_rounds
    metrics: dict = {}
    lines = [
        f"serve_throughput gateway tier ({CROWD_DEVICES} devices x "
        f"{num_rounds} rounds; speedup gate asserted)",
    ]

    # Arm 0 — per-device HTTP: every round its own checkout + POST.
    process, url = spawn_server(max_iterations=10**7)
    try:
        devices, baseline_requests, baseline_elapsed = _drive_crowd(
            url, num_rounds
        )
        status = ServiceClient(url).status()
        assert status.rejected_messages == 0
        assert status.iteration == total_rounds
        assert all(d.rounds_completed == num_rounds for d in devices)
    finally:
        stop_server(process)
    baseline_rps = total_rounds / max(baseline_elapsed, 1e-9)
    metrics["per_device_http"] = {
        "devices": CROWD_DEVICES,
        "rounds": total_rounds,
        "requests": baseline_requests,
        "seconds": round(baseline_elapsed, 4),
        "rounds_per_sec": round(baseline_rps, 1),
        "requests_per_sec": round(
            baseline_requests / max(baseline_elapsed, 1e-9), 1),
        "server_errors": 0,
    }
    lines.append(
        f"  per-device HTTP      : {total_rounds} rounds / "
        f"{baseline_requests} requests in {baseline_elapsed:.2f}s = "
        f"{baseline_rps:.0f} rounds/s"
    )

    # Arms 1..k — the gateway tier, swept over devices-per-gateway.
    speedups = {}
    for dpg in DEVICES_PER_GATEWAY:
        num_gateways = CROWD_DEVICES // dpg
        assignment = TwoTierTopology(
            num_gateways=num_gateways, assignment="block"
        ).assign(CROWD_DEVICES)
        process, url = spawn_server(max_iterations=10**7)
        try:
            gateways = [
                EdgeGateway(url, flush_size=dpg, device_id=2**31 - 1 - g)
                for g in range(num_gateways)
            ]
            devices, requests, elapsed = _drive_crowd(
                url, num_rounds, gateways, assignment
            )
            status = ServiceClient(url).status()
            # Zero server errors, every round pooled, flushed, and acked.
            assert status.rejected_messages == 0
            assert status.iteration == total_rounds
            assert all(d.rounds_completed == num_rounds for d in devices)
            # Shared epoch check-outs: ~2 upstream requests per gateway
            # per round instead of 2·dpg.
            assert requests == num_gateways * (1 + 2 * num_rounds)
        finally:
            stop_server(process)
        rps = total_rounds / max(elapsed, 1e-9)
        speedups[dpg] = rps / baseline_rps
        metrics[f"gateway_dpg_{dpg}"] = {
            "devices": CROWD_DEVICES,
            "gateways": num_gateways,
            "devices_per_gateway": dpg,
            "rounds": total_rounds,
            "requests": requests,
            "seconds": round(elapsed, 4),
            "rounds_per_sec": round(rps, 1),
            "requests_per_sec": round(requests / max(elapsed, 1e-9), 1),
            "speedup_vs_per_device": round(speedups[dpg], 1),
            "server_errors": 0,
        }
        lines.append(
            f"  gateway dpg={dpg:<4d}     : {total_rounds} rounds / "
            f"{requests} requests in {elapsed:.2f}s = {rps:.0f} rounds/s "
            f"({speedups[dpg]:.1f}x per-device)"
        )

    # THE GATE: batched uplinks clear 10x per-device HTTP at 256 devices.
    best = max(speedups.values())
    assert best >= 10.0, (
        f"gateway tier speedup {best:.1f}x < 10x over per-device HTTP "
        f"(per-device {baseline_rps:.0f} rounds/s; sweep {speedups})"
    )

    # Parity arm — sequential pass-through gateway (flush_size=1,
    # forwarded check-outs) vs an in-process Device/ServerCore replay of
    # the identical schedule: bit-identical final parameters.
    reference = _direct_reference(num_rounds)
    process, url = spawn_server(max_iterations=10**7)
    try:
        gateway = EdgeGateway(url, flush_size=1, share_checkouts=False)
        devices, _, _ = _drive_crowd(
            url, num_rounds, [gateway], [0] * CROWD_DEVICES
        )
        status = ServiceClient(url).status(include_parameters=True)
        assert status.rejected_messages == 0
        assert status.iteration == reference.iteration == total_rounds
        assert np.array_equal(status.parameters, reference.parameters)
    finally:
        stop_server(process)
    metrics["gateway_parity"] = {
        "devices": CROWD_DEVICES,
        "rounds": total_rounds,
        "bit_identical_to_direct": True,
    }
    lines.append(
        "  gateway parity       : flush_size=1 pass-through bit-identical "
        "to in-process Device/ServerCore replay"
    )
    _publish_merged("\n".join(lines), metrics)


# --------------------------------------------------------------------- #
# Multi-worker tier: repro-serve --workers N behind the shard front end. #
# Timing is recorded, not asserted; the gates are correctness-shaped:    #
# zero rejected messages, zero front-end internal errors, and the shard  #
# iteration totals summing to the driven round count (exactly-once).     #
# --------------------------------------------------------------------- #

SHARD_WORKERS = 2


def _sharded_rounds() -> int:
    return 40 if os.environ.get("REPRO_SCALE", "benchmark") == "smoke" else 120


def test_multi_worker_throughput():
    samples_per_device = _sharded_rounds()
    expected_rounds = NUM_DEVICES * (samples_per_device // BATCH_SIZE)
    with tempfile.TemporaryDirectory(prefix="serve-shards-") as state_dir:
        process, url = spawn_sharded_server(
            SHARD_WORKERS, state_dir, max_iterations=10**7
        )
        try:
            transport = HttpTransport(ServiceClient(url))
            failures: list[Exception] = []

            def drive(device_index: int) -> None:
                try:
                    rng = np.random.default_rng(600 + device_index)
                    remote = RemoteDevice.join(
                        transport, device_index,
                        MulticlassLogisticRegression(DIM, CLASSES),
                        DeviceConfig.default(batch_size=BATCH_SIZE,
                                             num_classes=CLASSES),
                        np.random.default_rng(device_index),
                    )
                    for _ in range(samples_per_device):
                        if remote.observe(rng.normal(size=DIM),
                                          int(rng.integers(CLASSES))):
                            assert remote.run_round() is not None
                except Exception as error:  # noqa: BLE001
                    failures.append(error)

            threads = [
                threading.Thread(target=drive, args=(m,))
                for m in range(NUM_DEVICES)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
            elapsed = time.perf_counter() - start

            assert not failures, failures[0]
            status = ServiceClient(url).status()
            # Exactly-once across shards: aggregate iteration == rounds.
            assert status.rejected_messages == 0
            assert status.iteration == expected_rounds
            assert status.shards is not None
            assert len(status.shards) == SHARD_WORKERS
            assert sum(row["iteration"] for row in status.shards) \
                == expected_rounds
            per_shard = {row["shard"]: row["iteration"]
                         for row in status.shards}
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                assert process.wait(timeout=60) == 0
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=30)
                raise

    rps = expected_rounds / max(elapsed, 1e-9)
    metrics = {
        "multi_worker": {
            "workers": SHARD_WORKERS,
            "devices": NUM_DEVICES,
            "rounds": expected_rounds,
            "per_shard_rounds": per_shard,
            "seconds": round(elapsed, 4),
            "rounds_per_sec": round(rps, 1),
            "server_errors": 0,
        },
    }
    text = (
        f"serve_throughput multi-worker tier ({SHARD_WORKERS} workers behind "
        "one shard front end; timing non-gating)\n"
        f"  multi-worker         : {NUM_DEVICES} devices x "
        f"{expected_rounds // NUM_DEVICES} rounds over {SHARD_WORKERS} "
        f"shards in {elapsed:.2f}s = {rps:.0f} rounds/s (0 server errors, "
        "aggregate iteration exact)"
    )
    _publish_merged(text, metrics)


# --------------------------------------------------------------------- #
# Keep-alive tier: one ServiceClient, one thread, many round trips.     #
# The reuse-ratio gate IS asserted (it is connection-count-driven and   #
# immune to runner jitter): a full run must ride a single pooled socket.#
# --------------------------------------------------------------------- #


def _keepalive_rounds() -> int:
    return 40 if os.environ.get("REPRO_SCALE", "benchmark") == "smoke" else 150


def test_keepalive_connection_reuse():
    num_rounds = _keepalive_rounds()
    model = MulticlassLogisticRegression(DIM, CLASSES)
    rng = np.random.default_rng(77)
    process, url = spawn_server(max_iterations=10**7)
    try:
        client = ServiceClient(url, timeout=10.0)
        token = client.join(0)
        start = time.perf_counter()
        for seq in range(num_rounds):
            response = client.checkout(CheckoutRequest(0, token, 0.0))
            client.checkins([CheckinMessage(
                device_id=0, token=token,
                gradient=rng.normal(size=model.num_parameters),
                num_samples=BATCH_SIZE, noisy_error_count=0,
                noisy_label_counts=rng.integers(0, 5, size=CLASSES),
                checkout_iteration=response.server_iteration,
                checkin_seq=seq,
            )])
        elapsed = time.perf_counter() - start
        status = client.status()
        assert status.iteration == num_rounds
        assert status.rejected_messages == 0
    finally:
        stop_server(process)

    # THE GATE: the whole run rides one pooled socket — the reuse ratio
    # equals the request count, not ~2 (one handshake per round trip).
    assert client.connections_opened == 1
    assert client.reconnects == 0
    assert client.reuse_ratio == client.requests_sent >= 2 * num_rounds

    rps = client.requests_sent / max(elapsed, 1e-9)
    metrics = {
        "keepalive": {
            "rounds": num_rounds,
            "requests": client.requests_sent,
            "connections": client.connections_opened,
            "reuse_ratio": round(client.reuse_ratio, 1),
            "reconnects": client.reconnects,
            "seconds": round(elapsed, 4),
            "requests_per_sec": round(rps, 1),
        },
    }
    text = (
        "serve_throughput keep-alive tier (single client thread; reuse "
        "gate asserted)\n"
        f"  keep-alive           : {client.requests_sent} requests / "
        f"{client.connections_opened} connection in {elapsed:.2f}s = "
        f"{rps:.0f} req/s (reuse ratio {client.reuse_ratio:.0f})"
    )
    _publish_merged(text, metrics)
