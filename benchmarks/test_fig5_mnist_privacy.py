"""Fig. 5 — MNIST-like under privacy ε⁻¹ = 0.1, minibatch sweep (E3).

Paper claims:
* both centralized and crowd arms are worse than the non-private Fig. 4
  (the price of privacy);
* Crowd-ML b=20 has the smallest asymptotic error, much below the
  (input-perturbed) Central batch;
* Crowd-ML improves monotonically with b;
* Central SGD on perturbed inputs is ~0.9 error regardless of b.
"""

from benchmarks._harness import publish_table, run_once
from repro.experiments import run_fig5_experiment


def test_fig5_mnist_privacy(benchmark, scale):
    result = run_once(benchmark, run_fig5_experiment, scale)
    publish_table("fig5", result.format_table(), result)

    tails = result.tail_errors()
    private_batch = result.reference_lines["Central (batch)"]

    # Crowd-ML b=20 beats the private central batch by a wide margin.
    assert tails["Crowd-ML (SGD,b=20)"] < private_batch - 0.2

    # Larger minibatch = better Crowd-ML (Eq. 13's 1/b noise shrinkage).
    assert tails["Crowd-ML (SGD,b=20)"] < tails["Crowd-ML (SGD,b=1)"]
    assert tails["Crowd-ML (SGD,b=10)"] < tails["Crowd-ML (SGD,b=1)"]

    # Central SGD with perturbed inputs is near-useless for every b.
    for b in (1, 10, 20):
        assert tails[f"Central (SGD,b={b})"] > 0.6

    # ... and no minibatch size rescues it (constant input noise).
    central_tails = [tails[f"Central (SGD,b={b})"] for b in (1, 10, 20)]
    assert max(central_tails) - min(central_tails) < 0.25

    # Crowd-ML b=1/b=10 are at least comparable to the private batch.
    assert tails["Crowd-ML (SGD,b=10)"] < private_batch + 0.1
