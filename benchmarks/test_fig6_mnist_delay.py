"""Fig. 6 — MNIST-like: impact of delays under privacy (E4).

Paper claims (ε⁻¹ = 0.1, delays in Δ = τ/(M·F_s) units):
* with b = 1, growing delay slows convergence; the converged error is
  similar to or worse than Central (batch);
* with b = 20, delay has little effect and the error stays much lower
  than Central (batch);
* b = 20 curves show an initial plateau while minibatches fill.
"""

from benchmarks._harness import publish_table, run_once
from repro.experiments import run_fig6_experiment


def test_fig6_mnist_delay(benchmark, scale):
    result = run_once(benchmark, run_fig6_experiment, scale)
    publish_table("fig6", result.format_table(), result)

    tails = result.tail_errors()
    private_batch = result.reference_lines["Central (batch)"]

    # b=20: delay has little effect — the whole sweep sits in a tight band.
    b20 = [tails[f"Crowd-ML (b=20,{d}D)"] for d in (1, 10, 100, 1000)]
    assert max(b20) - min(b20) < 0.15

    # b=20 stays far below the (input-perturbed) central batch at every delay.
    assert max(b20) < private_batch - 0.15

    # b=20 beats b=1 at every delay (the figure's dominant relationship).
    for d in (1, 10, 100, 1000):
        assert tails[f"Crowd-ML (b=20,{d}D)"] < tails[f"Crowd-ML (b=1,{d}D)"]

    # b=1's behaviour under delay differs from b=20's tight band.  Note an
    # emergent effect our implementation reproduces faithfully: while a
    # device awaits a delayed check-out it keeps buffering, so n_s grows
    # past b and the DP noise (scale 4/n_s·ε) shrinks — large delays can
    # partially *rescue* the b=1 private arm.  Either way, b=1 must stay
    # clearly worse than b=20 and roughly at/above the Central (batch)
    # reference the paper compares against.
    b1 = [tails[f"Crowd-ML (b=1,{d}D)"] for d in (1, 10, 100, 1000)]
    assert max(b1) - min(b1) > 0.05 or min(b1) > private_batch - 0.3
