"""Simulator throughput: batch arrivals vs. legacy per-sample events.

Measures samples/sec and heap-events-fired per sample for crowds of
M ∈ {10, 100, 1000} devices, running the *same* configuration through
both arrival modes.  The headline configuration is the §IV-B3 operating
point for a delayed network — b = 100, τ = 200Δ — where the adaptive-
minibatch analysis says devices should sit when round trips span many
sampling periods; a b = 1, τ = 0 row is included as the honest lower
bound (every sample is a check-out trigger there, so there is nothing
for batching to elide).

The run **gates on the equivalence assertion**: both modes must produce
bit-identical traces.  Wall-clock numbers are recorded (via
``publish_table`` → ``benchmarks/results/sim_throughput.json``) but not
asserted, so a loaded CI machine cannot flake the job.

``REPRO_SCALE=smoke`` shrinks the crowd list to {10, 100} with fewer
samples per device; the default ("benchmark") runs all three sizes.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks._harness import publish_table
from repro.data import iid_partition, make_mnist_like
from repro.evaluation import assert_traces_identical
from repro.models import MulticlassLogisticRegression
from repro.network.latency import LinkDelays
from repro.simulation import CrowdSimulator, SimulationConfig

BATCH_SIZE = 100
DELAY_MULTIPLES = 200.0  # τ in Δ = 1/(M·F_s) units (Section V-C)


def _scale():
    if os.environ.get("REPRO_SCALE", "benchmark") == "smoke":
        return (10, 100), 120  # crowd sizes, samples per device
    return (10, 100, 1000), 200


def _config(num_devices: int, mode: str, batch_size: int = BATCH_SIZE,
            delay_multiples: float = DELAY_MULTIPLES) -> SimulationConfig:
    probe = SimulationConfig(num_devices=num_devices)
    tau = probe.delay_in_sample_units(delay_multiples)
    return SimulationConfig(
        num_devices=num_devices,
        batch_size=batch_size,
        link_delays=LinkDelays.uniform(tau) if tau > 0 else LinkDelays.zero(),
        num_snapshots=4,
        arrival_mode=mode,
    )


REPEATS = 3  # best-of-N wall clock; each repeat is a fresh identical run


def _run(parts, test, config):
    elapsed = None
    for _ in range(REPEATS):
        simulator = CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test, config, seed=0,
        )
        start = time.perf_counter()
        trace = simulator.run()
        this_time = time.perf_counter() - start
        elapsed = this_time if elapsed is None else min(elapsed, this_time)
    return trace, simulator.events_fired, elapsed


def _measure(num_devices: int, samples_per_device: int,
             batch_size: int = BATCH_SIZE,
             delay_multiples: float = DELAY_MULTIPLES):
    train, test = make_mnist_like(
        num_train=num_devices * samples_per_device, num_test=100)
    parts = iid_partition(train, num_devices, np.random.default_rng(0))
    fast_trace, fast_events, fast_time = _run(
        parts, test, _config(num_devices, "batch", batch_size, delay_multiples))
    legacy_trace, legacy_events, legacy_time = _run(
        parts, test, _config(num_devices, "per_sample", batch_size,
                             delay_multiples))
    # The hard gate: bitwise-equal traces across the two schedulers.
    assert_traces_identical(fast_trace, legacy_trace,
                            context=f"M={num_devices} b={batch_size}")
    samples = fast_trace.total_samples_consumed
    return {
        "samples": samples,
        "samples_per_sec_fast": samples / fast_time,
        "samples_per_sec_legacy": samples / legacy_time,
        "speedup": legacy_time / fast_time,
        "events_per_sample_fast": fast_events / samples,
        "events_per_sample_legacy": legacy_events / samples,
    }


def test_sim_throughput():
    crowd_sizes, samples_per_device = _scale()
    rows = {}
    for num_devices in crowd_sizes:
        rows[f"M={num_devices}"] = _measure(num_devices, samples_per_device)
    # Lower-bound row: b = 1 with no delay fires one round trip per sample
    # in both modes — batching cannot (and does not claim to) help there.
    rows["M=100 b=1 (bound)"] = _measure(
        100, min(40, samples_per_device), batch_size=1, delay_multiples=0.0)

    header = (f"{'config':>18s} {'samples':>8s} {'fast sps':>10s} "
              f"{'legacy sps':>10s} {'speedup':>8s} {'ev/smp fast':>12s} "
              f"{'ev/smp legacy':>14s}")
    lines = [header]
    for name, row in rows.items():
        lines.append(
            f"{name:>18s} {row['samples']:8d} "
            f"{row['samples_per_sec_fast']:10.0f} "
            f"{row['samples_per_sec_legacy']:10.0f} "
            f"{row['speedup']:7.2f}x "
            f"{row['events_per_sample_fast']:12.3f} "
            f"{row['events_per_sample_legacy']:14.3f}"
        )
    publish_table("sim_throughput", "\n".join(lines), rows)
