"""Simulator throughput: event-driven transport scaling + fused rounds.

Two tables:

* ``sim_throughput`` — absolute samples/sec and heap-events per sample
  for crowds of M ∈ {10, 100, 1000} devices at the §IV-B3 operating
  point for a delayed network (b = 100, τ = 200Δ), where round trips
  must travel the event queue (:class:`SimulatedTransport`).
* ``protocol_throughput`` — the b = 1, τ = 0 protocol-bound row
  (figs. 4/7's setting): one full check-out/check-in round trip per
  sample.  The fused :class:`DirectTransport` path is benchmarked
  against the event-driven path on the *same* configuration, and the
  run **gates on the equivalence assertion** — both transports must
  produce bit-identical traces.

Wall-clock numbers are recorded (via ``publish_table`` →
``benchmarks/results/*.json``) but not asserted, so a loaded CI machine
cannot flake the job.

``REPRO_SCALE=smoke`` shrinks the crowd list to {10, 100} with fewer
samples per device; the default ("benchmark") runs all three sizes.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks._harness import publish_table
from repro.data import iid_partition, make_mnist_like
from repro.evaluation import assert_traces_identical
from repro.models import MulticlassLogisticRegression
from repro.network.latency import LinkDelays
from repro.simulation import CrowdSimulator, SimulationConfig

BATCH_SIZE = 100
DELAY_MULTIPLES = 200.0  # τ in Δ = 1/(M·F_s) units (Section V-C)
REPEATS = 3  # best-of-N wall clock; each repeat is a fresh identical run


def _scale():
    if os.environ.get("REPRO_SCALE", "benchmark") == "smoke":
        return (10, 100), 120  # crowd sizes, samples per device
    return (10, 100, 1000), 200


def _config(num_devices: int, batch_size: int = BATCH_SIZE,
            delay_multiples: float = DELAY_MULTIPLES,
            transport: str = "auto") -> SimulationConfig:
    probe = SimulationConfig(num_devices=num_devices)
    tau = probe.delay_in_sample_units(delay_multiples)
    return SimulationConfig(
        num_devices=num_devices,
        batch_size=batch_size,
        link_delays=LinkDelays.uniform(tau) if tau > 0 else LinkDelays.zero(),
        num_snapshots=4,
        transport=transport,
    )


def _run(parts, test, config):
    elapsed = None
    for _ in range(REPEATS):
        simulator = CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test, config, seed=0,
        )
        start = time.perf_counter()
        trace = simulator.run()
        this_time = time.perf_counter() - start
        elapsed = this_time if elapsed is None else min(elapsed, this_time)
    return trace, simulator.events_fired, elapsed


def _data(num_devices: int, samples_per_device: int):
    train, test = make_mnist_like(
        num_train=num_devices * samples_per_device, num_test=100)
    return iid_partition(train, num_devices, np.random.default_rng(0)), test


def test_sim_throughput():
    """Delayed-network scaling rows (event-driven transport)."""
    crowd_sizes, samples_per_device = _scale()
    rows = {}
    for num_devices in crowd_sizes:
        parts, test = _data(num_devices, samples_per_device)
        trace, events, elapsed = _run(parts, test, _config(num_devices))
        # Determinism gate: a repeat run must reproduce the trace exactly.
        repeat, _, _ = _run(parts, test, _config(num_devices))
        assert_traces_identical(trace, repeat, context=f"M={num_devices}")
        samples = trace.total_samples_consumed
        rows[f"M={num_devices}"] = {
            "samples": samples,
            "samples_per_sec": samples / elapsed,
            "events_per_sample": events / samples,
        }

    header = (f"{'config':>10s} {'samples':>8s} {'sps':>10s} "
              f"{'ev/smp':>8s}")
    lines = [header]
    for name, row in rows.items():
        lines.append(
            f"{name:>10s} {row['samples']:8d} "
            f"{row['samples_per_sec']:10.0f} "
            f"{row['events_per_sample']:8.3f}"
        )
    publish_table("sim_throughput", "\n".join(lines), rows)


def test_protocol_throughput_fused_b1():
    """The b = 1 protocol-bound row: fused rounds vs event-driven.

    Gates on bit-identical traces across the two transports; timing is
    published, not asserted.
    """
    _, samples_per_device = _scale()
    num_devices = 100
    parts, test = _data(num_devices, min(40, samples_per_device))

    direct_trace, direct_events, direct_time = _run(
        parts, test, _config(num_devices, batch_size=1, delay_multiples=0.0,
                             transport="direct"))
    simulated_trace, simulated_events, simulated_time = _run(
        parts, test, _config(num_devices, batch_size=1, delay_multiples=0.0,
                             transport="simulated"))
    # The hard gate: the fused synchronous round and the event-driven
    # round trip are the same protocol, bit for bit.
    assert_traces_identical(direct_trace, simulated_trace,
                            context=f"M={num_devices} b=1 fused")
    samples = direct_trace.total_samples_consumed
    assert direct_events < simulated_events

    rows = {
        "M=100 b=1 fused": {
            "samples": samples,
            "samples_per_sec_direct": samples / direct_time,
            "samples_per_sec_simulated": samples / simulated_time,
            "speedup": simulated_time / direct_time,
            "events_per_sample_direct": direct_events / samples,
            "events_per_sample_simulated": simulated_events / samples,
        }
    }
    header = (f"{'config':>16s} {'samples':>8s} {'direct sps':>11s} "
              f"{'simulated sps':>14s} {'speedup':>8s} {'ev/smp dir':>11s} "
              f"{'ev/smp sim':>11s}")
    row = rows["M=100 b=1 fused"]
    lines = [
        header,
        f"{'M=100 b=1 fused':>16s} {row['samples']:8d} "
        f"{row['samples_per_sec_direct']:11.0f} "
        f"{row['samples_per_sec_simulated']:14.0f} "
        f"{row['speedup']:7.2f}x "
        f"{row['events_per_sample_direct']:11.3f} "
        f"{row['events_per_sample_simulated']:11.3f}",
    ]
    publish_table("protocol_throughput", "\n".join(lines), rows)
