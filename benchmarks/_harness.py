"""Shared helpers for the figure-regeneration benchmarks.

Importable as ``benchmarks._harness`` (the ``benchmarks`` directory is a
package), so benchmark modules do not rely on pytest inserting the
``benchmarks/`` directory itself onto ``sys.path``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping, Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def _metrics_payload(metrics: Any) -> Mapping[str, Any]:
    """Normalize ``metrics`` to the JSON written next to the text table.

    A :class:`~repro.experiments.FigureResult` becomes
    ``{"arms": {label: {"final_error", "tail_error"}}, "reference_lines"}``;
    any other mapping is written as ``{"arms": metrics}`` untouched.
    """
    curves = getattr(metrics, "curves", None)
    if curves is not None:  # duck-typed FigureResult
        return {
            "arms": {
                label: {"final_error": curve.final_error,
                        "tail_error": curve.tail_error()}
                for label, curve in curves.items()
            },
            "reference_lines": dict(metrics.reference_lines),
        }
    return {"arms": dict(metrics)}


def publish_table(name: str, text: str,
                  metrics: Optional[Any] = None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    pytest captures stdout of passing tests, so the persisted copy is what
    survives a quiet run; EXPERIMENTS.md references these files.

    When ``metrics`` is given (a ``FigureResult`` or a plain mapping of
    arm → numbers), a machine-readable ``<name>.json`` lands beside the
    text table so the per-arm error trajectory is diffable across PRs.
    """
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    if metrics is not None:
        payload = {"name": name, **_metrics_payload(metrics)}
        with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
