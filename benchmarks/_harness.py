"""Shared helpers for the figure-regeneration benchmarks.

Importable as ``benchmarks._harness`` (the ``benchmarks`` directory is a
package), so benchmark modules do not rely on pytest inserting the
``benchmarks/`` directory itself onto ``sys.path``.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def publish_table(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/.

    pytest captures stdout of passing tests, so the persisted copy is what
    survives a quiet run; EXPERIMENTS.md references these files.
    """
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
