"""Ablation A1 — Eq. (13) gradient-noise power decomposition.

    E[‖ĝ‖²] = (1/b)·E[‖g‖²] + 32·D/(b·ε_g)²

Measures the two terms empirically on MNIST-like logistic gradients and
verifies they match the closed forms, and that the privacy (Laplace) term
dominates at small ε while shrinking quadratically in b — the analytic
basis for every Fig. 5/6 observation.
"""

import numpy as np
import pytest

from benchmarks._harness import publish_table, run_once
from repro.data import make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.privacy import (
    LaplaceMechanism,
    gradient_noise_power,
    sampling_noise_power,
    split_budget,
)


def measure_noise_power(epsilon: float, batch_size: int, num_draws: int = 2000):
    """Empirical E[‖z‖²] of the calibrated gradient mechanism."""
    rng = np.random.default_rng(0)
    budget = split_budget(epsilon, 10)
    mech = LaplaceMechanism(budget.epsilon_gradient, 4.0 / batch_size, rng)
    dim = 500  # C*D for the MNIST-like logistic model
    return float(
        np.mean([np.sum(mech.release(np.zeros(dim)) ** 2) for _ in range(num_draws)])
    )


def run_ablation():
    train, _ = make_mnist_like(num_train=2000, num_test=100)
    model = MulticlassLogisticRegression(50, 10)
    rng = np.random.default_rng(1)
    w = rng.normal(size=model.num_parameters) * 0.5
    per_sample = model.per_sample_gradients(w, train.features, train.labels)
    per_sample_power = float(np.mean(np.sum(per_sample**2, axis=1)))

    rows = []
    for eps in (1.0, 10.0, 100.0):
        for b in (1, 10, 20):
            sampling = sampling_noise_power(per_sample_power, b)
            # Eq. 13's D counts coordinates of the released vector (C*D).
            analytic_laplace = gradient_noise_power(500, b, eps)
            empirical = measure_noise_power(eps, b, num_draws=500)
            rows.append((eps, b, sampling, analytic_laplace, empirical))
    return per_sample_power, rows


def test_eq13_noise_decomposition(benchmark):
    per_sample_power, rows = run_once(benchmark, run_ablation)
    lines = [f"per-sample gradient power E[||g||^2] = {per_sample_power:.4f}",
             f"{'eps':>6} {'b':>4} {'sampling':>10} {'laplace':>10} {'empirical':>10}"]
    for eps, b, sampling, analytic, empirical in rows:
        lines.append(
            f"{eps:>6.1f} {b:>4d} {sampling:>10.4g} {analytic:>10.4g} {empirical:>10.4g}"
        )
    publish_table("ablation_noise_power", "\n".join(lines))

    for eps, b, sampling, analytic, empirical in rows:
        # Empirical mechanism noise matches the closed form (within
        # sampling error; budget split makes eps_g ~2% below eps).
        assert empirical == pytest.approx(analytic, rel=0.2)
        # Both terms shrink with b.
        if b == 20:
            base = next(r for r in rows if r[0] == eps and r[1] == 1)
            assert sampling == pytest.approx(base[2] / 20, rel=1e-9)
            assert analytic == pytest.approx(base[3] / 400, rel=1e-6)

    # At strong privacy (eps=1, b=1) the Laplace term dominates sampling
    # noise by orders of magnitude — the Fig. 5 degradation mechanism.
    strong = next(r for r in rows if r[0] == 1.0 and r[1] == 1)
    assert strong[3] > 100 * strong[2]
