"""Ablation A7 — Section IV-B resource comparison across approaches.

Prints the full per-sample resource table (device flops, server flops,
network floats, device energy, battery lifetime) for the centralized,
crowd, and decentralized architectures at the paper's deployment shape,
and asserts the orderings Section IV claims.
"""

import pytest

from benchmarks._harness import publish_table, run_once
from repro.analysis import (
    Approach,
    EnergyProfile,
    SystemShape,
    battery_lifetime_hours,
    device_flops_per_sample,
    server_flops_per_sample,
    total_energy_per_sample,
    total_network_floats_per_sample,
)


def run_ablation():
    # Fs = 1/30 Hz: the pre-decorrelation sensing rate of Section V-B.
    # Per-sample flops/floats are rate-independent; only the battery
    # column uses Fs.
    shape = SystemShape(num_devices=1000, num_features=50, num_classes=10,
                        batch_size=20, sampling_rate=1.0 / 30.0)
    profile = EnergyProfile()
    rows = []
    for approach in Approach:
        rows.append(
            (
                approach.value,
                device_flops_per_sample(shape, approach),
                server_flops_per_sample(shape, approach),
                total_network_floats_per_sample(shape, approach),
                total_energy_per_sample(shape, approach, profile),
                battery_lifetime_hours(shape, approach, profile,
                                       overhead_watts=0.05),
            )
        )
    return rows


def test_section_iv_resource_table(benchmark):
    rows = run_once(benchmark, run_ablation)
    lines = [
        f"{'approach':<14} {'dev flops':>10} {'srv flops':>10} "
        f"{'net floats':>10} {'dev J/sample':>13} {'battery h':>10}"
    ]
    for name, dev, srv, net, joules, hours in rows:
        lines.append(
            f"{name:<14} {dev:>10.1f} {srv:>10.1f} {net:>10.1f} "
            f"{joules:>13.3e} {hours:>10.1f}"
        )
    publish_table("ablation_scalability", "\n".join(lines))

    by_name = {r[0]: r for r in rows}
    central = by_name["centralized"]
    crowd = by_name["crowd"]
    local = by_name["decentralized"]

    # IV-B1: server load — centralized highest, decentralized zero.
    assert central[2] > crowd[2] > local[2] == 0.0
    # IV-B1: device load — centralized lightest (noise only).
    assert central[1] < crowd[1] <= local[1]
    # IV-B2: network — crowd at b=20 beats centralized; local is silent.
    assert local[3] == 0.0
    assert crowd[3] < central[3]
    # Battery lifetimes stay within 1% of each other at this rate: the
    # learning workload is not the battery's problem (Section V-B).
    lifetimes = [r[5] for r in rows]
    assert max(lifetimes) / min(lifetimes) < 1.01
