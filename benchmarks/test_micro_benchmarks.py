"""Micro-benchmarks of the hot paths (Section IV-B1 computation load).

The paper argues the per-device work — one gradient per sample, one noise
vector per minibatch — is light enough for low-end devices, and the server
work (one SGD update per check-in) is minimal.  These benchmarks time the
actual operations so the claim can be checked against the numbers.
"""

import numpy as np
import pytest

from repro.data import make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.optim import SGD, InverseSqrtRate, L2BallProjection
from repro.privacy import LaplaceMechanism
from repro.network.events import EventQueue


@pytest.fixture(scope="module")
def batch():
    train, _ = make_mnist_like(num_train=64, num_test=10)
    return train.features[:20], train.labels[:20]


def test_device_gradient_computation(benchmark, batch):
    """One minibatch gradient (b=20, D=50, C=10) — the main device cost."""
    features, labels = batch
    model = MulticlassLogisticRegression(50, 10, l2_regularization=1e-4)
    w = np.random.default_rng(0).normal(size=model.num_parameters)
    benchmark(model.gradient, w, features, labels)


def test_device_noise_generation(benchmark):
    """One Laplace noise vector per minibatch (Eq. 10)."""
    mech = LaplaceMechanism(10.0, 0.2, np.random.default_rng(0))
    gradient = np.zeros(500)
    benchmark(mech.release, gradient)


def test_server_update(benchmark):
    """One projected SGD step (Eq. 3) — the only per-check-in server cost."""
    optimizer = SGD(
        np.zeros(500), InverseSqrtRate(30.0), L2BallProjection(100.0)
    )
    gradient = np.random.default_rng(0).normal(size=500)
    benchmark(optimizer.step, gradient)


def test_event_queue_throughput(benchmark):
    """Scheduler overhead per event (bounds achievable simulation scale)."""

    def run_thousand_events():
        queue = EventQueue()
        for i in range(1000):
            queue.schedule(float(i), lambda: None)
        queue.run()

    benchmark(run_thousand_events)


def test_model_prediction_latency(benchmark, batch):
    """Single-sample prediction — the on-device inference path."""
    features, _ = batch
    model = MulticlassLogisticRegression(50, 10)
    w = np.random.default_rng(0).normal(size=model.num_parameters)
    one = features[:1]
    benchmark(model.predict, w, one)
