"""Ablation A6 — device churn resilience (Fig. 2's join/leave claim).

"Devices can join or leave the task at any time."  Sweeps churn intensity
(fraction of devices with bounded sessions) and verifies the crowd still
learns: error degrades gracefully with participation, never catastrophically,
because check-ins from whoever is present keep the asynchronous SGD moving.
"""

import math

import numpy as np
import pytest

from benchmarks._harness import publish_table, run_once
from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.simulation import ChurnSchedule, CrowdSimulator, SimulationConfig

DEVICES = 60


def run_ablation():
    train, test = make_mnist_like(num_train=3600, num_test=800)
    horizon = (3600 / DEVICES) * 2  # two passes' worth of time units
    rows = []
    for scenario, churn in [
        ("always-on", None),
        ("staggered joins", ChurnSchedule.staggered_joins(
            DEVICES, horizon / 2, np.random.default_rng(1))),
        ("sessions ~50%", ChurnSchedule.random_sessions(
            DEVICES, horizon, horizon / 2, np.random.default_rng(2))),
        ("sessions ~25%", ChurnSchedule.random_sessions(
            DEVICES, horizon, horizon / 4, np.random.default_rng(3))),
    ]:
        parts = iid_partition(train, DEVICES, np.random.default_rng(0))
        config = SimulationConfig(
            num_devices=DEVICES, learning_rate_constant=30.0,
            num_passes=2, churn=churn,
        )
        trace = CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test, config, seed=0
        ).run()
        rows.append((
            scenario,
            trace.total_samples_consumed,
            trace.server_iterations,
            trace.curve.final_error,
        ))
    return rows


def test_churn_resilience(benchmark):
    rows = run_once(benchmark, run_ablation)
    lines = [f"{'scenario':<18} {'samples':>8} {'updates':>8} {'final err':>10}"]
    for scenario, samples, updates, error in rows:
        lines.append(f"{scenario:<18} {samples:>8d} {updates:>8d} {error:>10.3f}")
    publish_table("ablation_churn", "\n".join(lines))

    by_name = {r[0]: r for r in rows}
    baseline = by_name["always-on"]

    # Staggered joining consumes (essentially) all data and matches the
    # always-on error closely.
    assert by_name["staggered joins"][3] < baseline[3] + 0.05

    # Short sessions consume less data...
    assert by_name["sessions ~25%"][1] < baseline[1]
    # ...but learning always proceeds far beyond chance (0.9).
    for scenario, samples, updates, error in rows:
        assert error < 0.5, scenario
        assert updates > 0, scenario
