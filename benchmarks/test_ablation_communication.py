"""Ablation A2 — Section IV-B2 communication-load accounting.

Claim: with minibatch size b the crowd transmits N/b gradients up and N/b
parameter vectors down, a b/2-factor reduction in float volume versus the
centralized approach's N raw samples (for D-dimensional features and
C·D-dimensional parameters the exact ratio involves C, which the table
shows explicitly).
"""

import numpy as np
import pytest

from benchmarks._harness import publish_table, run_once
from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.simulation import CrowdSimulator, SimulationConfig


def run_ablation():
    train, test = make_mnist_like(num_train=2000, num_test=300)
    rows = []
    for b in (1, 5, 20):
        parts = iid_partition(train, 20, np.random.default_rng(0))
        config = SimulationConfig(num_devices=20, batch_size=b,
                                  learning_rate_constant=30.0)
        trace = CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test, config, seed=0
        ).run()
        comm = trace.communication
        rows.append(
            (b, comm.checkins_delivered, comm.uplink_floats, comm.downlink_floats)
        )
    # Centralized reference: N samples of D floats (+1 label) go up.
    centralized_up = 2000 * (50 + 1)
    return centralized_up, rows


def test_communication_scaling(benchmark):
    centralized_up, rows = run_once(benchmark, run_ablation)
    lines = [f"centralized uplink: {centralized_up} floats",
             f"{'b':>4} {'checkins':>9} {'uplink':>10} {'downlink':>10} {'msg ratio':>10}"]
    base_checkins = rows[0][1]
    for b, checkins, up, down in rows:
        lines.append(f"{b:>4d} {checkins:>9d} {up:>10d} {down:>10d} "
                     f"{base_checkins / checkins:>10.1f}")
    publish_table("ablation_communication", "\n".join(lines))

    # Message count scales as N/b.
    for b, checkins, up, down in rows:
        assert checkins == pytest.approx(2000 / b, rel=0.05)

    # Uplink float volume scales inversely with b (same per-message size).
    b1_up = rows[0][2]
    b20_up = rows[2][2]
    assert b20_up == pytest.approx(b1_up / 20, rel=0.1)

    # Per-sample crowd traffic at b=20 is below the centralized baseline's
    # (C·D-dim gradients amortized over 20 samples < D+1 floats/sample).
    per_sample_crowd = (rows[2][2] + rows[2][3]) / 2000
    per_sample_central = centralized_up / 2000
    assert per_sample_crowd < per_sample_central
