"""Shared configuration for the figure-regeneration benchmarks.

Each ``test_figN_*`` benchmark regenerates one figure of the paper at
reduced scale (see ``ExperimentScale.benchmark``), prints the arm table,
and asserts the figure's qualitative claims (who wins, by what factor,
where crossovers fall).  Absolute wall-clock is reported by
pytest-benchmark but is not itself the point — the *result rows* are.

Set the environment variable ``REPRO_SCALE=paper`` to run the full
paper-scale experiments (hours), or ``REPRO_SCALE=smoke`` for a quick pass.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Experiment scale selected via the REPRO_SCALE env var."""
    name = os.environ.get("REPRO_SCALE", "benchmark")
    if name == "paper":
        return ExperimentScale.paper()
    if name == "smoke":
        return ExperimentScale.smoke()
    return ExperimentScale.benchmark()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def publish_table(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/.

    pytest captures stdout of passing tests, so the persisted copy is what
    survives a quiet run; EXPERIMENTS.md references these files.
    """
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
