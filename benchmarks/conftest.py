"""Shared configuration for the figure-regeneration benchmarks.

Each ``test_figN_*`` benchmark regenerates one figure of the paper at
reduced scale (see ``ExperimentScale.benchmark``), prints the arm table,
and asserts the figure's qualitative claims (who wins, by what factor,
where crossovers fall).  Absolute wall-clock is reported by
pytest-benchmark but is not itself the point — the *result rows* are.

Set the environment variable ``REPRO_SCALE=paper`` to run the full
paper-scale experiments (hours), or ``REPRO_SCALE=smoke`` for a quick pass.
Shared helpers (``run_once``/``publish_table``) live in
:mod:`benchmarks._harness`.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Experiment scale selected via the REPRO_SCALE env var."""
    name = os.environ.get("REPRO_SCALE", "benchmark")
    if name == "paper":
        return ExperimentScale.paper()
    if name == "smoke":
        return ExperimentScale.smoke()
    return ExperimentScale.benchmark()
