"""Fig. 9 — CIFAR-like: delays under privacy (E7, Appendix D).

Same claims as Fig. 6 on the harder features.
"""

from benchmarks._harness import publish_table, run_once
from repro.experiments import run_fig9_experiment


def test_fig9_cifar_delay(benchmark, scale):
    result = run_once(benchmark, run_fig9_experiment, scale)
    publish_table("fig9", result.format_table(), result)

    tails = result.tail_errors()
    private_batch = result.reference_lines["Central (batch)"]

    # b=20 is delay-robust.
    b20 = [tails[f"Crowd-ML (b=20,{d}D)"] for d in (1, 10, 100, 1000)]
    assert max(b20) - min(b20) < 0.15

    # b=20 beats the private central batch at every delay.
    assert max(b20) < private_batch - 0.05

    # b=20 beats b=1 at the largest delay.
    assert tails["Crowd-ML (b=20,1000D)"] < tails["Crowd-ML (b=1,1000D)"]
