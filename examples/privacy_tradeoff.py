"""Privacy-performance trade-off: Crowd-ML vs the centralized approach.

Sweeps the per-sample privacy level ε and compares three systems on the
same data (the Section IV-A analysis, demonstrated):

* **Crowd-ML** — devices release Laplace-noised averaged gradients; the
  noise scale is 4/(b·ε), so a minibatch of b = 20 absorbs most of it;
* **Centralized (batch)** — raw inputs are feature/label-perturbed before
  leaving the device (Appendix C), then batch-trained;
* **Centralized (SGD)** — same perturbed inputs, streamed through SGD.

Usage::

    python examples/privacy_tradeoff.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import SimulationConfig, run_crowd_trials
from repro.baselines import CentralizedBatchTrainer, CentralizedSGDTrainer
from repro.data import MNIST_CLASSES, MNIST_DIM, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.optim import InverseSqrtRate
from repro.privacy import CentralizedBudget

EPSILONS = (math.inf, 100.0, 10.0, 1.0)
BATCH_SIZE = 20


def model_factory() -> MulticlassLogisticRegression:
    return MulticlassLogisticRegression(MNIST_DIM, MNIST_CLASSES,
                                        l2_regularization=1e-4)


def crowd_error(train, test, epsilon: float) -> float:
    config = SimulationConfig(
        num_devices=100,
        batch_size=BATCH_SIZE,
        epsilon=epsilon,
        learning_rate_constant=30.0,
        l2_regularization=1e-4,
        num_passes=3,
    )
    return run_crowd_trials(model_factory, train, test, config,
                            num_trials=1).tail_error()


def central_batch_error(train, test, epsilon: float) -> float:
    budget = CentralizedBudget.even_split(epsilon)
    trainer = CentralizedBatchTrainer(model_factory(), budget=budget)
    return trainer.evaluate(train, test, np.random.default_rng(0))


def central_sgd_error(train, test, epsilon: float) -> float:
    budget = CentralizedBudget.even_split(epsilon)
    trainer = CentralizedSGDTrainer(
        model_factory(), InverseSqrtRate(30.0), batch_size=BATCH_SIZE, budget=budget
    )
    result = trainer.fit(train, test, np.random.default_rng(0), num_passes=3)
    return result.curve.tail_error()


def main() -> None:
    print("Generating data ...")
    train, test = make_mnist_like(num_train=6000, num_test=1500, seed=0)

    print(f"\n{'epsilon':>10} {'Crowd-ML(b=20)':>15} {'Central batch':>14} "
          f"{'Central SGD':>12}")
    for epsilon in EPSILONS:
        crowd = crowd_error(train, test, epsilon)
        batch = central_batch_error(train, test, epsilon)
        sgd = central_sgd_error(train, test, epsilon)
        label = "inf" if math.isinf(epsilon) else f"{epsilon:g}"
        print(f"{label:>10} {crowd:>15.3f} {batch:>14.3f} {sgd:>12.3f}")

    print(
        "\nReading the table: as epsilon shrinks (stronger privacy), the\n"
        "centralized arms collapse toward chance (0.9) because their input\n"
        "noise is constant per sample, while Crowd-ML degrades gracefully —\n"
        "its gradient noise scale 4/(b*eps) is absorbed by the minibatch."
    )


if __name__ == "__main__":
    main()
