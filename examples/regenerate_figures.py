"""Regenerate any figure of the paper from the command line.

Usage::

    python examples/regenerate_figures.py --figure 4            # one figure
    python examples/regenerate_figures.py --figure all          # everything
    python examples/regenerate_figures.py --figure 5 --scale smoke
    python examples/regenerate_figures.py --figure 6 --workers 8
    python examples/regenerate_figures.py --figure 4 --export-spec fig4.json
    python examples/regenerate_figures.py --spec fig4.json      # data, no code
    python examples/regenerate_figures.py --figure 3 --store runs/
    python examples/regenerate_figures.py --figure 4 --profile  # cProfile

Scales: ``smoke`` (seconds), ``benchmark`` (default, ~minutes),
``paper`` (full Section V-C sizes: M = 1000, 60k samples, 10 trials).

Figures are declarative :class:`~repro.experiments.ExperimentSpec`\\ s:
``--export-spec`` writes one to JSON, and ``--spec`` re-runs any such file
through the same :class:`~repro.experiments.ExperimentSession` — no python
needed to define new sweeps.  ``--workers N`` fans arms × trials out over
N processes (results are bit-identical to serial runs).

``--store DIR`` (or the ``REPRO_STORE_DIR`` environment variable) attaches
a persistent :class:`~repro.store.RunStore`: completed trials and whole
figures are served from disk on repeat runs and an interrupted sweep
resumes where it stopped.  ``--force`` recomputes and overwrites the
stored entries; ``--no-cache`` ignores any store entirely.

``--profile`` wraps each figure run in :mod:`cProfile` and prints the top
functions by cumulative time (``--profile-out PATH`` additionally dumps
the raw stats for ``snakeviz``/``pstats``) — perf PRs should cite these
profiles rather than guessing at hot spots.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import time

from repro.experiments import (
    ExperimentScale,
    ExperimentSession,
    ExperimentSpec,
    FIGURE_SPEC_BUILDERS,
    fig3_spec,
)
from repro.store import RunStore, STORE_DIR_ENV

SCALES = ("smoke", "benchmark", "paper")


def build_spec(figure: str, scale: ExperimentScale) -> ExperimentSpec:
    if figure == "3":
        return fig3_spec()  # Fig. 3 has its own (device, stream) sizing
    return FIGURE_SPEC_BUILDERS[figure](scale)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", default="all",
                        choices=["3", *sorted(FIGURE_SPEC_BUILDERS), "all"])
    parser.add_argument("--scale", default=None, choices=SCALES,
                        help="experiment scale (default: benchmark; with "
                             "--spec, overrides the scale embedded in the "
                             "JSON when given explicitly)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: serial)")
    parser.add_argument("--export-spec", metavar="PATH",
                        help="write the figure's ExperimentSpec JSON and exit")
    parser.add_argument("--spec", metavar="PATH",
                        help="run an ExperimentSpec JSON file instead of a "
                             "built-in figure")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent run store directory (default: "
                             f"${STORE_DIR_ENV} when set)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run without any store, even if "
                             f"${STORE_DIR_ENV} is set")
    parser.add_argument("--force", action="store_true",
                        help="recompute everything and overwrite store "
                             "entries")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print cumulative stats")
    parser.add_argument("--profile-out", metavar="PATH", default=None,
                        help="with --profile, also dump raw pstats here")
    args = parser.parse_args()

    if args.profile and args.workers and args.workers > 1:
        # cProfile only instruments this process; worker trials would run
        # unprofiled and the printed stats would show pickle/pool overhead
        # instead of simulator hot spots.
        parser.error("--profile requires serial execution; drop --workers")

    store = None
    if not args.no_cache:
        store = (RunStore(args.store) if args.store
                 else RunStore.from_env())
    scale = ExperimentScale.named(args.scale or "benchmark")
    session = ExperimentSession(max_workers=args.workers, store=store,
                                refresh=args.force)

    if args.spec:
        with open(args.spec) as handle:
            spec = ExperimentSpec.from_json(handle.read())
        if args.scale is not None:
            spec = spec.with_scale(scale)
        specs = [spec]
    else:
        figures = (["3", *sorted(FIGURE_SPEC_BUILDERS)]
                   if args.figure == "all" else [args.figure])
        specs = [build_spec(figure, scale) for figure in figures]

    if args.export_spec:
        if len(specs) != 1:
            parser.error("--export-spec needs a single --figure")
        with open(args.export_spec, "w") as handle:
            handle.write(specs[0].to_json() + "\n")
        print(f"wrote {args.export_spec}")
        return

    for index, spec in enumerate(specs):
        before = session.store_stats.snapshot()
        start = time.time()
        if args.profile:
            profiler = cProfile.Profile()
            profiler.enable()
            result = session.run(spec, seed=args.seed)
            profiler.disable()
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(30)
            if args.profile_out:
                # One stats file per spec: a multi-figure run must not
                # silently overwrite earlier figures' profiles.
                path = args.profile_out
                if len(specs) > 1:
                    root, ext = os.path.splitext(path)
                    path = f"{root}.{spec.name or index}{ext}"
                stats.dump_stats(path)
                print(f"profile stats written to {path}")
        else:
            result = session.run(spec, seed=args.seed)
        elapsed = time.time() - start
        print()
        print(result.format_table())
        scale_name = args.scale or ("from spec" if args.spec else "benchmark")
        print(f"(regenerated in {elapsed:.1f} s at scale '{scale_name}')")
        if store is not None:
            delta = session.store_stats.since(before)
            if delta.figure_hits:
                print(f"store: served from cache ({store.root})")
            else:
                print(f"store: {delta.task_hits} task(s) from cache, "
                      f"{delta.task_misses} executed ({store.root})")


if __name__ == "__main__":
    main()
