"""Regenerate any figure of the paper from the command line.

Usage::

    python examples/regenerate_figures.py --figure 4            # one figure
    python examples/regenerate_figures.py --figure all          # everything
    python examples/regenerate_figures.py --figure 5 --scale smoke

Scales: ``smoke`` (seconds), ``benchmark`` (default, ~minutes),
``paper`` (full Section V-C sizes: M = 1000, 60k samples, 10 trials).
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    ExperimentScale,
    run_fig3_experiment,
    run_fig4_experiment,
    run_fig5_experiment,
    run_fig6_experiment,
    run_fig7_experiment,
    run_fig8_experiment,
    run_fig9_experiment,
)

RUNNERS = {
    "3": lambda scale: run_fig3_experiment(),
    "4": run_fig4_experiment,
    "5": run_fig5_experiment,
    "6": run_fig6_experiment,
    "7": run_fig7_experiment,
    "8": run_fig8_experiment,
    "9": run_fig9_experiment,
}

SCALES = {
    "smoke": ExperimentScale.smoke,
    "benchmark": ExperimentScale.benchmark,
    "paper": ExperimentScale.paper,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", default="all",
                        choices=[*RUNNERS.keys(), "all"])
    parser.add_argument("--scale", default="benchmark", choices=list(SCALES))
    args = parser.parse_args()

    scale = SCALES[args.scale]()
    figures = list(RUNNERS) if args.figure == "all" else [args.figure]
    for figure in figures:
        start = time.time()
        result = RUNNERS[figure](scale)
        elapsed = time.time() - start
        print()
        print(result.format_table())
        print(f"(regenerated in {elapsed:.1f} s at scale '{args.scale}')")


if __name__ == "__main__":
    main()
