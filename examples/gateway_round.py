"""Gateway round: N devices × G gateways against a live ``repro-serve``.

The two-tier topology walkthrough: a crowd of
:class:`~repro.serve.RemoteDevice`\\ s reaches the server through
:class:`~repro.gateway.edge.EdgeGateway`\\ s instead of each device
holding its own HTTP conversation.  Each gateway pools its segment's
check-ins and flushes them as single batched ``POST /v1/checkins``
requests, and (by default) serves its whole segment's check-outs from
one cached upstream checkout per flush epoch — so a segment of D
devices costs ~2 requests per epoch instead of 2·D.

Three acts:

1. Per-device baseline: every device talks to the service directly —
   ``2·N`` requests per round of the crowd.
2. The same crowd behind G gateways: device→gateway assignment comes
   from the ``repro.registry.GATEWAY_ASSIGNMENTS`` policy registry, and
   the request counters show the collapse.
3. Sequential parity: a ``flush_size=1`` pass-through gateway replays
   act 1's schedule and lands on **bit-identical** final parameters —
   the tier is an optimization, not a semantic change.

Usage (self-hosting, prints everything)::

    PYTHONPATH=src python examples/gateway_round.py

Or against an externally launched server (fresh per run — the script
drives the task to completion)::

    repro-serve --num-features 50 --num-classes 10 --max-iterations 100000 &
    PYTHONPATH=src python examples/gateway_round.py --server-url http://127.0.0.1:8900
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.config import DeviceConfig, ServerConfig
from repro.core.server_core import ServerCore
from repro.gateway import TwoTierTopology
from repro.gateway.edge import EdgeGateway
from repro.models import MulticlassLogisticRegression
from repro.optim import paper_sgd
from repro.serve import CrowdService, HttpTransport, RemoteDevice

NUM_DEVICES = 12
NUM_GATEWAYS = 3
NUM_ROUNDS = 4
BATCH_SIZE = 2
NUM_FEATURES = 50
NUM_CLASSES = 10
SEED = 7


def build_core() -> ServerCore:
    model = MulticlassLogisticRegression(NUM_FEATURES, NUM_CLASSES)
    optimizer = paper_sgd(
        model.init_parameters(),
        learning_rate_constant=1.0,
        projection_radius=100.0,
    )
    return ServerCore(model, optimizer, ServerConfig(max_iterations=100_000))


def drive_crowd(url: str, gateways=None, assignment=None):
    """Run a fixed schedule of device rounds; returns final status + stats.

    ``gateways`` is a list of :class:`EdgeGateway`; ``assignment`` maps
    device index → gateway index.  Without them every device uploads its
    own round (the documented one-message-per-round fallback).
    """
    transport = HttpTransport(url)
    model = MulticlassLogisticRegression(NUM_FEATURES, NUM_CLASSES)
    devices = []
    for d in range(NUM_DEVICES):
        gateway = gateways[assignment[d]] if gateways is not None else None
        devices.append(RemoteDevice.join(
            transport, d, model,
            DeviceConfig.default(batch_size=BATCH_SIZE, num_classes=NUM_CLASSES),
            np.random.default_rng(SEED + d),
            gateway=gateway,
        ))
    streams = [np.random.default_rng(1000 + d) for d in range(NUM_DEVICES)]
    for _ in range(NUM_ROUNDS):
        for device, stream in zip(devices, streams):
            while not device.observe(
                stream.normal(size=NUM_FEATURES),
                int(stream.integers(NUM_CLASSES)),
            ):
                pass
            device.run_round()
    if gateways is not None:
        for gateway in gateways:
            gateway.flush()  # trailing partial batches
    status = transport.client.status(include_parameters=True)
    return status, devices


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--server-url", default=None,
                        help="existing repro-serve URL (default: self-host)")
    args = parser.parse_args()

    topo = TwoTierTopology(num_gateways=NUM_GATEWAYS, assignment="round_robin")
    assignment = topo.assign(NUM_DEVICES)
    print(f"{NUM_DEVICES} devices × {NUM_GATEWAYS} gateways "
          f"(round_robin): {assignment.tolist()}")

    def fresh_service():
        if args.server_url is not None:
            return None, args.server_url
        service = CrowdService(build_core()).start()
        return service, service.url

    # Act 1 — per-device HTTP: every round is its own checkout + POST.
    service, url = fresh_service()
    status, _ = drive_crowd(url)
    per_device_requests = 2 * NUM_DEVICES * NUM_ROUNDS
    print(f"\n[per-device] server applied {status.iteration} updates "
          f"(~{per_device_requests} data requests)")
    baseline_parameters = status.parameters
    if service is not None:
        service.stop()

    # Act 2 — the gateway tier: shared check-outs + batched uplinks.
    service, url = fresh_service()
    if args.server_url is not None:
        print("\n--server-url given: acts run against the same live task; "
              "request counters remain meaningful, parity (act 3) is not.")
    gateways = [
        EdgeGateway(url, flush_size=int(np.sum(assignment == g)),
                    device_id=2**31 - 1 - g)
        for g in range(NUM_GATEWAYS)
    ]
    status, devices = drive_crowd(url, gateways, assignment)
    made = sum(g.requests_made for g in gateways)
    pooled = sum(g.stats.messages_flushed for g in gateways)
    print(f"[gateway]    server applied {status.iteration} updates through "
          f"{made} upstream requests ({pooled} check-ins pooled, "
          f"largest batch {max(g.stats.largest_flush for g in gateways)})")
    print(f"             per-device rounds acked: "
          f"{sorted(set(d.rounds_completed for d in devices))}")
    if service is not None:
        service.stop()

    # Act 3 — sequential parity: flush_size=1, forwarded check-outs.
    if args.server_url is None:
        service, url = fresh_service()
        passthrough = [
            EdgeGateway(url, flush_size=1, share_checkouts=False,
                        device_id=2**31 - 1 - g)
            for g in range(NUM_GATEWAYS)
        ]
        status, _ = drive_crowd(url, passthrough, assignment)
        identical = np.array_equal(status.parameters, baseline_parameters)
        print(f"[parity]     pass-through gateway parameters identical to "
              f"per-device run: {identical}")
        service.stop()
        if not identical:
            raise SystemExit("parity check failed")


if __name__ == "__main__":
    main()
