"""Delay robustness: asynchronous learning on a slow network (Fig. 6 demo).

Sweeps the maximum communication delay τ (in Δ = τ/(M·F_s) units — the
number of samples the whole crowd generates during one delay) and shows
that a minibatch of b = 20 makes Crowd-ML essentially delay-insensitive,
while b = 1 degrades, exactly as Section IV-B3 predicts: the number of
stale updates per round trip is (τ_co + τ_ci)·M·F_s / b.

Usage::

    python examples/delay_robustness.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_crowd_trials
from repro.data import MNIST_CLASSES, MNIST_DIM, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.network import LinkDelays

EPSILON = 10.0  # the paper's Fig. 6 privacy level (eps^-1 = 0.1)
DELAYS = (1, 10, 100, 1000)  # in Delta units
NUM_DEVICES = 100


def model_factory() -> MulticlassLogisticRegression:
    return MulticlassLogisticRegression(MNIST_DIM, MNIST_CLASSES,
                                        l2_regularization=1e-4)


def run(train, test, batch_size: int, delay_multiples: int) -> float:
    probe = SimulationConfig(num_devices=NUM_DEVICES)
    tau = probe.delay_in_sample_units(delay_multiples)
    config = SimulationConfig(
        num_devices=NUM_DEVICES,
        batch_size=batch_size,
        epsilon=EPSILON,
        learning_rate_constant=30.0,
        l2_regularization=1e-4,
        link_delays=LinkDelays.uniform(tau),
        num_passes=3,
    )
    return run_crowd_trials(model_factory, train, test, config,
                            num_trials=1).tail_error()


def main() -> None:
    print("Generating data ...")
    train, test = make_mnist_like(num_train=6000, num_test=1500, seed=0)

    print(f"\nCrowd-ML tail test error, epsilon = {EPSILON} "
          f"(delays in Delta = 1/(M*Fs) units)")
    print(f"{'delay':>8} {'b=1':>8} {'b=20':>8}")
    for delay in DELAYS:
        b1 = run(train, test, batch_size=1, delay_multiples=delay)
        b20 = run(train, test, batch_size=20, delay_multiples=delay)
        print(f"{delay:>7d}D {b1:>8.3f} {b20:>8.3f}")

    print(
        "\nWith b = 20 the error barely moves across three orders of\n"
        "magnitude of delay: fewer, larger updates mean far fewer stale\n"
        "gradients in flight (Section IV-B3), at no privacy cost."
    )


if __name__ == "__main__":
    main()
