"""End-to-end portal walkthrough: publish a task, enroll phones, watch the
differentially private dashboard update (Section V-A).

Usage::

    python examples/portal_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CrowdMLServer, Device, ServerConfig
from repro.core.protocol import CheckoutRequest
from repro.data import ACTIVITY_NAMES, NUM_ACTIVITIES, make_activity_stream
from repro.models import MulticlassLogisticRegression
from repro.portal import Portal, TaskDescriptor
from repro.privacy import split_budget

NUM_PHONES = 5
SAMPLES_PER_PHONE = 60
EPSILON = 5.0
# The paper's Remark (Appendix B) sets the monitoring epsilons very small
# because they don't affect learning — but then the dashboard needs many
# check-ins before its estimates stabilize.  A portal that *displays*
# statistics wants a larger monitoring share; 40% keeps the gradient
# budget at 3 while making the counts readable within one demo run.
MONITORING_FRACTION = 0.4


def main() -> None:
    model = MulticlassLogisticRegression(64, NUM_ACTIVITIES)
    server = CrowdMLServer(model, config=ServerConfig(max_iterations=10_000))
    task = TaskDescriptor(
        task_id="activity-2015",
        name="Crowd activity recognition",
        objective="Learn a shared Still / On-Foot / In-Vehicle classifier",
        sensors=("triaxial accelerometer @ 20 Hz",),
        labels=ACTIVITY_NAMES,
        algorithm="3-class logistic regression (Table I), eta(t) = c/sqrt(t)",
        batch_size=4,
        budget=split_budget(EPSILON, NUM_ACTIVITIES,
                            monitoring_fraction=MONITORING_FRACTION),
    )
    portal = Portal()
    portal.publish(task, server)

    print("=== portal transparency page ===")
    print(task.describe())

    print("\n=== phones join via the portal ===")
    devices = []
    for p in range(NUM_PHONES):
        enrollment = portal.join("activity-2015")
        device = Device(
            enrollment.device_id, model, enrollment.device_config,
            enrollment.token, np.random.default_rng(50 + p),
        )
        devices.append((device, enrollment.token))
        print(f"phone {p} enrolled as device {enrollment.device_id}")

    print("\n=== sensing + crowd learning ===")
    dashboard = portal.dashboard("activity-2015")
    streams = [
        make_activity_stream(SAMPLES_PER_PHONE, np.random.default_rng(100 + p))
        for p in range(NUM_PHONES)
    ]
    for step in range(SAMPLES_PER_PHONE):
        for (device, token), stream in zip(devices, streams):
            x, y = stream.features[step], int(stream.labels[step])
            if device.observe(x, y):
                device.mark_checkout_requested()
                response = server.handle_checkout(
                    CheckoutRequest(device.device_id, token, float(step))
                )
                result = device.complete_checkout(
                    response.parameters, response.server_iteration
                )
                server.handle_checkin(result.message)
        if (step + 1) % 10 == 0:
            dashboard.snapshot()

    print(dashboard.render())
    print("\n=== portal index ===")
    print(portal.render_index())

    spend = devices[0][0].accountant.spend()
    print(
        f"\nper-sample privacy spent by device 0: "
        f"epsilon = {spend.per_sample_epsilon:.3g} "
        f"(cap disclosed on the portal: {EPSILON})"
    )


if __name__ == "__main__":
    main()
