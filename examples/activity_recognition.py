"""Activity recognition on simulated smartphones (the Section V-B demo).

Reproduces the paper's real-environment demonstration end to end:

1. synthesize 20 Hz triaxial accelerometer traces for 7 phones with
   Still / On-Foot / In-Vehicle regimes;
2. run the exact phone feature pipeline — acceleration magnitude, 3.2 s
   windows, 64-bin FFT — and the label-change-triggered sampling rule;
3. learn a shared 3-class logistic-regression classifier online through
   the Crowd-ML device/server protocol;
4. print the Fig. 3 time-averaged error curve.

Usage::

    python examples/activity_recognition.py
"""

from __future__ import annotations

import numpy as np

from repro.data import ACTIVITY_NAMES, NUM_ACTIVITIES, make_activity_stream
from repro.models import MulticlassLogisticRegression
from repro.simulation import CrowdSimulator, SimulationConfig

NUM_DEVICES = 7
SAMPLES_PER_DEVICE = 45


def main() -> None:
    print(f"Synthesizing accelerometer streams for {NUM_DEVICES} phones ...")
    streams = [
        make_activity_stream(SAMPLES_PER_DEVICE, np.random.default_rng(100 + d))
        for d in range(NUM_DEVICES)
    ]
    test = make_activity_stream(300, np.random.default_rng(999))
    for d, stream in enumerate(streams):
        counts = dict(zip(ACTIVITY_NAMES, stream.class_counts()))
        print(f"  phone {d}: {counts}")

    print("\nRunning the crowd-learning task (3-class logistic regression,")
    print("lambda = 0, b = 1, epsilon^-1 = 0, eta(t) = c/sqrt(t)) ...")
    model = MulticlassLogisticRegression(64, NUM_ACTIVITIES)
    config = SimulationConfig(
        num_devices=NUM_DEVICES,
        batch_size=1,
        learning_rate_constant=100.0,
        l2_regularization=0.0,
    )
    trace = CrowdSimulator(model, streams, test, config, seed=0).run()

    averaged = trace.time_averaged_error()
    print(f"\ncollected {averaged.shape[0]} samples across all devices")
    print("time-averaged prediction error Err(t) (Fig. 3):")
    for t in (10, 25, 50, 100, 200, averaged.shape[0]):
        if t <= averaged.shape[0]:
            print(f"  t = {t:>4d}   Err = {averaged[t - 1]:.3f}")
    print(f"\nfinal test error on held-out windows: {trace.curve.final_error:.3f}")
    print(
        "The curve converges within a few samples per device — the paper's "
        "proof that a crowd learns a common classifier fast."
    )


if __name__ == "__main__":
    main()
