"""Durable round: SIGKILL the server mid-run, resume, lose nothing.

The durability headline in one script: a full Crowd-ML training run over
live HTTP whose server is **killed with SIGKILL** (no handlers, no
flush) partway through, restarted from its ``--state-dir``, and killed
*again* — and whose final parameters and error curve are still
**bit-identical** to an uninterrupted in-process run.

Why this works (see README "Durability & fault tolerance"):

* ``repro-serve --state-dir D --checkpoint-every 1`` writes the full
  core state atomically *before* each check-in's ack leaves the server,
  so a crash can only lose updates the client never saw acknowledged;
* the retrying client (``http_retries``) re-submits those — stamped with
  per-device ``checkin_seq`` numbers, so a re-submission the server
  *did* already apply is answered from its dedupe ledger instead of
  applied twice.  Lost ack or lost request, the update lands exactly
  once.

Acts:

1. Reference run: ``CrowdSimulator`` with the in-process
   ``DirectTransport``.
2. The same spec against a real ``repro-serve`` subprocess with a state
   dir, while a watchdog thread SIGKILLs and restarts it twice mid-run.
3. Verdict: final parameters and the whole error curve must match act 1
   float for float, with zero server-side internal errors.

Usage::

    PYTHONPATH=src python examples/durable_round.py
"""

from __future__ import annotations

import os
import socket
import sys
import tempfile
import threading
import time

import numpy as np

from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.persist import ServeProcess
from repro.serve import ServiceClient
from repro.simulation import CrowdSimulator, SimulationConfig

NUM_DEVICES = 4
BATCH_SIZE = 5
NUM_FEATURES = 50
NUM_CLASSES = 10
LEARNING_RATE_CONSTANT = 1.0
PROJECTION_RADIUS = 100.0
NUM_TRAIN, NUM_TEST = 1200, 120
SEED = 7


def free_port() -> int:
    """A currently free TCP port the server can bind (and re-bind)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def simulator(config: SimulationConfig, parts, test) -> CrowdSimulator:
    return CrowdSimulator(
        MulticlassLogisticRegression(NUM_FEATURES, NUM_CLASSES),
        parts, test, config, seed=SEED,
    )


def watchdog(server: ServeProcess, url: str, kill_at: list, done: threading.Event):
    """SIGKILL + restart the server as training crosses each threshold."""
    poll = ServiceClient(url, timeout=5)
    for threshold in kill_at:
        while not done.is_set():
            try:
                if poll.status().iteration >= threshold:
                    break
            except Exception:  # noqa: BLE001 - server may be mid-restart
                time.sleep(0.01)
        if done.is_set():
            return
        server.sigkill()
        server.start()
        print(f"   !! SIGKILLed at >= iteration {threshold}, resumed "
              f"(kill #{server.kills})", flush=True)


def main() -> int:
    train, test = make_mnist_like(num_train=NUM_TRAIN, num_test=NUM_TEST, seed=0)
    parts = iid_partition(train, NUM_DEVICES, np.random.default_rng(0))
    max_iterations = sum(len(p) for p in parts) + 1
    base = dict(num_devices=NUM_DEVICES, batch_size=BATCH_SIZE, num_snapshots=8)

    print(f"-- act 1: uninterrupted in-process reference, M={NUM_DEVICES}, "
          f"b={BATCH_SIZE}")
    direct = simulator(
        SimulationConfig(transport="direct", **base), parts, test
    ).run()
    print(f"   final error {direct.curve.final_error:.3f}, "
          f"{direct.server_iterations} updates")

    print("-- act 2: the same run against a repro-serve that gets SIGKILLed")
    port = free_port()
    state_dir = tempfile.mkdtemp(prefix="crowdml-state-")
    env = dict(os.environ)
    repo_src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    server = ServeProcess([
        "--port", str(port),
        "--num-features", str(NUM_FEATURES),
        "--num-classes", str(NUM_CLASSES),
        "--learning-rate-constant", str(LEARNING_RATE_CONSTANT),
        "--projection-radius", str(PROJECTION_RADIUS),
        "--max-iterations", str(max_iterations),
        "--state-dir", state_dir,
        "--checkpoint-every", "1",
    ], env=env)
    url = server.start()
    print(f"   serving on {url}, state dir {state_dir}")

    done = threading.Event()
    # Thresholds are in server *updates* (one per device batch), not
    # samples: the run applies NUM_TRAIN / BATCH_SIZE updates total.
    total_updates = NUM_TRAIN // BATCH_SIZE
    kill_at = [total_updates // 3, (2 * total_updates) // 3]
    killer = threading.Thread(
        target=watchdog, args=(server, url, kill_at, done), daemon=True
    )
    killer.start()
    try:
        durable = simulator(
            SimulationConfig(transport="http", server_url=url,
                             http_retries=10, **base),
            parts, test,
        ).run()
    finally:
        done.set()
        killer.join(timeout=30)
    status = ServiceClient(url, timeout=10, retries=3).status()
    exit_code = server.terminate()
    print(f"   final error {durable.curve.final_error:.3f}, "
          f"{durable.server_iterations} updates, "
          f"{server.kills} SIGKILLs survived")
    print(f"   duplicates suppressed by the server's dedupe ledger: "
          f"{status.duplicates_suppressed}")
    print(f"   graceful shutdown exit code: {exit_code}")

    print("-- act 3: verdict")
    ok = True
    if server.kills < len(kill_at):
        print(f"   !! watchdog only killed {server.kills}/{len(kill_at)} times "
              f"(run too fast?); weaker evidence but parity still checked")
    if not np.array_equal(direct.final_parameters, durable.final_parameters):
        print("   !! final parameters diverged from the reference run")
        ok = False
    if not (np.array_equal(direct.curve.iterations, durable.curve.iterations)
            and np.array_equal(direct.curve.errors, durable.curve.errors)):
        print("   !! error curves diverged from the reference run")
        ok = False
    if exit_code != 0:
        print(f"   !! server shutdown was dirty (exit {exit_code})")
        ok = False
    if not ok:
        return 1
    print("ok: kill-resume run is bit-identical to the uninterrupted run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
