"""Crowd-learned thermostat preferences — the intro's regression scenario.

Section I motivates "learning optimal settings of room temperatures for
smart thermostats".  This example runs that workload through the full
Crowd-ML protocol with the :class:`~repro.models.RidgeRegression` model:
a fleet of thermostats observes (time-of-day, occupancy, outdoor
temperature, activity) context and the occupants' chosen temperature
offsets, and learns one shared preference predictor under per-sample
ε-differential privacy.

Usage::

    python examples/thermostat_regression.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import CrowdMLServer, Device, DeviceConfig, ServerConfig
from repro.core.protocol import CheckoutRequest
from repro.data import THERMOSTAT_DIM, make_thermostat_split
from repro.models import RidgeRegression
from repro.optim import SGD, InverseSqrtRate, L2BallProjection
from repro.privacy import split_budget

NUM_THERMOSTATS = 40
EPSILON = 5.0
BATCH_SIZE = 10


def run(epsilon: float) -> float:
    """Train the crowd at one privacy level; return test RMSE."""
    (train_x, train_y), (test_x, test_y) = make_thermostat_split(
        num_train=4000, num_test=1000, seed=0
    )
    model = RidgeRegression(
        THERMOSTAT_DIM, l2_regularization=1e-4, residual_bound=2.0,
        error_tolerance=0.2,
    )
    server = CrowdMLServer(
        model,
        optimizer=SGD(model.init_parameters(), InverseSqrtRate(5.0),
                      L2BallProjection(50.0)),
        config=ServerConfig(max_iterations=10**6),
    )
    budget = split_budget(epsilon, num_classes=1)
    config = DeviceConfig(
        batch_size=BATCH_SIZE, buffer_capacity=BATCH_SIZE * 10, budget=budget
    )

    per_device = len(train_x) // NUM_THERMOSTATS
    for d in range(NUM_THERMOSTATS):
        token = server.register_device(d)
        device = Device(d, model, config, token, np.random.default_rng(10 + d))
        lo, hi = d * per_device, (d + 1) * per_device
        for x, y in zip(train_x[lo:hi], train_y[lo:hi]):
            if device.observe(x, float(y)):
                device.mark_checkout_requested()
                response = server.handle_checkout(CheckoutRequest(d, token, 0.0))
                result = device.complete_checkout(
                    response.parameters, response.server_iteration
                )
                server.handle_checkin(result.message)

    predictions = model.predict(server.parameters, test_x)
    return float(np.sqrt(np.mean((predictions - test_y) ** 2)))


def main() -> None:
    print(f"Simulating {NUM_THERMOSTATS} thermostats, b = {BATCH_SIZE} ...\n")
    print(f"{'privacy':>14} {'test RMSE':>10}")
    baseline = None
    for epsilon in (math.inf, 10.0, EPSILON, 1.0):
        rmse = run(epsilon)
        if baseline is None:
            baseline = rmse
        label = "eps = inf" if math.isinf(epsilon) else f"eps = {epsilon:g}"
        print(f"{label:>14} {rmse:>10.4f}")
    print(
        "\nThe shared preference model trains across every home without a\n"
        "single raw (context, temperature) reading leaving a thermostat —\n"
        "the same device/server protocol as the classification tasks, with\n"
        "the squared loss and residual clipping supplying the sensitivity."
    )


if __name__ == "__main__":
    main()
