"""Quickstart: learn a private classifier from a simulated crowd.

Two ways in, shortest first:

1. :func:`repro.quick_crowd_run` — one call, multi-pass, optionally
   private.
2. The declarative API — the same comparison written as an
   :class:`~repro.ExperimentSpec` (pure data, JSON-serializable) and
   executed by an :class:`~repro.ExperimentSession`.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import (
    ArmSpec,
    ExperimentScale,
    ExperimentSession,
    ExperimentSpec,
    quick_crowd_run,
)


def describe(report, label: str) -> None:
    trace = report.traces[0]
    comm = trace.communication
    print(f"\n--- {label} ---")
    print(f"final test error        : {report.final_error:.3f}")
    print(f"asymptotic (tail) error : {report.tail_error():.3f}")
    print(f"server SGD updates      : {trace.server_iterations}")
    print(f"samples consumed        : {trace.total_samples_consumed}")
    print(f"uplink volume (floats)  : {comm.uplink_floats}")
    print(f"per-sample privacy ε    : {trace.per_sample_epsilon:.3g}")
    print("error curve (iteration -> test error):")
    curve = report.mean_curve
    step = max(1, len(curve) // 8)
    for i in range(0, len(curve), step):
        print(f"  {int(curve.iterations[i]):>7d}  {curve.errors[i]:.3f}")


def main() -> None:
    print("Simulating 100 devices, no privacy (epsilon = inf), b = 1, 2 passes ...")
    report = quick_crowd_run(
        num_devices=100, epsilon=math.inf, batch_size=1,
        num_train=6000, num_test=1500, num_passes=2,
    )
    describe(report, "Crowd-ML, non-private")

    print("\nSame crowd with per-sample epsilon = 10, b = 20, 4 passes ...")
    report = quick_crowd_run(
        num_devices=100, epsilon=10.0, batch_size=20,
        num_train=6000, num_test=1500, num_passes=4,
    )
    describe(report, "Crowd-ML, epsilon = 10, b = 20")

    print(
        "\nThe private curve keeps descending toward the non-private floor:"
        "\nthe minibatch average shrinks the Laplace noise by 1/b (Eq. 13),"
        "\nso privacy costs convergence speed rather than a higher plateau."
        "\n(Run longer / with more devices to watch it close the gap.)"
    )

    # The same comparison, declaratively: each arm is data (registry names
    # + kwargs), so this spec serializes to JSON and back unchanged.
    spec = ExperimentSpec(
        name="quickstart (privacy comparison)",
        dataset="mnist_like",
        scale=ExperimentScale(num_train=6000, num_test=1500, num_devices=100,
                              num_trials=1, num_passes=2),
        arms=(
            ArmSpec(label="non-private (b=1)",
                    schedule_kwargs={"constant": 30.0},
                    l2_regularization=1e-4),
            ArmSpec(label="eps=10 (b=20)", epsilon=10.0, batch_size=20,
                    num_passes=4,
                    schedule_kwargs={"constant": 30.0},
                    l2_regularization=1e-4, seed_offset=1),
        ),
    )
    print("\nRe-running declaratively (ExperimentSpec -> ExperimentSession) ...")
    result = ExperimentSession(max_workers=2).run(spec, seed=0)
    print(result.format_table())
    print("\nThis spec as JSON (rerunnable via ExperimentSpec.from_json):")
    print(spec.to_json())


if __name__ == "__main__":
    main()
