"""Quickstart: learn a private classifier from a simulated crowd.

Runs a small MNIST-like Crowd-ML task twice — once without privacy and
once with per-sample ε = 10 and minibatch size 20 — and prints the error
curves and the communication/privacy accounting.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import SimulationConfig, run_crowd_trials
from repro.data import MNIST_CLASSES, MNIST_DIM, make_mnist_like
from repro.models import MulticlassLogisticRegression


def model_factory() -> MulticlassLogisticRegression:
    """A fresh Table-I classifier (multiclass logistic regression)."""
    return MulticlassLogisticRegression(
        num_features=MNIST_DIM, num_classes=MNIST_CLASSES, l2_regularization=1e-4
    )


def describe(report, label: str) -> None:
    trace = report.traces[0]
    comm = trace.communication
    print(f"\n--- {label} ---")
    print(f"final test error        : {report.final_error:.3f}")
    print(f"asymptotic (tail) error : {report.tail_error():.3f}")
    print(f"server SGD updates      : {trace.server_iterations}")
    print(f"samples consumed        : {trace.total_samples_consumed}")
    print(f"uplink volume (floats)  : {comm.uplink_floats}")
    print(f"per-sample privacy ε    : {trace.per_sample_epsilon:.3g}")
    print("error curve (iteration -> test error):")
    curve = report.mean_curve
    step = max(1, len(curve) // 8)
    for i in range(0, len(curve), step):
        print(f"  {int(curve.iterations[i]):>7d}  {curve.errors[i]:.3f}")


def main() -> None:
    print("Generating MNIST-like crowdsensing data ...")
    train, test = make_mnist_like(num_train=6000, num_test=1500, seed=0)

    print("Simulating 100 devices, no privacy (epsilon = inf), b = 1 ...")
    non_private = SimulationConfig(
        num_devices=100,
        batch_size=1,
        epsilon=math.inf,
        learning_rate_constant=30.0,
        l2_regularization=1e-4,
        num_passes=2,
    )
    report = run_crowd_trials(model_factory, train, test, non_private, num_trials=1)
    describe(report, "Crowd-ML, non-private")

    print("\nSimulating the same crowd with per-sample epsilon = 10, b = 20 ...")
    private = SimulationConfig(
        num_devices=100,
        batch_size=20,
        epsilon=10.0,
        learning_rate_constant=30.0,
        l2_regularization=1e-4,
        num_passes=4,
    )
    report = run_crowd_trials(model_factory, train, test, private, num_trials=1)
    describe(report, "Crowd-ML, epsilon = 10, b = 20")

    print(
        "\nThe private curve keeps descending toward the non-private floor:"
        "\nthe minibatch average shrinks the Laplace noise by 1/b (Eq. 13),"
        "\nso privacy costs convergence speed rather than a higher plateau."
        "\n(Run longer / with more devices to watch it close the gap.)"
    )


if __name__ == "__main__":
    main()
