"""Sharded round: kill a worker mid-run, fail the shard over, lose nothing.

The sharded-serving headline in one script: an N-worker tier behind one
shard front end, driven by retrying clients while a worker is SIGKILLed
mid-campaign.  The supervisor fences the dead incarnation's epoch,
respawns the shard from its newest durable snapshot, and traffic keeps
flowing — and at the end, every shard's parameters are **bit-identical**
to an uninterrupted in-process replay of the same messages.

Why this works (see README "Sharded serving"):

* each worker is a full durable server: write-ahead checkpoints into its
  own ``shard-<k>/`` subdirectory before every ack;
* the supervisor advances a monotonic fence epoch before each respawn,
  so a zombie incarnation's late writes are refused, never interleaved;
* clients retry through the front end's 503s during the failover window,
  and per-device ``checkin_seq`` dedupe makes replays exactly-once.

Acts:

1. Bring up a 3-worker tier (supervisor + front end, library-driven).
2. Drive seeded traffic through a retrying client; a ``WorkerKiller``
   SIGKILLs a random worker every few batches.
3. Verdict: kills happened, zero front-end internal errors, aggregate
   iteration count exact, and each shard's durable snapshot restores to
   the same bits as an uninterrupted reference core.

Usage::

    PYTHONPATH=src python examples/sharded_round.py
"""

from __future__ import annotations

import os
import sys
import tempfile

import numpy as np

from repro.core.auth import DeviceRegistry
from repro.core.config import ServerConfig
from repro.core.protocol import CheckinMessage
from repro.core.server_core import ServerCore
from repro.models import MulticlassLogisticRegression
from repro.optim import paper_sgd
from repro.persist import SnapshotStore, WorkerKiller, restore_core
from repro.serve import ServiceClient
from repro.shard import ShardFrontEnd, ShardRouter, ShardSupervisor, ShardWorker

NUM_SHARDS = 3
NUM_DEVICES = 6
ROUNDS = 5
NUM_FEATURES = 8
NUM_CLASSES = 3
LEARNING_RATE_CONSTANT = 0.5
PROJECTION_RADIUS = 10.0
SERVER_KEY = "sharded-round-example"
SEED = 20260808


def make_model() -> MulticlassLogisticRegression:
    return MulticlassLogisticRegression(NUM_FEATURES, NUM_CLASSES)


def make_reference_core() -> ServerCore:
    model = make_model()
    return ServerCore(
        model,
        paper_sgd(model.init_parameters(),
                  learning_rate_constant=LEARNING_RATE_CONSTANT,
                  projection_radius=PROJECTION_RADIUS),
        ServerConfig(max_iterations=10**7),
        registry=DeviceRegistry(server_key=SERVER_KEY),
    )


def worker_args() -> list:
    return [
        "--num-features", str(NUM_FEATURES),
        "--num-classes", str(NUM_CLASSES),
        "--learning-rate-constant", str(LEARNING_RATE_CONSTANT),
        "--projection-radius", str(PROJECTION_RADIUS),
        "--server-key", SERVER_KEY,
        "--checkpoint-every", "1",
        "--shard-count", str(NUM_SHARDS),
    ]


def build_message(device_id: int, token: str, seq: int,
                  rng: np.random.Generator) -> CheckinMessage:
    return CheckinMessage(
        device_id=device_id,
        token=token,
        gradient=rng.normal(size=make_model().num_parameters),
        num_samples=int(rng.integers(1, 6)),
        noisy_error_count=int(rng.integers(0, 4)),
        noisy_label_counts=rng.integers(0, 5, size=NUM_CLASSES),
        checkout_iteration=0,
        checkin_seq=seq,
    )


def main() -> int:
    state_dir = tempfile.mkdtemp(prefix="crowdml-shards-")
    env = dict(os.environ)
    repo_src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    print(f"-- act 1: bring up {NUM_SHARDS} workers behind one front end")
    workers = [
        ShardWorker(
            index=shard,
            shard_dir=os.path.join(state_dir, f"shard-{shard}"),
            base_args=worker_args() + ["--shard-index", str(shard)],
            env=env,
        )
        for shard in range(NUM_SHARDS)
    ]
    supervisor = ShardSupervisor(workers, health_interval=0.15,
                                 heartbeat_timeout=1.0)
    supervisor.start()
    router = ShardRouter(NUM_SHARDS)
    frontend = ShardFrontEnd(router, supervisor).start()
    for shard, (url, epoch) in sorted(supervisor.endpoints().items()):
        print(f"   shard {shard}: {url} epoch={epoch}  "
              f"state {state_dir}/shard-{shard}")
    print(f"   front end: {frontend.url}")

    print("-- act 2: seeded traffic while a WorkerKiller SIGKILLs workers")
    killer = WorkerKiller(supervisor, every=8, seed=3, max_kills=2)
    client = ServiceClient(frontend.url, timeout=15.0, retries=16,
                           backoff=0.02, backoff_max=0.5, retry_rng=SEED)
    reference_registry = make_reference_core()
    sent = []
    exit_codes = {}
    try:
        tokens = {d: client.join(d) for d in range(NUM_DEVICES)}
        for device_id, token in tokens.items():
            assert token == reference_registry.register_device(device_id)

        rng = np.random.default_rng(SEED)
        for round_index in range(ROUNDS):
            for device_id in range(NUM_DEVICES):
                message = build_message(device_id, tokens[device_id],
                                        seq=round_index, rng=rng)
                result = client.checkins([message])
                if result.acks[0] is None:
                    print(f"   !! round {round_index} device {device_id} "
                          f"never acked")
                    return 1
                sent.append((device_id, message))
                shard = killer.after_batch()
                if shard is not None:
                    print(f"   !! SIGKILLed shard {shard}'s worker after "
                          f"batch {killer.batches_seen} "
                          f"(kill #{killer.kills})", flush=True)
        status = client.status()
        internal_errors = frontend.errors_returned.get("internal", 0)
        stats = supervisor.stats()
    finally:
        frontend.stop()
        exit_codes = supervisor.stop(graceful=True)

    print(f"   {len(sent)} check-ins acked, {killer.kills} workers killed, "
          f"{stats['failovers']} failovers "
          f"({stats['respawns_in_place']} in place)")
    print(f"   duplicates suppressed across shards: "
          f"{status.duplicates_suppressed}")
    print(f"   graceful shutdown exit codes: {exit_codes}")

    print("-- act 3: verdict (per-shard parity vs uninterrupted replay)")
    references = {}
    for shard in range(NUM_SHARDS):
        core = make_reference_core()
        for device_id in range(NUM_DEVICES):
            if router.shard_of(device_id) == shard:
                core.register_device(device_id)
        references[shard] = core
    for device_id, message in sent:
        references[router.shard_of(device_id)].handle_checkins([message])

    ok = True
    if killer.kills == 0:
        print("   !! the killer never fired (run too fast?); weaker "
              "evidence but parity still checked")
    if internal_errors:
        print(f"   !! front end returned {internal_errors} internal errors")
        ok = False
    if status.iteration != len(sent):
        print(f"   !! aggregate iteration {status.iteration} != "
              f"{len(sent)} acked check-ins (exactly-once violated)")
        ok = False
    if any(code != 0 for code in exit_codes.values()):
        print(f"   !! dirty worker shutdown: {exit_codes}")
        ok = False
    for shard in range(NUM_SHARDS):
        loaded = SnapshotStore(os.path.join(state_dir, f"shard-{shard}")
                               ).load_latest()
        if loaded is None:
            print(f"   !! shard {shard} left no durable snapshot")
            ok = False
            continue
        restored = restore_core(loaded[0], make_model())
        reference = references[shard]
        if restored.iteration != reference.iteration or not np.array_equal(
            restored.parameters, reference.parameters
        ):
            print(f"   !! shard {shard} diverged from the reference run")
            ok = False
        else:
            print(f"   shard {shard}: {restored.iteration} updates, "
                  f"parameters bit-identical")
    if not ok:
        return 1
    print("ok: every shard survived the kills bit-identical to the "
          "uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
