"""Remote round: a full Crowd-ML training run over live HTTP.

Proves the promise of the transport seam: the *same* simulator, device
runtime, and protocol core drive an in-process run and a run against a
real HTTP server — and (sequentially) the two produce **bit-identical**
learned parameters, because floats survive the JSON wire format exactly
and the server applies the same updates in the same order.

Three acts:

1. Reference run: ``CrowdSimulator`` with the fused in-process
   ``DirectTransport``.
2. The same spec over the wire: a :class:`~repro.serve.CrowdService`
   hosting an identically configured ``ServerCore`` on a loopback port
   (exactly what ``repro-serve`` launches), driven through
   ``SimulationConfig(transport="http", server_url=...)``.
3. Concurrent smoke: 8 :class:`~repro.serve.RemoteDevice` threads
   hammering one fresh service at once — arrival order is now
   scheduling-dependent (the documented parity caveat), so the check is
   the aggregate invariant: zero server errors and
   ``iterations == accepted check-ins``.

Usage::

    PYTHONPATH=src python examples/remote_round.py

Point act 2 at an externally launched server instead (it must host the
matching spec; the script prints the ``repro-serve`` line to use)::

    PYTHONPATH=src python examples/remote_round.py --server-url http://127.0.0.1:8900
"""

from __future__ import annotations

import argparse
import threading

import numpy as np

from repro.core.config import DeviceConfig, ServerConfig
from repro.core.server_core import ServerCore
from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.optim import paper_sgd
from repro.serve import CrowdService, HttpTransport, RemoteDevice
from repro.simulation import CrowdSimulator, SimulationConfig

# One spec, shared by every act (and by the repro-serve line below).
NUM_DEVICES = 8
BATCH_SIZE = 5
NUM_FEATURES = 50
NUM_CLASSES = 10
LEARNING_RATE_CONSTANT = 1.0
PROJECTION_RADIUS = 100.0
NUM_TRAIN, NUM_TEST = 800, 200
SEED = 7


def build_core(max_iterations: int) -> ServerCore:
    """The server-side task — identical to what CrowdSimulator builds."""
    model = MulticlassLogisticRegression(NUM_FEATURES, NUM_CLASSES)
    optimizer = paper_sgd(
        model.init_parameters(),
        learning_rate_constant=LEARNING_RATE_CONSTANT,
        projection_radius=PROJECTION_RADIUS,
    )
    return ServerCore(model, optimizer, ServerConfig(max_iterations=max_iterations))


def simulator(config: SimulationConfig, parts, test) -> CrowdSimulator:
    return CrowdSimulator(
        MulticlassLogisticRegression(NUM_FEATURES, NUM_CLASSES),
        parts, test, config, seed=SEED,
    )


def concurrent_smoke(url: str) -> None:
    """Act 3: >= 8 devices from independent threads, one live service."""
    transport = HttpTransport(url)
    rng = np.random.default_rng(0)
    data = rng.normal(size=(NUM_DEVICES, 40, NUM_FEATURES))
    labels = rng.integers(0, NUM_CLASSES, size=(NUM_DEVICES, 40))
    failures: list[Exception] = []

    def drive(device_index: int) -> None:
        try:
            remote = RemoteDevice.join(
                transport, device_index,
                MulticlassLogisticRegression(NUM_FEATURES, NUM_CLASSES),
                DeviceConfig.default(batch_size=BATCH_SIZE, num_classes=NUM_CLASSES),
                np.random.default_rng(100 + device_index),
            )
            for sample in range(data.shape[1]):
                if remote.observe(data[device_index, sample],
                                  int(labels[device_index, sample])):
                    remote.run_round()
        except Exception as error:  # noqa: BLE001 - report, don't hang the join
            failures.append(error)

    threads = [
        threading.Thread(target=drive, args=(m,)) for m in range(NUM_DEVICES)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--server-url", default=None,
        help="drive an externally launched repro-serve instead of an "
             "in-process loopback service (must host the matching spec)",
    )
    args = parser.parse_args()

    train, test = make_mnist_like(num_train=NUM_TRAIN, num_test=NUM_TEST, seed=0)
    parts = iid_partition(train, NUM_DEVICES, np.random.default_rng(0))
    max_iterations = sum(len(p) for p in parts) + 1

    print(f"-- act 1: in-process reference (DirectTransport), M={NUM_DEVICES}, "
          f"b={BATCH_SIZE}")
    base = dict(num_devices=NUM_DEVICES, batch_size=BATCH_SIZE, num_snapshots=8)
    direct = simulator(
        SimulationConfig(transport="direct", **base), parts, test
    ).run()
    print(f"   final error {direct.curve.final_error:.3f}, "
          f"{direct.server_iterations} updates")

    print("-- act 2: the same run over live HTTP")
    print(f"   (equivalent external server: repro-serve "
          f"--num-features {NUM_FEATURES} --num-classes {NUM_CLASSES} "
          f"--learning-rate-constant {LEARNING_RATE_CONSTANT} "
          f"--projection-radius {PROJECTION_RADIUS} "
          f"--max-iterations {max_iterations})")
    service = None
    if args.server_url is None:
        service = CrowdService(build_core(max_iterations)).start()
        url = service.url
        print(f"   started loopback service at {url}")
    else:
        url = args.server_url
    try:
        http = simulator(
            SimulationConfig(transport="http", server_url=url, **base),
            parts, test,
        ).run()
    finally:
        if service is not None:
            service.stop()
    print(f"   final error {http.curve.final_error:.3f}, "
          f"{http.server_iterations} updates")
    if service is not None:
        print(f"   service answered {service.requests_served} requests, "
              f"{service.total_errors} errors")

    identical = np.array_equal(direct.final_parameters, http.final_parameters)
    print(f"   final parameters bit-identical to DirectTransport: {identical}")
    if not identical:
        print("   !! parity violated — HTTP and in-process runs diverged")
        return 1

    print(f"-- act 3: concurrent smoke — {NUM_DEVICES} RemoteDevice threads")
    smoke_core = build_core(10**6)
    with CrowdService(smoke_core) as smoke_service:
        concurrent_smoke(smoke_service.url)
        iterations = smoke_core.iteration
        errors = smoke_service.total_errors
    print(f"   {iterations} concurrent updates applied, "
          f"{errors} server errors")
    if errors:
        print("   !! the service returned errors under concurrency")
        return 1
    print("ok: full HTTP training run matches in-process bit for bit")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
