"""Why local sanitization matters: an eavesdropper inverts gradients.

Section III-C's threat model lets the adversary read *all* device-server
traffic.  This demo plays that adversary against the b = 1 logistic
update: without noise, the raw feature vector (e.g. a location trace or an
audio spectrum) can be read straight off the transmitted gradient; with
the Eq. (10) Laplace mechanism the reconstruction collapses.

Usage::

    python examples/eavesdropper_attack.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.data import make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.privacy import LaplaceMechanism, inversion_attack_success

NUM_SAMPLES = 50


def main() -> None:
    print("Generating victim data (50-dim features, 10 classes) ...")
    train, _ = make_mnist_like(num_train=NUM_SAMPLES, num_test=10, seed=0)
    model = MulticlassLogisticRegression(50, 10)
    rng = np.random.default_rng(0)
    w = rng.normal(size=model.num_parameters)  # a mid-training public model

    print("\nThe adversary observes one b=1 gradient per victim sample and")
    print("runs rank-one inversion (see repro.privacy.attacks).\n")
    print(f"{'privacy level':>16} {'feature cosine':>15} {'label recovery':>15}")
    for epsilon in (math.inf, 100.0, 10.0, 1.0, 0.1):
        if math.isinf(epsilon):
            sanitizer = None
            label = "none (eps=inf)"
        else:
            sanitizer = LaplaceMechanism(
                epsilon, model.gradient_sensitivity(1), np.random.default_rng(1)
            )
            label = f"eps = {epsilon:g}"
        cosine, label_rate = inversion_attack_success(
            model, w, train.features, train.labels, sanitizer=sanitizer
        )
        print(f"{label:>16} {cosine:>15.3f} {label_rate:>15.2%}")

    print(
        "\nWithout sanitization the eavesdropper recovers the private\n"
        "feature vector (cosine ≈ 1.0) and its label from every update.\n"
        "At the paper's operating points the same attack is reduced to\n"
        "noise — the concrete meaning of the Theorem 1 guarantee."
    )


if __name__ == "__main__":
    main()
