"""Input perturbation for the centralized baseline (Appendix C).

In the centralized approach, raw samples travel to the server, so privacy
must be enforced *before* transmission:

* features get coordinate-wise Laplace noise ``P(z) ∝ exp(-ε_x |z| / 2)``
  — scale 2/ε_x, from the L1-diameter-2 sensitivity of the identity map on
  ``‖x‖₁ ≤ 1`` (Eq. 15);
* labels are resampled by the exponential mechanism with indicator score
  (Eq. 16).

Test data is never perturbed (footnote 8): the evaluation measures how well
the *model learned from noisy data* performs on clean inputs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.dataset import Dataset
from repro.privacy.budget import CentralizedBudget
from repro.privacy.exponential import perturb_labels
from repro.privacy.laplace import LaplaceMechanism
from repro.privacy.sensitivity import feature_sensitivity


def perturb_features(
    features: np.ndarray, epsilon: float, rng: np.random.Generator
) -> np.ndarray:
    """Eq. 15: add Laplace(2/ε) noise to every feature coordinate."""
    mechanism = LaplaceMechanism(
        epsilon=epsilon, sensitivity=feature_sensitivity(1.0), rng=rng
    )
    return mechanism.release(np.asarray(features, dtype=np.float64))


def perturb_dataset(
    dataset: Dataset, budget: CentralizedBudget, rng: np.random.Generator
) -> Dataset:
    """Apply Eqs. (15)-(16) to a whole training set.

    >>> import numpy as np
    >>> from repro.privacy.budget import CentralizedBudget
    >>> ds = Dataset(np.zeros((5, 3)), np.zeros(5, dtype=int), num_classes=2)
    >>> noisy = perturb_dataset(ds, CentralizedBudget.even_split(math.inf),
    ...                         np.random.default_rng(0))
    >>> bool(np.array_equal(noisy.features, ds.features))
    True
    """
    features = perturb_features(dataset.features, budget.epsilon_feature, rng)
    labels = perturb_labels(dataset.labels, dataset.num_classes, budget.epsilon_label, rng)
    return Dataset(features, labels, dataset.num_classes)
