"""Decentralized learning — the "Decentral (SGD)" arm of Figs. 4 and 7.

Each device learns purely locally (SoundSense-style): it runs SGD on its
own ~N/M samples and never communicates.  Privacy is trivially preserved,
but each model sees only a 1/M fraction of the data, so the average device
error plateaus far above the pooled approaches (Section IV-A's VC-theory
argument; ≈0.5 vs ≈0.1 on MNIST in Fig. 4).

The reported curve is the *average test error across devices* as a function
of the total number of samples consumed crowd-wide (device iteration × M),
which puts it on the same x-axis as the other arms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.evaluation.curves import ErrorCurve, average_curves
from repro.evaluation.metrics import snapshot_grid, test_error
from repro.models.base import Model
from repro.optim.projection import Projection
from repro.optim.schedules import LearningRateSchedule
from repro.optim.sgd import SGD
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class DecentralizedResult:
    """Averaged device curve plus per-device final errors."""

    curve: ErrorCurve
    final_errors: np.ndarray  # one entry per evaluated device


class DecentralizedTrainer:
    """Independent per-device SGD with no data sharing.

    Parameters
    ----------
    model, schedule, projection:
        The same optimization stack as Crowd-ML, for fairness.
    evaluation_devices:
        Evaluating every one of M=1000 devices at every snapshot is
        needlessly expensive; test error is averaged over a uniform random
        subsample of this many devices (all devices when M is small).
    """

    def __init__(
        self,
        model: Model,
        schedule: LearningRateSchedule,
        projection: Projection | None = None,
        evaluation_devices: int = 20,
    ):
        if evaluation_devices < 1:
            raise ConfigurationError("evaluation_devices must be >= 1")
        self._model = model
        self._schedule = schedule
        self._projection = projection
        self._evaluation_devices = int(evaluation_devices)

    def fit(
        self,
        device_datasets: list[Dataset],
        test: Dataset,
        rng: np.random.Generator,
        num_passes: int = 1,
        num_snapshots: int = 30,
    ) -> DecentralizedResult:
        """Train every evaluated device locally; average their curves."""
        num_devices = len(device_datasets)
        if num_devices == 0:
            raise ConfigurationError("need at least one device dataset")
        eval_count = min(self._evaluation_devices, num_devices)
        chosen = rng.choice(num_devices, size=eval_count, replace=False)

        curves: list[ErrorCurve] = []
        final_errors: list[float] = []
        for device_index in chosen:
            local = device_datasets[int(device_index)]
            if len(local) == 0:
                continue
            curve = self._train_one(local, test, rng, num_passes, num_snapshots,
                                     num_devices)
            curves.append(curve)
            final_errors.append(curve.final_error)
        if not curves:
            raise ConfigurationError("all evaluated devices had empty datasets")
        return DecentralizedResult(
            curve=average_curves(curves),
            final_errors=np.asarray(final_errors, dtype=np.float64),
        )

    def _train_one(
        self,
        local: Dataset,
        test: Dataset,
        rng: np.random.Generator,
        num_passes: int,
        num_snapshots: int,
        num_devices: int,
    ) -> ErrorCurve:
        """Local SGD; x-axis scaled by M to count crowd-wide samples."""
        optimizer = SGD(
            self._model.init_parameters(), schedule=self._schedule,
            projection=self._projection,
        )
        local_total = len(local) * num_passes
        grid = snapshot_grid(local_total, num_snapshots)
        grid_pos = 0
        consumed = 0
        iters: list[int] = []
        errors: list[float] = []
        for _ in range(num_passes):
            order = rng.permutation(len(local))
            for index in order:
                gradient = self._model.gradient(
                    optimizer.parameters,
                    local.features[index : index + 1],
                    local.labels[index : index + 1],
                )
                optimizer.step(gradient)
                consumed += 1
                while grid_pos < grid.shape[0] and consumed >= grid[grid_pos]:
                    iters.append(consumed * num_devices)
                    errors.append(test_error(self._model, optimizer.parameters, test))
                    grid_pos += 1
        if not iters:
            iters.append(max(consumed, 1) * num_devices)
            errors.append(test_error(self._model, optimizer.parameters, test))
        return ErrorCurve(np.asarray(iters), np.asarray(errors))
