"""Centralized SGD on perturbed inputs — the "Central (SGD)" arm of Fig. 5.

Devices stream their (feature- and label-perturbed, Appendix C) samples to
the server, which runs minibatch SGD.  Unlike Crowd-ML, the noise here has
*constant* variance per sample (8/ε_x² per feature coordinate) that no
minibatch size can shrink — the structural disadvantage Section IV-A
identifies and Fig. 5 demonstrates (≈0.9 error at ε⁻¹ = 0.1 regardless
of b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.input_perturbation import perturb_dataset
from repro.data.dataset import Dataset
from repro.evaluation.curves import ErrorCurve
from repro.evaluation.metrics import snapshot_grid, test_error
from repro.models.base import Model
from repro.optim.projection import Projection
from repro.optim.schedules import LearningRateSchedule
from repro.optim.sgd import SGD
from repro.privacy.budget import CentralizedBudget
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class CentralizedSGDResult:
    """Final parameters and the recorded error-vs-iteration curve."""

    parameters: np.ndarray
    curve: ErrorCurve


class CentralizedSGDTrainer:
    """Minibatch SGD at the server over input-perturbed streamed samples.

    Parameters
    ----------
    model, schedule, projection:
        Same optimization stack as the Crowd-ML server, for a fair
        comparison — only the privacy mechanism differs.
    budget:
        Appendix C input-perturbation levels (``None`` = clean data).
    batch_size:
        Server-side minibatch size b (the Fig. 5 sweep variable).
    """

    def __init__(
        self,
        model: Model,
        schedule: LearningRateSchedule,
        batch_size: int = 1,
        budget: Optional[CentralizedBudget] = None,
        projection: Optional[Projection] = None,
    ):
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self._model = model
        self._schedule = schedule
        self._batch_size = int(batch_size)
        self._budget = budget
        self._projection = projection

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def fit(
        self,
        train: Dataset,
        test: Dataset,
        rng: np.random.Generator,
        num_passes: int = 1,
        num_snapshots: int = 60,
    ) -> CentralizedSGDResult:
        """Stream perturbed samples through minibatch SGD; record the curve.

        The iteration axis counts *samples consumed* (to match the crowd
        curves), i.e. advances by b per SGD step.
        """
        data = train
        if self._budget is not None and not math.isinf(self._budget.total_epsilon):
            data = perturb_dataset(train, self._budget, rng)

        optimizer = SGD(
            self._model.init_parameters(),
            schedule=self._schedule,
            projection=self._projection,
        )
        max_samples = len(data) * num_passes
        grid = snapshot_grid(max_samples, num_snapshots)
        snapshots_iters: list[int] = []
        snapshots_errors: list[float] = []
        grid_pos = 0
        consumed = 0

        for _ in range(num_passes):
            order = rng.permutation(len(data))
            for start in range(0, len(order), self._batch_size):
                batch = order[start : start + self._batch_size]
                gradient = self._model.gradient(
                    optimizer.parameters, data.features[batch], data.labels[batch]
                )
                optimizer.step(gradient)
                consumed += batch.shape[0]
                while grid_pos < grid.shape[0] and consumed >= grid[grid_pos]:
                    snapshots_iters.append(consumed)
                    snapshots_errors.append(
                        test_error(self._model, optimizer.parameters, test)
                    )
                    grid_pos += 1
        if not snapshots_iters or snapshots_iters[-1] != consumed:
            snapshots_iters.append(consumed)
            snapshots_errors.append(test_error(self._model, optimizer.parameters, test))
        # Deduplicate iterations that landed on the same consumed count.
        iters = np.asarray(snapshots_iters, dtype=np.int64)
        errors = np.asarray(snapshots_errors, dtype=np.float64)
        _, first_idx = np.unique(iters, return_index=True)
        curve = ErrorCurve(iters[first_idx], errors[first_idx])
        return CentralizedSGDResult(parameters=optimizer.parameters, curve=curve)
