"""Centralized batch learning — the "Central (batch)" arm of Figs. 4-9.

All samples are pooled at the server and the empirical risk (Eq. 2) is
minimized directly with a deterministic full-batch optimizer (L-BFGS).
The batch algorithm is not incremental, so its figure representation is a
horizontal line at the final test error.

Under privacy, the pooled *training* inputs are first perturbed with the
Appendix C mechanisms (test data stays clean, footnote 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import minimize

from repro.baselines.input_perturbation import perturb_dataset
from repro.data.dataset import Dataset
from repro.evaluation.metrics import test_error
from repro.models.base import Model
from repro.privacy.budget import CentralizedBudget


@dataclass(frozen=True)
class BatchResult:
    """Trained parameters plus bookkeeping."""

    parameters: np.ndarray
    train_loss: float
    converged: bool
    num_iterations: int


class CentralizedBatchTrainer:
    """Full-batch risk minimization on pooled (optionally perturbed) data.

    Parameters
    ----------
    model:
        The classifier family (supplies loss/gradient oracles).
    budget:
        Input-perturbation levels; ``None`` or an ε=∞ budget trains on
        clean data (the Figs. 4/7 arm).
    max_iterations:
        L-BFGS iteration cap.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.data.dataset import Dataset
    >>> model = MulticlassLogisticRegression(2, 2, l2_regularization=0.01)
    >>> ds = Dataset(np.array([[0.9, 0.1], [0.1, 0.9]] * 10),
    ...              np.array([0, 1] * 10), 2)
    >>> trainer = CentralizedBatchTrainer(model)
    >>> result = trainer.fit(ds, rng=np.random.default_rng(0))
    >>> model.error_rate(result.parameters, ds.features, ds.labels)
    0.0
    """

    def __init__(
        self,
        model: Model,
        budget: Optional[CentralizedBudget] = None,
        max_iterations: int = 500,
    ):
        self._model = model
        self._budget = budget
        self._max_iterations = int(max_iterations)

    @property
    def model(self) -> Model:
        return self._model

    def fit(self, train: Dataset, rng: np.random.Generator) -> BatchResult:
        """Perturb (if private), then minimize the empirical risk."""
        data = train
        if self._budget is not None and not math.isinf(self._budget.total_epsilon):
            data = perturb_dataset(train, self._budget, rng)

        features, labels = data.features, data.labels
        model = self._model

        def objective(flat: np.ndarray):
            return (
                model.loss(flat, features, labels),
                model.gradient(flat, features, labels),
            )

        start = model.init_parameters()
        outcome = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self._max_iterations},
        )
        return BatchResult(
            parameters=np.asarray(outcome.x, dtype=np.float64),
            train_loss=float(outcome.fun),
            converged=bool(outcome.success),
            num_iterations=int(outcome.nit),
        )

    def evaluate(self, train: Dataset, test: Dataset, rng: np.random.Generator) -> float:
        """Train on ``train`` and return clean test error."""
        result = self.fit(train, rng)
        return test_error(self._model, result.parameters, test)
