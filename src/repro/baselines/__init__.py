"""Comparator systems: centralized (batch & SGD) and decentralized learning.

These are the three non-Crowd-ML arms of every figure in Section V, built
on the same models/optimizers so that only the system architecture (and its
privacy mechanism) differs.
"""

from repro.baselines.centralized import BatchResult, CentralizedBatchTrainer
from repro.baselines.centralized_sgd import CentralizedSGDResult, CentralizedSGDTrainer
from repro.baselines.decentralized import DecentralizedResult, DecentralizedTrainer
from repro.baselines.input_perturbation import perturb_dataset, perturb_features

__all__ = [
    "BatchResult",
    "CentralizedBatchTrainer",
    "CentralizedSGDResult",
    "CentralizedSGDTrainer",
    "DecentralizedResult",
    "DecentralizedTrainer",
    "perturb_dataset",
    "perturb_features",
]
