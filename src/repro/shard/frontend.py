"""``ShardFrontEnd`` — one HTTP endpoint fronting N shard workers.

Clients speak the exact :mod:`repro.serve.wire` protocol they would
speak to a single :class:`~repro.serve.service.CrowdService`; the front
end routes each request to the worker owning the device:

* ``POST /v1/join`` / ``POST /v1/checkout`` — resolved by the envelope's
  ``device_id`` and forwarded **byte-for-byte** (the response comes back
  verbatim too, so single-shard traffic pays no re-encode).
* ``POST /v1/checkins`` — a batch whose messages all route to one shard
  is forwarded verbatim; a mixed batch (a gateway flushing several
  devices) is split into per-shard sub-batches and the acks merged back
  into the original message order.  The merged ``server_iteration`` is
  the sum of the answering shards' iterations (total applied updates),
  and the batch reports ``stopped`` only when every involved shard has
  stopped.
* ``GET /v1/status`` — aggregated counters across all shards
  (:func:`~repro.core.sharding.merge_status_counts`) plus a per-shard
  detail list; ``?shard=k`` passes one worker's status through verbatim
  (the only way to read parameters — per-shard vectors are the unit of
  bit-exactness, so ``?parameters=1`` without a shard is refused).

Routing reads the supervisor's endpoint table on **every** request, so a
failover repoints traffic immediately.  A shard with no healthy worker
answers 503 ``unavailable`` — retryable by
:class:`~repro.serve.client.ServiceClient` — and answers stamped with an
epoch older than the table's are refused the same way (a fenced zombie's
late reply must not reach a client as truth).

Splitting and forwarding never decodes gradients: the front end parses
envelope JSON only, so the hot path stays request-bound, not
serialization-bound.

Exactly-once across a split: if forwarding sub-batch 2 fails after
sub-batch 1 was applied, the whole request errors and the client retries
the full batch — shard 1's dedupe ledger answers the replayed half with
its original acks, so nothing double-applies.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.core.sharding import ShardMergeError, merge_status_counts
from repro.core.stopping import StopDecision, StopReason
from repro.obs.metrics import (
    NULL_REGISTRY,
    label_snapshot,
    merge_snapshots,
    render_prometheus,
)
from repro.serve import wire
from repro.serve.client import RemoteServiceError, ServiceClient
from repro.serve.service import MAX_BODY_BYTES
from repro.shard.routing import ShardRouter
from repro.utils.exceptions import AuthenticationError, ProtocolError


#: Metric label values for the front end's per-endpoint series.
_FRONTEND_ENDPOINTS = {
    "/v1/join": "join",
    "/v1/checkout": "checkout",
    "/v1/checkins": "checkins",
    "/v1/status": "status",
    "/v1/metrics": "metrics",
}


class StaticEndpoints:
    """A fixed (but mutable) shard→endpoint table for in-process tiers.

    Anything with an ``endpoints() -> {shard: (url, epoch)}`` method can
    back a front end; production uses
    :class:`~repro.shard.supervisor.ShardSupervisor`, tests use this.
    Values may be bare URLs (epoch defaults to ``-1`` = unfenced).
    """

    def __init__(self, endpoints: Mapping[int, Union[str, Tuple[str, int]]]):
        self._lock = threading.Lock()
        self._endpoints: Dict[int, Tuple[str, int]] = {}
        for shard, entry in endpoints.items():
            if isinstance(entry, str):
                self._endpoints[int(shard)] = (entry, -1)
            else:
                url, epoch = entry
                self._endpoints[int(shard)] = (str(url), int(epoch))

    def endpoints(self) -> Dict[int, Tuple[str, int]]:
        with self._lock:
            return dict(self._endpoints)

    def set(self, shard: int, url: Optional[str], epoch: int = -1) -> None:
        """Repoint (or with ``url=None`` unroute) one shard."""
        with self._lock:
            if url is None:
                self._endpoints.pop(int(shard), None)
            else:
                self._endpoints[int(shard)] = (str(url), int(epoch))


class ShardFrontEnd:
    """Route wire-protocol traffic across per-shard workers.

    Parameters
    ----------
    router:
        The :class:`~repro.shard.routing.ShardRouter` deciding device
        ownership (must match the ``--shard-policy``/``--shard-count``
        the workers were launched with).
    endpoints:
        Endpoint resolver — a
        :class:`~repro.shard.supervisor.ShardSupervisor` or
        :class:`StaticEndpoints` (anything with ``endpoints()``).
    host / port:
        Bind address of the front end itself (``port=0`` = ephemeral).
    worker_timeout / worker_retries / worker_backoff:
        Upstream :class:`~repro.serve.client.ServiceClient` knobs.  A
        couple of fast retries ride out the instant of a worker restart
        without surfacing a 503 for every blip.
    """

    def __init__(
        self,
        router: ShardRouter,
        endpoints,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_timeout: float = 30.0,
        worker_retries: int = 2,
        worker_backoff: float = 0.05,
        metrics=None,
    ):
        self._router = router
        self._resolver = endpoints
        self._worker_timeout = float(worker_timeout)
        self._worker_retries = int(worker_retries)
        self._worker_backoff = float(worker_backoff)
        self._started_at = time.time()
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._metrics = registry
        endpoints_labels = ("join", "checkout", "checkins", "status",
                            "metrics", "other")
        self._m_requests = {
            name: registry.counter("frontend_requests_total", endpoint=name)
            for name in endpoints_labels
        }
        self._m_errors = {
            name: registry.counter("frontend_errors_total", endpoint=name)
            for name in endpoints_labels
        }
        self._m_latency = {
            name: registry.histogram("frontend_request_seconds", endpoint=name)
            for name in endpoints_labels
        }
        self._m_shard_requests = {
            shard: registry.counter(
                "frontend_shard_requests_total", shard=str(shard)
            )
            for shard in range(router.num_shards)
        }
        self._m_split_batches = registry.counter("frontend_split_batches_total")
        self._m_stale_epoch = registry.counter(
            "frontend_stale_epoch_rejections_total"
        )
        self._m_scrape_failures = registry.counter(
            "frontend_metrics_scrape_failures_total"
        )
        self._clients: Dict[str, ServiceClient] = {}
        self._clients_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._idle = threading.Condition(self._counter_lock)
        self._inflight = 0
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self.requests_served = 0
        #: error responses sent, keyed by wire error code.
        self.errors_returned: Dict[str, int] = {}
        #: mixed-shard check-in batches that were split.
        self.split_batches = 0
        #: worker answers refused for carrying a fenced (stale) epoch.
        self.stale_epoch_rejections = 0
        frontend = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, format, *args):  # noqa: A002 - stdlib signature
                pass

            def do_POST(self):
                frontend._dispatch(self, "POST")

            def do_GET(self):
                frontend._dispatch(self, "GET")

        self._http = ThreadingHTTPServer((host, int(port)), _Handler)
        self._http.daemon_threads = True

    # -- lifecycle (mirrors CrowdService) -------------------------------- #

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def total_errors(self) -> int:
        return sum(self.errors_returned.values())

    def start(self) -> "ShardFrontEnd":
        if self._thread is not None:
            raise ProtocolError("front end already started")
        self._serving = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="shard-frontend", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        try:
            self._serving = True
            self._http.serve_forever()
        finally:
            self._serving = False

    def stop(self) -> None:
        if self._serving:
            self._http.shutdown()
            self._serving = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._http.server_close()

    def drain(self, timeout: float = 10.0) -> bool:
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def __enter__(self) -> "ShardFrontEnd":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request plumbing ------------------------------------------------ #

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        with self._idle:
            self._inflight += 1
        try:
            self._dispatch_inner(handler, method)
        finally:
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def _dispatch_inner(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        code = None
        content_type = "application/json"
        parsed = urlparse(handler.path)
        endpoint = _FRONTEND_ENDPOINTS.get(parsed.path, "other")
        start = time.perf_counter()
        try:
            result = self._handle(handler, method, parsed)
            status, payload = result[0], result[1]
            if len(result) > 2:
                content_type = result[2]
        except wire.WireError as error:
            code = error.code
            status, payload = error.http_status, wire.encode_error(code, str(error))
        except AuthenticationError as error:
            code = wire.ErrorCode.AUTH_FAILED
            status, payload = 401, wire.encode_error(code, str(error))
        except ProtocolError as error:
            code = wire.ErrorCode.MALFORMED
            status, payload = 400, wire.encode_error(code, str(error))
        except Exception as error:  # noqa: BLE001 - the front end must survive
            code = wire.ErrorCode.INTERNAL
            status, payload = 500, wire.encode_error(
                code, f"{type(error).__name__}: {error}"
            )
        if code is not None:
            handler.close_connection = True
        self._send(handler, status, payload, content_type)
        elapsed = time.perf_counter() - start
        with self._counter_lock:
            self.requests_served += 1
            if code is not None:
                self.errors_returned[code] = self.errors_returned.get(code, 0) + 1
        self._m_requests[endpoint].inc()
        if code is not None:
            self._m_errors[endpoint].inc()
        self._m_latency[endpoint].observe(elapsed)

    def _handle(self, handler: BaseHTTPRequestHandler, method: str, parsed):
        route = (method, parsed.path)
        if route == ("POST", "/v1/join"):
            return self._handle_routed(self._read_body(handler), "join_request",
                                       "/v1/join")
        if route == ("POST", "/v1/checkout"):
            return self._handle_routed(self._read_body(handler), "checkout_request",
                                       "/v1/checkout")
        if route == ("POST", "/v1/checkins"):
            return self._handle_checkins(self._read_body(handler))
        if route == ("GET", "/v1/status"):
            return self._handle_status(parse_qs(parsed.query))
        if route == ("GET", "/v1/metrics"):
            query = parse_qs(parsed.query)
            return self._handle_metrics(query.get("format", ["text"])[-1])
        if parsed.path in _FRONTEND_ENDPOINTS:
            raise wire.WireError(
                wire.ErrorCode.METHOD_NOT_ALLOWED,
                f"{method} not supported on {parsed.path}",
            )
        raise wire.WireError(wire.ErrorCode.NOT_FOUND, f"no route {parsed.path}")

    def _read_body(self, handler: BaseHTTPRequestHandler) -> bytes:
        try:
            length = int(handler.headers.get("Content-Length", "0"))
        except ValueError:
            raise wire.WireError(wire.ErrorCode.MALFORMED, "bad Content-Length header")
        if length < 0:
            raise wire.WireError(wire.ErrorCode.MALFORMED, "bad Content-Length header")
        if length > MAX_BODY_BYTES:
            raise wire.WireError(
                wire.ErrorCode.PAYLOAD_TOO_LARGE,
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} byte limit",
            )
        return handler.rfile.read(length)

    def _send(
        self,
        handler: BaseHTTPRequestHandler,
        status: int,
        payload: str,
        content_type: str = "application/json",
    ) -> None:
        body = payload.encode("utf-8")
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", content_type)
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- upstream forwarding --------------------------------------------- #

    def _endpoint(self, shard: int) -> Tuple[str, int]:
        entry = self._resolver.endpoints().get(shard)
        if entry is None:
            raise wire.WireError(
                wire.ErrorCode.UNAVAILABLE,
                f"shard {shard} has no healthy worker (failover in progress); "
                f"retry",
            )
        return entry

    def _client_for(self, url: str) -> ServiceClient:
        with self._clients_lock:
            client = self._clients.get(url)
            if client is None:
                client = ServiceClient(
                    url,
                    timeout=self._worker_timeout,
                    retries=self._worker_retries,
                    backoff=self._worker_backoff,
                )
                self._clients[url] = client
            return client

    def _forward(self, shard: int, method: str, path: str,
                 body: Optional[bytes]) -> bytes:
        url, _ = self._endpoint(shard)
        self._m_shard_requests[shard].inc()
        try:
            return self._client_for(url).call_raw(method, path, body)
        except RemoteServiceError as error:
            if error.code == wire.ErrorCode.AUTH_FAILED:
                raise AuthenticationError(str(error))
            if error.code == wire.ErrorCode.UNREACHABLE or (
                error.http_status is not None and error.http_status >= 500
            ):
                # The worker is mid-crash/restart: answer retryable, the
                # supervisor will have repointed by the client's replay.
                raise wire.WireError(
                    wire.ErrorCode.UNAVAILABLE,
                    f"shard {shard} worker unavailable: {error}",
                )
            # Typed 4xx answers pass through with their own code/status.
            raise wire.WireError(error.code, str(error))

    def _check_epoch(self, shard: int, raw_response: bytes) -> None:
        """Refuse an answer stamped with an epoch the fence has passed.

        The table is re-read *after* the response arrived: a request
        that raced a failover may have reached the fenced zombie, whose
        answer must not surface as truth.  The refusal is retryable —
        the client's replay resolves the *current* endpoint, and the
        dedupe ledger keeps a replayed check-in exactly-once.
        """
        try:
            body = json.loads(raw_response).get("body", {})
            answered = body.get("epoch", -1)
        except (ValueError, AttributeError):
            return  # unparseable → let the caller's decode complain
        entry = self._resolver.endpoints().get(shard)
        expected = entry[1] if entry is not None else -1
        if isinstance(answered, int) and 0 <= answered < expected:
            with self._counter_lock:
                self.stale_epoch_rejections += 1
            self._m_stale_epoch.inc()
            raise wire.WireError(
                wire.ErrorCode.UNAVAILABLE,
                f"shard {shard} answered from fenced epoch {answered} "
                f"(current epoch {expected}); retry",
            )

    # -- route handlers -------------------------------------------------- #

    @staticmethod
    def _device_id_of(body: Dict[str, Any], kind: str) -> int:
        try:
            return int(body["device_id"])
        except (KeyError, TypeError, ValueError) as error:
            raise wire.WireError(
                wire.ErrorCode.MALFORMED, f"malformed {kind}: {error}"
            )

    def _handle_routed(self, raw: bytes, kind: str, path: str):
        """join/checkout: single-device requests forwarded verbatim."""
        _, body = wire.parse_envelope(raw, kind)
        shard = self._router.shard_of(self._device_id_of(body, kind))
        return 200, self._forward(shard, "POST", path, raw).decode("utf-8")

    def _handle_checkins(self, raw: bytes):
        _, body = wire.parse_envelope(raw, "checkin_batch")
        messages = body.get("messages")
        if not isinstance(messages, list) or not messages:
            raise wire.WireError(
                wire.ErrorCode.MALFORMED,
                "checkin_batch needs a non-empty 'messages' list",
            )
        if len(messages) > wire.MAX_BATCH_MESSAGES:
            raise wire.WireError(
                wire.ErrorCode.MALFORMED,
                f"checkin_batch carries {len(messages)} messages "
                f"(limit {wire.MAX_BATCH_MESSAGES})",
            )
        for entry in messages:
            if not isinstance(entry, dict):
                raise wire.WireError(
                    wire.ErrorCode.MALFORMED,
                    "checkin_batch entries must be objects",
                )
        groups = self._router.split(
            messages,
            device_id_of=lambda entry: self._device_id_of(entry, "checkin"),
        )
        if len(groups) == 1:
            # Single-shard batch: verbatim passthrough both ways.
            (shard,) = groups
            answer = self._forward(shard, "POST", "/v1/checkins", raw)
            self._check_epoch(shard, answer)
            return 200, answer.decode("utf-8")
        return 200, self._split_checkins(raw, messages, groups)

    def _split_checkins(
        self,
        raw: bytes,
        messages: List[Dict[str, Any]],
        groups: Dict[int, List[Tuple[int, Dict[str, Any]]]],
    ) -> str:
        with self._counter_lock:
            self.split_batches += 1
        self._m_split_batches.inc()
        answers: Dict[int, List[Optional[Dict[str, Any]]]] = {}
        iteration_total = 0
        stopped_flags: List[bool] = []
        stop_reason: Optional[str] = None
        for shard in sorted(groups):
            entries = groups[shard]
            sub = wire.encode_envelope(
                "checkin_batch", {"messages": [item for _, item in entries]}
            )
            try:
                answer = self._forward(
                    shard, "POST", "/v1/checkins", sub.encode("utf-8")
                )
            except wire.WireError as error:
                if error.code == wire.ErrorCode.STOPPED:
                    # This shard's task ended: its half of the batch is
                    # refused wholesale (all-None acks), like ServerCore
                    # rejecting messages after the stop.
                    answers[shard] = [None] * len(entries)
                    stopped_flags.append(True)
                    continue
                raise
            self._check_epoch(shard, answer)
            _, result = wire.parse_envelope(answer, "checkin_result")
            acks = result.get("acks")
            if not isinstance(acks, list):
                raise wire.WireError(
                    wire.ErrorCode.INTERNAL,
                    f"shard {shard} answered a checkin_result without acks",
                )
            answers[shard] = acks
            iteration_total += int(result.get("server_iteration", 0))
            group_stopped = bool(result.get("stopped", False))
            stopped_flags.append(group_stopped)
            if group_stopped and stop_reason is None:
                stop_reason = str(result.get("stop_reason", "running"))
        merged_acks = ShardRouter.merge(groups, answers, len(messages))
        all_stopped = bool(stopped_flags) and all(stopped_flags)
        return wire.encode_envelope(
            "checkin_result",
            {
                "acks": merged_acks,
                "server_iteration": iteration_total,
                "stopped": all_stopped,
                "stop_reason": (
                    stop_reason if all_stopped and stop_reason is not None
                    else "running"
                ),
            },
        )

    def _handle_status(self, query: Dict[str, List[str]]):
        include = query.get("parameters", ["0"])[-1] not in ("", "0", "false")
        shard_values = query.get("shard")
        if shard_values:
            try:
                shard = int(shard_values[-1])
            except ValueError:
                raise wire.WireError(
                    wire.ErrorCode.MALFORMED, f"bad shard index {shard_values[-1]!r}"
                )
            if not 0 <= shard < self._router.num_shards:
                raise wire.WireError(
                    wire.ErrorCode.NOT_FOUND,
                    f"no shard {shard} (tier runs {self._router.num_shards})",
                )
            path = "/v1/status" + ("?parameters=1" if include else "")
            answer = self._forward(shard, "GET", path, None)
            self._check_epoch(shard, answer)
            return 200, answer.decode("utf-8")
        if include:
            raise wire.WireError(
                wire.ErrorCode.MALFORMED,
                "parameters are per-shard state; use ?shard=<k>&parameters=1",
            )
        return 200, self._aggregate_status()

    def _aggregate_status(self) -> str:
        table = self._resolver.endpoints()
        counts: List[Dict[str, Any]] = []
        rows: List[Dict[str, Any]] = []
        for shard in range(self._router.num_shards):
            entry = table.get(shard)
            if entry is None:
                raise wire.WireError(
                    wire.ErrorCode.UNAVAILABLE,
                    f"shard {shard} has no healthy worker; aggregate status "
                    f"unavailable mid-failover",
                )
            url, epoch = entry
            try:
                status = self._client_for(url).status()
            except RemoteServiceError as error:
                raise wire.WireError(
                    wire.ErrorCode.UNAVAILABLE,
                    f"shard {shard} status probe failed: {error}",
                )
            counts.append({
                "iteration": status.iteration,
                "stopped": status.stopped,
                "stop_reason": status.stop_reason,
                "checkouts_served": status.checkouts_served,
                "rejected_messages": status.rejected_messages,
                "registered_devices": status.registered_devices,
                "num_parameters": status.num_parameters,
                "duplicates_suppressed": status.duplicates_suppressed,
            })
            row: Dict[str, Any] = {
                "shard": shard,
                "url": url,
                "epoch": status.epoch if status.epoch >= 0 else epoch,
                "iteration": status.iteration,
                "stopped": status.stopped,
            }
            # Incarnation identity (PR 9): a failover changes the pid
            # and zeroes the uptime, so operators can tell replacements
            # apart even when the shard kept its port.
            if status.uptime_seconds is not None:
                row["uptime_seconds"] = status.uptime_seconds
            if status.pid is not None:
                row["pid"] = status.pid
            rows.append(row)
        try:
            merged = merge_status_counts(counts)
        except ShardMergeError as error:
            raise wire.WireError(wire.ErrorCode.INTERNAL, str(error))
        return wire.encode_status(
            iteration=merged["iteration"],
            stop=StopDecision(
                bool(merged["stopped"]), StopReason(merged["stop_reason"])
            ),
            checkouts_served=merged["checkouts_served"],
            rejected_messages=merged["rejected_messages"],
            registered_devices=merged["registered_devices"],
            num_parameters=merged["num_parameters"],
            duplicates_suppressed=merged["duplicates_suppressed"],
            shards=rows,
            uptime_seconds=time.time() - self._started_at,
            pid=os.getpid(),
        )

    # -- observability ---------------------------------------------------- #

    def _handle_metrics(self, fmt: str):
        snapshot = self.metrics_snapshot()
        if fmt == "json":
            return 200, json.dumps(snapshot, sort_keys=True), "application/json"
        return 200, render_prometheus(snapshot), "text/plain; version=0.0.4"

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Aggregate scrape: every shard's registry plus the front end's.

        Each worker's ``/v1/metrics?format=json`` document is tagged
        with its shard index (:func:`~repro.obs.metrics.label_snapshot`)
        and merged — counters add, histograms add bucket-wise — so one
        scrape of the front end answers both per-shard and tier-wide
        questions.  An unreachable worker is skipped and counted
        (``frontend_metrics_scrape_failures_total``); the scrape itself
        always succeeds.
        """
        self._metrics.gauge("frontend_uptime_seconds").set(
            time.time() - self._started_at
        )
        snapshots = [self._metrics.snapshot()]
        table = self._resolver.endpoints()
        for shard in sorted(table):
            url, _ = table[shard]
            try:
                scraped = self._client_for(url).metrics_snapshot()
            except Exception:  # noqa: BLE001 - a scrape never fails the tier
                self._m_scrape_failures.inc()
                continue
            if not scraped.get("enabled", False):
                continue
            snapshots.append(label_snapshot(scraped, shard=str(shard)))
        merged = merge_snapshots(snapshots)
        merged["enabled"] = bool(self._metrics.enabled) or len(snapshots) > 1
        return merged

    def stats_snapshot(self) -> Dict[str, Any]:
        """Uniform plain-dict counter snapshot (:mod:`repro.obs` idiom)."""
        with self._counter_lock:
            return {
                "requests_served": self.requests_served,
                "errors_returned": dict(self.errors_returned),
                "total_errors": sum(self.errors_returned.values()),
                "split_batches": self.split_batches,
                "stale_epoch_rejections": self.stale_epoch_rejections,
            }


__all__ = ["ShardFrontEnd", "StaticEndpoints"]
