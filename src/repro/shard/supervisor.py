"""Health-checked worker supervision with fenced failover.

The :class:`ShardSupervisor` owns the live incarnation of every shard
slot.  Its job splits in three:

* **Launch** — pick a fixed port per shard, advance the shard's fence
  (:meth:`~repro.persist.checkpoint.SnapshotStore.advance_fence`), and
  spawn the worker at the returned epoch.  Fence-then-spawn means no
  two incarnations of a shard can ever both hold a writable epoch.
* **Watch** — a daemon thread probes each worker every
  ``health_interval`` seconds: process liveness first (a SIGKILLed
  worker is detected without any network timeout), then a heartbeat
  ``GET /v1/status``.  ``heartbeat_misses`` consecutive probe failures
  declare a live-but-wedged worker dead (the zombie case — the process
  exists, the service doesn't answer).
* **Fail over** — advance the fence (fencing the old incarnation's
  writes *before* anything reads the snapshot to restore from), then
  respawn on the shard's own port.  When the port cannot be rebound —
  typically because the zombie still holds the listening socket — the
  shard is restored onto a **sibling slot**: a fresh process on a new
  ephemeral port, resumed from the shard's newest valid snapshot, and
  the routing table repoints.  Either way the replacement serves the
  exact durable state; the fenced zombie's late writes are refused at
  the store and its late answers carry a stale epoch the front end
  rejects.

The front end reads :meth:`endpoints` on every request, so a repointed
shard takes effect immediately; requests that race the failover window
get a retryable 503 until the replacement announces.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import NULL_REGISTRY
from repro.persist.checkpoint import SnapshotStore
from repro.serve.client import ServiceClient
from repro.shard.worker import ShardWorker, WorkerSpawnError
from repro.utils.exceptions import ReproError


class SupervisorError(ReproError):
    """The supervisor was driven outside its lifecycle contract."""


def _free_port(host: str = "127.0.0.1") -> int:
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


class ShardSupervisor:
    """Spawn, health-check, and fail over a tier of :class:`ShardWorker`\\ s.

    Parameters
    ----------
    workers:
        One :class:`~repro.shard.worker.ShardWorker` per shard, in shard
        order.
    health_interval:
        Seconds between probe sweeps (the detection latency floor).
    heartbeat_timeout:
        Socket timeout of one heartbeat ``GET /v1/status``.
    heartbeat_misses:
        Consecutive heartbeat failures before a *live* process is
        declared wedged and failed over (process exits fail over on the
        first sweep regardless).
    spawn_attempts / spawn_backoff:
        In-place respawn attempts on the shard's own port before
        failing over to a sibling slot (fresh ephemeral port).
    kill_zombies:
        SIGKILL a live-but-wedged incarnation before respawning
        (default).  ``False`` leaves the zombie running — the
        fence/stale-epoch tests use this to prove refusal is what
        protects the state, not the kill.
    """

    def __init__(
        self,
        workers: Sequence[ShardWorker],
        health_interval: float = 0.5,
        heartbeat_timeout: float = 2.0,
        heartbeat_misses: int = 2,
        spawn_attempts: int = 3,
        spawn_backoff: float = 0.2,
        kill_zombies: bool = True,
        metrics=None,
    ):
        if not workers:
            raise ValueError("a supervisor needs at least one worker")
        self.workers: List[ShardWorker] = list(workers)
        self.health_interval = float(health_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.heartbeat_misses = int(heartbeat_misses)
        self.spawn_attempts = int(spawn_attempts)
        self.spawn_backoff = float(spawn_backoff)
        self.kill_zombies = bool(kill_zombies)
        self._table_lock = threading.Lock()
        self._endpoints: Dict[int, Tuple[str, int]] = {}
        self._failover_lock = threading.Lock()
        self._misses = [0] * len(self.workers)
        self._heartbeat_clients: Dict[int, Tuple[str, ServiceClient]] = {}
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._stats_lock = threading.Lock()
        self._stats = {
            "failovers": 0,
            "process_exit_failovers": 0,
            "heartbeat_failovers": 0,
            "respawns_in_place": 0,
            "sibling_failovers": 0,
            "heartbeat_misses": 0,
        }
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._metrics = registry
        self._m_stats = {
            key: registry.counter(f"shard_supervisor_{key}_total")
            for key in self._stats
        }
        self._m_heartbeat_seconds = registry.histogram(
            "shard_supervisor_heartbeat_seconds"
        )
        self._m_fence_epochs = {
            shard: registry.gauge("shard_fence_epoch", shard=str(shard))
            for shard in range(len(self.workers))
        }

    # -- lifecycle ------------------------------------------------------- #

    @property
    def num_shards(self) -> int:
        return len(self.workers)

    def start(self) -> "ShardSupervisor":
        """Fence + spawn every shard at epoch, then start the watch thread."""
        if self._started:
            raise SupervisorError("supervisor already started")
        self._started = True
        try:
            for shard, worker in enumerate(self.workers):
                epoch = SnapshotStore(worker.shard_dir).advance_fence()
                self._m_fence_epochs[shard].set(epoch)
                url = self._spawn_with_retry(worker, epoch, _free_port())
                self._set_endpoint(shard, url, epoch)
        except WorkerSpawnError:
            self._shutdown_workers(graceful=False)
            raise
        self._thread = threading.Thread(
            target=self._watch_loop, name="shard-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, graceful: bool = True, timeout: float = 30.0) -> Dict[int, Optional[int]]:
        """Stop watching, shut every worker down; per-shard exit codes.

        ``graceful`` terminates with SIGTERM so each worker drains and
        flushes a final snapshot (exit code 0 = clean).
        """
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        return self._shutdown_workers(graceful=graceful, timeout=timeout)

    def _shutdown_workers(
        self, graceful: bool, timeout: float = 30.0
    ) -> Dict[int, Optional[int]]:
        codes: Dict[int, Optional[int]] = {}
        for shard, worker in enumerate(self.workers):
            if graceful:
                codes[shard] = worker.terminate(timeout=timeout)
            else:
                worker.stop()
                codes[shard] = None
        return codes

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- routing table --------------------------------------------------- #

    def _set_endpoint(self, shard: int, url: Optional[str], epoch: int) -> None:
        with self._table_lock:
            if url is None:
                self._endpoints.pop(shard, None)
            else:
                self._endpoints[shard] = (url, epoch)

    def endpoints(self) -> Dict[int, Tuple[str, int]]:
        """Current routing table: ``{shard: (url, epoch)}``.

        A shard mid-failover (or down) is absent — callers answer its
        traffic with a retryable 503 until it reappears.
        """
        with self._table_lock:
            return dict(self._endpoints)

    def stats(self) -> Dict[str, int]:
        """Consistent snapshot of the supervision counters."""
        with self._stats_lock:
            return dict(self._stats)

    def stats_snapshot(self) -> Dict[str, int]:
        """Uniform plain-dict counter snapshot (:mod:`repro.obs` idiom)."""
        return self.stats()

    def _bump(self, key: str, by: int = 1) -> None:
        with self._stats_lock:
            self._stats[key] += by
        self._m_stats[key].inc(by)

    # -- failover -------------------------------------------------------- #

    def failover(self, shard: int, reason: str = "manual") -> str:
        """Fence the old incarnation and bring up a replacement.

        Respawn on the shard's own port first; if the address cannot be
        rebound (a live zombie still holds the socket), restore the
        shard onto a sibling slot at a fresh ephemeral port.  Returns
        the replacement's URL.  Serialized — concurrent detections of
        the same death perform one failover.
        """
        with self._failover_lock:
            worker = self.workers[shard]
            # Unroute first: traffic hitting the dying incarnation's
            # address during the window gets a clean 503 from the front
            # end instead of a socket error from a corpse.
            self._set_endpoint(shard, None, -1)
            # Fence BEFORE reading anything: after this returns, a write
            # from the old epoch is refused, so the snapshot the
            # replacement restores is the newest state that can ever
            # exist for the old incarnation.
            epoch = SnapshotStore(worker.shard_dir).advance_fence()
            self._m_fence_epochs[shard].set(epoch)
            if worker.alive:
                if self.kill_zombies:
                    worker.sigkill()
                else:
                    # Leave the zombie running (fence tests): it keeps
                    # its socket, so the in-place respawn below fails to
                    # bind and the shard lands on a sibling slot.
                    worker.orphan()
            own_port = worker.port
            try:
                url = self._spawn_with_retry(worker, epoch, own_port)
                self._bump("respawns_in_place")
            except WorkerSpawnError:
                # Sibling slot: same durable shard, fresh address.
                url = worker.spawn(epoch=epoch, port=0)
                self._bump("sibling_failovers")
            self._misses[shard] = 0
            self._set_endpoint(shard, url, epoch)
            self._bump("failovers")
            return url

    def _spawn_with_retry(self, worker: ShardWorker, epoch: int, port: int) -> str:
        last_error: Optional[WorkerSpawnError] = None
        for attempt in range(self.spawn_attempts):
            try:
                return worker.spawn(epoch=epoch, port=port)
            except WorkerSpawnError as error:
                last_error = error
                time.sleep(self.spawn_backoff * (attempt + 1))
        raise last_error

    # -- the watch loop -------------------------------------------------- #

    def _heartbeat_client(self, shard: int, url: str) -> ServiceClient:
        cached = self._heartbeat_clients.get(shard)
        if cached is not None and cached[0] == url:
            return cached[1]
        client = ServiceClient(url, timeout=self.heartbeat_timeout, retries=0)
        self._heartbeat_clients[shard] = (url, client)
        return client

    def _watch_loop(self) -> None:
        while not self._stop_event.wait(self.health_interval):
            for shard, worker in enumerate(self.workers):
                if self._stop_event.is_set():
                    return
                try:
                    self._probe(shard, worker)
                except WorkerSpawnError:
                    # Replacement failed to come up; the shard stays
                    # unrouted (503) and the next sweep tries again.
                    continue
                except Exception:  # noqa: BLE001 - the watcher must survive
                    continue

    def _probe(self, shard: int, worker: ShardWorker) -> None:
        if not worker.alive:
            self._bump("process_exit_failovers")
            self.failover(shard, reason="process-exit")
            return
        endpoint = self.endpoints().get(shard)
        if endpoint is None:
            # Unrouted but alive: a previous failover half-finished.
            self._bump("process_exit_failovers")
            self.failover(shard, reason="unrouted")
            return
        try:
            heartbeat_start = time.perf_counter()
            self._heartbeat_client(shard, endpoint[0]).status()
            self._m_heartbeat_seconds.observe(
                time.perf_counter() - heartbeat_start
            )
        except Exception:  # noqa: BLE001 - any probe failure is a miss
            self._misses[shard] += 1
            self._bump("heartbeat_misses")
            if self._misses[shard] >= self.heartbeat_misses:
                self._bump("heartbeat_failovers")
                self.failover(shard, reason="heartbeat")
        else:
            self._misses[shard] = 0


__all__ = ["ShardSupervisor", "SupervisorError"]
