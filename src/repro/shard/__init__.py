"""Sharded durable serving: N workers, one front end, fenced failover.

The tier partitions devices across worker processes by stable hash of
``device_id`` (:mod:`repro.shard.routing`); each worker is a full
:class:`~repro.core.server_core.ServerCore` +
:class:`~repro.persist.checkpoint.Checkpointer` over its own
``shard-<k>/`` snapshot directory.  A
:class:`~repro.shard.supervisor.ShardSupervisor` health-checks the
workers and fails a dead or wedged shard over onto a replacement
incarnation at a higher epoch, while the
:class:`~repro.shard.frontend.ShardFrontEnd` keeps one stable client
endpoint routing across whatever incarnations are live.
"""

from repro.shard.frontend import ShardFrontEnd, StaticEndpoints
from repro.shard.routing import ShardRouter, ShardRoutingError
from repro.shard.supervisor import ShardSupervisor, SupervisorError
from repro.shard.worker import ShardWorker, WorkerSpawnError

__all__ = [
    "ShardFrontEnd",
    "ShardRouter",
    "ShardRoutingError",
    "ShardSupervisor",
    "ShardWorker",
    "StaticEndpoints",
    "SupervisorError",
    "WorkerSpawnError",
]
