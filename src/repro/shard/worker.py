"""One shard's worker process: spawn, observe, signal, respawn.

A :class:`ShardWorker` owns a shard slot — its index, its ``shard-<k>/``
state dir, and the static ``repro-serve`` arguments every incarnation
shares — and spawns incarnations of it as subprocesses.  Each
:meth:`spawn` adds the per-incarnation arguments (``--port``,
``--state-dir``, ``--shard-epoch``) and waits for the CLI's
``serving on <url>`` announcement, so the caller learns the bound
address even with ephemeral ports.

The worker object deliberately does *not* decide when to (re)spawn or
which epoch to run — that is the
:class:`~repro.shard.supervisor.ShardSupervisor`'s job, which advances
the shard's fence first so a superseded incarnation cannot write.  What
lives here is the mechanics: process lifecycle, the announcement
handshake, and the crash/zombie signals the fault campaigns inject
(SIGKILL for instant death, SIGSTOP/SIGCONT for a wedged-then-waking
zombie).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.utils.exceptions import ReproError


class WorkerSpawnError(ReproError):
    """An incarnation failed to come up and announce its URL."""


class ShardWorker:
    """Spawnable ``repro-serve`` incarnations for one shard slot.

    Parameters
    ----------
    index:
        The shard this worker serves (0-based).
    shard_dir:
        The shard's durable state directory (``<state>/shard-<k>``).
    base_args:
        ``repro-serve`` arguments shared by every incarnation — the
        model/task flags, ``--shard-index``/``--shard-count``/
        ``--shard-policy``, checkpoint cadence — everything except
        ``--port``, ``--state-dir``, and ``--shard-epoch``, which
        :meth:`spawn` supplies per incarnation.
    env:
        Subprocess environment (default: inherit ``os.environ``; the
        caller must keep ``repro`` importable, e.g. via ``PYTHONPATH``).
    """

    def __init__(
        self,
        index: int,
        shard_dir: str,
        base_args: List[str],
        env: Optional[Dict[str, str]] = None,
    ):
        self.index = int(index)
        self.shard_dir = os.path.abspath(shard_dir)
        self.base_args = list(base_args)
        self.env = dict(os.environ if env is None else env)
        self.process: Optional[subprocess.Popen] = None
        #: Superseded incarnations deliberately left running (fenced
        #: zombies under test) — tracked so teardown can reap them.
        self.orphans: List[subprocess.Popen] = []
        self.url: Optional[str] = None
        self.port: Optional[int] = None
        #: Epoch of the current (or most recent) incarnation; -1 before
        #: the first spawn.
        self.epoch = -1
        #: Lifetime incarnations spawned successfully.
        self.spawns = 0
        self.kills = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    # -- lifecycle ------------------------------------------------------- #

    def spawn(self, epoch: int, port: int, timeout: float = 20.0) -> str:
        """Start one incarnation; returns the announced URL.

        ``port=0`` binds an ephemeral port (read the real one back from
        :attr:`port`).  One attempt only — retry/sibling policy belongs
        to the supervisor.  Raises :class:`WorkerSpawnError` if the
        process exits or stays silent instead of announcing (the
        dominant cause: the requested port is still held by a live
        zombie or lingering socket).
        """
        if self.alive:
            raise WorkerSpawnError(
                f"shard {self.index} already has a live incarnation"
            )
        args = [
            *self.base_args,
            "--port", str(int(port)),
            "--state-dir", self.shard_dir,
            "--shard-epoch", str(int(epoch)),
        ]
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.cli", *args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=self.env,
        )
        deadline = time.monotonic() + timeout
        line = ""
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if line.startswith("serving on ") or not line:
                break
        if not line.startswith("serving on "):
            process.kill()
            _, stderr = process.communicate()
            raise WorkerSpawnError(
                f"shard {self.index} epoch {epoch} failed to announce; "
                f"stderr:\n{stderr}"
            )
        self.process = process
        self.url = line.split("serving on ", 1)[1].strip()
        self.port = int(self.url.rsplit(":", 1)[1])
        self.epoch = int(epoch)
        self.spawns += 1
        return self.url

    # -- fault/shutdown signals ------------------------------------------ #

    def orphan(self) -> Optional[subprocess.Popen]:
        """Disown the current incarnation *without* killing it.

        The supervisor uses this under ``kill_zombies=False``: the old
        process keeps running — and keeps its listening socket — while a
        replacement is spawned, exactly the split-brain the epoch fence
        exists to defuse.  Returns the disowned process (also appended
        to :attr:`orphans` for teardown).
        """
        process = self.process
        self.process = None
        if process is not None and process.poll() is None:
            self.orphans.append(process)
        return process

    def sigkill(self) -> None:
        """Crash the incarnation: no handlers, no flush (fault campaign)."""
        if not self.alive:
            raise WorkerSpawnError(f"shard {self.index} has no live process")
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)
        self.kills += 1

    def suspend(self) -> None:
        """SIGSTOP: the process wedges mid-flight — the zombie under test."""
        if not self.alive:
            raise WorkerSpawnError(f"shard {self.index} has no live process")
        self.process.send_signal(signal.SIGSTOP)

    def resume(self) -> None:
        """SIGCONT a suspended incarnation (the zombie wakes up)."""
        if self.process is None:
            raise WorkerSpawnError(f"shard {self.index} has no process")
        self.process.send_signal(signal.SIGCONT)

    def wake_orphans(self) -> int:
        """SIGCONT every disowned incarnation; returns how many woke.

        After a zombie-preserving failover the suspended old incarnation
        lives in :attr:`orphans` (the slot's :attr:`process` is already
        the replacement) — this is how a fence test wakes it to prove
        its late writes are refused.
        """
        woken = 0
        for orphan in self.orphans:
            if orphan.poll() is None:
                orphan.send_signal(signal.SIGCONT)
                woken += 1
        return woken

    def terminate(self, timeout: float = 30.0) -> Optional[int]:
        """Graceful SIGTERM (drain + final snapshot); returns exit code."""
        if self.process is None:
            return None
        if self.process.poll() is None:
            # A suspended process cannot run its SIGTERM handler; wake it
            # first so graceful shutdown is actually graceful.
            self.process.send_signal(signal.SIGCONT)
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=timeout)
        code = self.process.returncode
        # Orphans never shut down gracefully — they are fenced zombies.
        for orphan in self.orphans:
            if orphan.poll() is None:
                orphan.send_signal(signal.SIGCONT)
                orphan.kill()
                orphan.wait(timeout=timeout)
        self.orphans.clear()
        return code

    def stop(self) -> None:
        """Best-effort hard cleanup of the incarnation and any orphans."""
        for process in [self.process, *self.orphans]:
            if process is not None and process.poll() is None:
                process.send_signal(signal.SIGCONT)
                process.kill()
                process.wait(timeout=30)
        self.orphans.clear()


__all__ = ["ShardWorker", "WorkerSpawnError"]
