"""Device→shard routing for the multi-worker serving tier.

A :class:`ShardRouter` binds a routing *policy* (a pure function
``(device_id, num_shards) -> shard``) to a fixed shard count.  Policies
come from the :data:`~repro.registry.SHARD_ROUTING` registry by name —
downstream code plugs in a new partitioning without touching this module
— or are passed as a callable directly.

The router is deliberately state-free: the front end, every worker, the
supervisor, and an offline reference computation each build their own
router from ``(num_shards, policy_name)`` and must agree on every
device, which is why built-in policies are stable integer math
(:func:`~repro.core.sharding.stable_device_hash`) rather than anything
process-salted.

Besides single-id routing, the router knows how to :meth:`split` an
ordered batch into per-shard groups (preserving each item's original
position) and :meth:`merge` per-shard answer lists back into the
original order — the two halves of forwarding one mixed check-in batch
through per-shard workers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.registry import SHARD_ROUTING
from repro.utils.exceptions import ReproError


class ShardRoutingError(ReproError):
    """A routing policy misbehaved (bad shard index, bad merge shape)."""


class ShardRouter:
    """Map device ids onto ``num_shards`` workers with a named policy.

    Parameters
    ----------
    num_shards:
        How many shards the tier runs (>= 1).
    policy:
        A :data:`~repro.registry.SHARD_ROUTING` name (default
        ``"stable_hash"``) or a callable ``(device_id, num_shards) ->
        shard`` for ad-hoc policies.

    Examples
    --------
    >>> router = ShardRouter(4)
    >>> router.shard_of(7) == router.shard_of(7)
    True
    >>> sorted({router.shard_of(m) for m in range(100)})
    [0, 1, 2, 3]
    """

    def __init__(self, num_shards: int, policy="stable_hash"):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        if callable(policy):
            self.policy_name = getattr(policy, "__name__", "<callable>")
            self._route = policy
        else:
            self.policy_name = str(policy)
            self._route = SHARD_ROUTING.create(self.policy_name)

    def shard_of(self, device_id: int) -> int:
        """The shard owning ``device_id`` (validated ``0 <= k < N``)."""
        shard = int(self._route(int(device_id), self.num_shards))
        if not 0 <= shard < self.num_shards:
            raise ShardRoutingError(
                f"policy {self.policy_name!r} routed device {device_id} to "
                f"shard {shard}, outside [0, {self.num_shards})"
            )
        return shard

    def split(
        self,
        items: Sequence[Any],
        device_id_of: Optional[Callable[[Any], int]] = None,
    ) -> Dict[int, List[Tuple[int, Any]]]:
        """Group an ordered batch by owning shard.

        Returns ``{shard: [(original_index, item), ...]}`` with each
        group in original order.  ``device_id_of`` extracts the routing
        key (default: ``item["device_id"]`` — the raw JSON payload form
        every wire message carries).
        """
        if device_id_of is None:
            device_id_of = lambda item: item["device_id"]  # noqa: E731
        groups: Dict[int, List[Tuple[int, Any]]] = {}
        for index, item in enumerate(items):
            shard = self.shard_of(device_id_of(item))
            groups.setdefault(shard, []).append((index, item))
        return groups

    @staticmethod
    def merge(
        groups: Dict[int, List[Tuple[int, Any]]],
        answers: Dict[int, Sequence[Any]],
        total: int,
    ) -> List[Any]:
        """Reassemble per-shard answer lists into original batch order.

        ``answers[shard]`` must be positionally parallel to
        ``groups[shard]`` (one answer per forwarded item); any length
        mismatch raises rather than silently misattributing acks.
        """
        merged: List[Any] = [None] * total
        for shard, entries in groups.items():
            shard_answers = answers[shard]
            if len(shard_answers) != len(entries):
                raise ShardRoutingError(
                    f"shard {shard} answered {len(shard_answers)} entries "
                    f"for {len(entries)} forwarded items"
                )
            for (index, _), answer in zip(entries, shard_answers):
                merged[index] = answer
        return merged


__all__ = ["ShardRouter", "ShardRoutingError"]
