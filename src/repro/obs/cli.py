"""``repro-obs`` — scrape, pretty-print, and diff metrics snapshots.

Operates on the JSON snapshot documents every ``GET /v1/metrics``
endpoint serves (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`)::

    # live scrape (front end or worker), human-readable table
    repro-obs show http://127.0.0.1:8900

    # save a snapshot, then diff two of them (counter deltas)
    repro-obs show http://127.0.0.1:8900 --json > before.json
    ... traffic ...
    repro-obs show http://127.0.0.1:8900 --json > after.json
    repro-obs diff before.json after.json

``show`` accepts a service base URL (``/v1/metrics?format=json`` is
appended), a full metrics URL, or a path to a saved JSON snapshot;
``diff`` accepts any two of the same and prints counters whose values
changed plus histogram count/sum deltas — the quick "what did that
traffic cost" question a perf PR starts with.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import _label_key, render_prometheus


def load_snapshot(source: str, timeout: float = 10.0) -> Dict[str, Any]:
    """Load a snapshot document from a URL or a file path.

    A bare service URL gets ``/v1/metrics?format=json`` appended; a URL
    already naming ``/v1/metrics`` gets ``format=json`` ensured.
    """
    if source.startswith("http://") or source.startswith("https://"):
        url = source.rstrip("/")
        if "/v1/metrics" not in url:
            url += "/v1/metrics?format=json"
        elif "format=" not in url:
            url += ("&" if "?" in url else "?") + "format=json"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    with open(source) as handle:
        return json.load(handle)


def _entry_label(entry: Mapping[str, Any]) -> str:
    labels = entry.get("labels", {})
    if not labels:
        return str(entry["name"])
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{entry['name']}{{{inner}}}"


def format_table(snapshot: Mapping[str, Any]) -> str:
    """Human-readable rendering of one snapshot."""
    lines: List[str] = [
        f"registry: {snapshot.get('registry', '?')} "
        f"(enabled={snapshot.get('enabled', True)})"
    ]
    counters = snapshot.get("counters", [])
    if counters:
        lines.append("")
        lines.append("counters:")
        width = max(len(_entry_label(e)) for e in counters)
        for entry in sorted(counters, key=_entry_label):
            lines.append(
                f"  {_entry_label(entry):<{width}}  {entry['value']}"
            )
    gauges = snapshot.get("gauges", [])
    if gauges:
        lines.append("")
        lines.append("gauges:")
        width = max(len(_entry_label(e)) for e in gauges)
        for entry in sorted(gauges, key=_entry_label):
            lines.append(
                f"  {_entry_label(entry):<{width}}  {entry['value']:g}"
            )
    histograms = snapshot.get("histograms", [])
    if histograms:
        lines.append("")
        lines.append("histograms:  (count / mean / p50 / p95 / p99)")
        width = max(len(_entry_label(e)) for e in histograms)
        for entry in sorted(histograms, key=_entry_label):
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            pcts = entry.get("percentiles", {})

            def fmt(value: Optional[float]) -> str:
                return "-" if value is None else f"{value:.6g}"

            lines.append(
                f"  {_entry_label(entry):<{width}}  {count} / {mean:.6g} / "
                f"{fmt(pcts.get('p50'))} / {fmt(pcts.get('p95'))} / "
                f"{fmt(pcts.get('p99'))}"
            )
    return "\n".join(lines)


def _keyed(entries) -> Dict[Tuple, Dict[str, Any]]:
    return {
        (entry["name"], _label_key(entry.get("labels", {}))): entry
        for entry in entries
    }


def format_diff(before: Mapping[str, Any], after: Mapping[str, Any]) -> str:
    """Counter/histogram deltas between two snapshots (after − before)."""
    lines: List[str] = []
    before_counters = _keyed(before.get("counters", []))
    rows = []
    for key, entry in _keyed(after.get("counters", [])).items():
        base = before_counters.get(key, {}).get("value", 0)
        delta = entry["value"] - base
        if delta:
            rows.append((_entry_label(entry), delta))
    if rows:
        lines.append("counter deltas:")
        width = max(len(label) for label, _ in rows)
        for label, delta in sorted(rows):
            lines.append(f"  {label:<{width}}  {delta:+d}")
    before_hists = _keyed(before.get("histograms", []))
    rows = []
    for key, entry in _keyed(after.get("histograms", [])).items():
        base = before_hists.get(key, {})
        count_delta = entry["count"] - base.get("count", 0)
        sum_delta = entry["sum"] - base.get("sum", 0.0)
        if count_delta:
            mean = sum_delta / count_delta
            rows.append((_entry_label(entry), count_delta, mean))
    if rows:
        if lines:
            lines.append("")
        lines.append("histogram deltas:  (count / mean-of-new)")
        width = max(len(label) for label, _, _ in rows)
        for label, count_delta, mean in sorted(rows):
            lines.append(f"  {label:<{width}}  {count_delta:+d} / {mean:.6g}")
    if not lines:
        lines.append("no counter or histogram changes")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Scrape, pretty-print, and diff /v1/metrics snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    show = sub.add_parser("show", help="print one snapshot")
    show.add_argument("source", help="service URL or saved snapshot file")
    group = show.add_mutually_exclusive_group()
    group.add_argument("--json", action="store_true",
                       help="emit the raw JSON snapshot (pipe to a file)")
    group.add_argument("--prometheus", action="store_true",
                       help="emit Prometheus exposition text")
    diff = sub.add_parser("diff", help="counter/histogram deltas A -> B")
    diff.add_argument("before", help="service URL or saved snapshot file")
    diff.add_argument("after", help="service URL or saved snapshot file")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "show":
            snapshot = load_snapshot(args.source)
            if args.json:
                print(json.dumps(snapshot, indent=2, sort_keys=True))
            elif args.prometheus:
                sys.stdout.write(render_prometheus(snapshot))
            else:
                print(format_table(snapshot))
        else:
            before = load_snapshot(args.before)
            after = load_snapshot(args.after)
            print(format_diff(before, after))
    except (OSError, ValueError, KeyError) as error:
        print(f"repro-obs: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
