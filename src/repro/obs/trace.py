"""Lightweight per-request tracing: spans, phases, bounded retention.

A :class:`TraceRecorder` collects one record per traced operation (an
HTTP request, a simulator run) with named **phase** timings inside it —
the serve path records ``decode → lock_wait → core_apply → checkpoint →
encode``, which is exactly the latency attribution ROADMAP item 1 asks
for before attacking the serve gap.

Memory is bounded: records land in a ring buffer
(``collections.deque(maxlen=capacity)``) — a long-lived server retains
the newest ``capacity`` traces, never more.  With a ``trace_dir``, every
finished record is also appended as one JSON line to
``<trace_dir>/trace-<name>-<pid>.jsonl`` (line-buffered, so a crashed
worker's file still ends on a complete record); per-PID filenames keep
concurrent shard workers from interleaving writes into one file.

Record schema (one JSON object per line)::

    {
      "trace": "<operation name, e.g. POST /v1/checkins>",
      "start": <unix seconds, float>,
      "duration_ms": <float>,
      "status": <caller-supplied outcome, e.g. HTTP status int>,
      "phases": {"decode": <ms>, "lock_wait": <ms>, ...}
    }

Phases not entered are simply absent.  ``duration_ms`` covers begin →
finish; phase times need not tile it (queueing and glue are the
remainder — that remainder is itself a finding).

Disabled mode mirrors :mod:`repro.obs.metrics`: :data:`NULL_TRACER` is a
process-wide no-op recorder whose handles are shared singletons, so
``tracer or NULL_TRACER`` makes tracing unconditional and free.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["TraceRecorder", "NULL_TRACER", "NullTraceRecorder"]


class _Phase:
    """Context manager timing one named phase of an active trace."""

    __slots__ = ("_trace", "_name", "_start")

    def __init__(self, trace: "_ActiveTrace", name: str):
        self._trace = trace
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._trace.add_phase(
            self._name, time.perf_counter() - self._start
        )
        return False


class _ActiveTrace:
    """One in-flight traced operation; finished exactly once."""

    __slots__ = ("_recorder", "name", "_wall_start", "_start", "phases")

    def __init__(self, recorder: "TraceRecorder", name: str):
        self._recorder = recorder
        self.name = name
        self._wall_start = time.time()
        self._start = time.perf_counter()
        self.phases: List = []

    def phase(self, name: str) -> _Phase:
        """Time a named sub-span: ``with trace.phase("decode"): ...``"""
        return _Phase(self, name)

    def add_phase(self, name: str, seconds: float) -> None:
        """Record an externally timed phase (e.g. a lock wait measured
        around an acquire that is not a ``with`` block of its own)."""
        self.phases.append((name, seconds))

    def finish(self, status: Any = None) -> None:
        duration = time.perf_counter() - self._start
        self._recorder._record({
            "trace": self.name,
            "start": self._wall_start,
            "duration_ms": duration * 1e3,
            "status": status,
            "phases": {name: seconds * 1e3 for name, seconds in self.phases},
        })


class TraceRecorder:
    """Bounded-memory trace sink with optional JSONL spooling.

    Parameters
    ----------
    capacity:
        Ring-buffer size: the newest ``capacity`` finished records are
        retained for :meth:`snapshot`.
    trace_dir:
        When set, every finished record is appended to
        ``trace-<name>-<pid>.jsonl`` in this directory (created if
        missing).
    name:
        Distinguishes this recorder's spool file (e.g. ``shard-2``).
    """

    def __init__(
        self,
        capacity: int = 256,
        trace_dir: Optional[str] = None,
        name: str = "serve",
    ):
        self.capacity = max(int(capacity), 1)
        self.name = str(name)
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity)
        self.records_total = 0
        self._path: Optional[str] = None
        self._file = None
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            self._path = os.path.join(
                trace_dir, f"trace-{self.name}-{os.getpid()}.jsonl"
            )
            self._file = open(self._path, "a", buffering=1)

    @property
    def path(self) -> Optional[str]:
        """The JSONL spool file, when spooling is on."""
        return self._path

    def begin(self, name: str) -> _ActiveTrace:
        """Start tracing one operation; call ``.finish(status)`` on it."""
        return _ActiveTrace(self, name)

    def _record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._ring.append(record)
            self.records_total += 1
            if self._file is not None:
                try:
                    self._file.write(json.dumps(record) + "\n")
                except (OSError, ValueError):
                    pass  # a full/closed spool must never fail a request

    def snapshot(self) -> List[Dict[str, Any]]:
        """The retained records, oldest → newest (copies)."""
        with self._lock:
            return [dict(record) for record in self._ring]

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
                self._file = None


class _NullPhase:
    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


class _NullTrace:
    __slots__ = ()
    name = "null"

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def add_phase(self, name: str, seconds: float) -> None:
        pass

    def finish(self, status: Any = None) -> None:
        pass


class NullTraceRecorder:
    """No-op recorder; its handles are shared allocation-free singletons."""

    capacity = 0
    name = "null"
    path = None
    records_total = 0

    def begin(self, name: str) -> _NullTrace:
        return _NULL_TRACE

    def snapshot(self) -> List[Dict[str, Any]]:
        return []

    def close(self) -> None:
        pass


_NULL_PHASE = _NullPhase()
_NULL_TRACE = _NullTrace()

#: Process-wide disabled recorder; ``tracer or NULL_TRACER`` at
#: construction sites makes tracing unconditional and free.
NULL_TRACER = NullTraceRecorder()
