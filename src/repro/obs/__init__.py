"""Zero-dependency observability: metrics registry + request tracing.

Every layer of the stack reports into one :class:`MetricsRegistry`
(thread-safe counters, gauges, log-scale histograms with exact
percentile windows) and, on the serve path, a :class:`TraceRecorder`
that attributes per-request latency to named phases.  Both have
allocation-free null variants (:data:`NULL_REGISTRY`,
:data:`NULL_TRACER`) so instrumentation is unconditional in the code
and free when disabled.

Scrape a live service with ``GET /v1/metrics`` (Prometheus text or
``?format=json``) or the ``repro-obs`` CLI; the sharded front end
aggregates worker scrapes with :func:`merge_snapshots`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    default_latency_buckets,
    default_size_buckets,
    label_snapshot,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import NullTraceRecorder, NULL_TRACER, TraceRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTraceRecorder",
    "NULL_TRACER",
    "TraceRecorder",
    "default_latency_buckets",
    "default_size_buckets",
    "label_snapshot",
    "merge_snapshots",
    "render_prometheus",
]
