"""Zero-dependency metrics primitives: counters, gauges, histograms.

The observability layer every tier of the stack reports into.  Three
instrument kinds live in a named :class:`MetricsRegistry`:

* :class:`Counter` — a monotonically increasing total (requests served,
  duplicates suppressed, failovers).  Increments take a lock, so totals
  are **exact** under any number of threads — the stress suite hammers
  one counter from N threads and asserts the arithmetic sum.
* :class:`Gauge` — a last-value-wins sample (in-flight requests, fence
  epoch, most recent lock wait).
* :class:`Histogram` — fixed log-scale buckets (shared bounds across
  every process, so per-shard scrapes merge by bucket addition) plus a
  bounded window of recent raw observations, from which the snapshot
  reports **exact** p50/p95/p99 over the retained window rather than
  bucket-interpolated estimates.

Instruments are identified by ``(name, labels)``; asking the registry
for the same identity returns the same object, so call sites never need
to cache instruments themselves (though hot paths do, to skip the
lookup).

Disabled mode
-------------

:data:`NULL_REGISTRY` is a process-wide no-op registry: every instrument
request returns a shared singleton whose methods do nothing and allocate
nothing.  Code paths therefore instrument unconditionally —
``metrics or NULL_REGISTRY`` at construction — and pay only a no-op
method call when observability is off (the no-op suite pins the
zero-allocation property).

Snapshots
---------

:meth:`MetricsRegistry.snapshot` returns a plain-dict document (flat
instrument lists, JSON-clean) that is the unit of exchange everywhere:
``GET /v1/metrics?format=json`` bodies, :func:`merge_snapshots` inputs
(the sharded front end merges per-worker scrapes), and
:func:`render_prometheus` inputs (the ``GET /v1/metrics`` text format).
Merged histograms recompute percentiles from the summed buckets (the
raw windows live in other processes), so aggregated quantiles are
log-bucket-resolution estimates while single-process quantiles stay
exact.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "default_latency_buckets",
    "default_size_buckets",
    "merge_snapshots",
    "label_snapshot",
    "render_prometheus",
]


def default_latency_buckets() -> Tuple[float, ...]:
    """Log-scale seconds bounds: 1µs … ~128s, factor 2 (28 buckets).

    Every process uses the same bounds, so cross-process merges add
    buckets index-wise.
    """
    return tuple(1e-6 * (2.0 ** k) for k in range(28))


def default_size_buckets() -> Tuple[float, ...]:
    """Log-scale count bounds: 1 … 16384, factor 2 (15 buckets)."""
    return tuple(float(2 ** k) for k in range(15))


def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Thread-safe monotonic counter."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Thread-safe last-value-wins sample."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Mapping[str, str]):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed log-scale buckets + an exact-percentile retention window.

    ``observe`` is O(log B) (bisect over ~28 bounds) plus a deque
    append; the window (default 512 observations) bounds memory while
    keeping snapshot percentiles exact over recent traffic.
    """

    __slots__ = (
        "name", "labels", "_lock", "_bounds", "_buckets", "_count",
        "_sum", "_min", "_max", "_window",
    )

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        buckets: Optional[Sequence[float]] = None,
        window: int = 512,
    ):
        self.name = name
        self.labels = dict(labels)
        bounds = tuple(
            float(b) for b in (
                buckets if buckets is not None else default_latency_buckets()
            )
        )
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._buckets = [0] * (len(bounds) + 1)  # +1: the +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._window: deque = deque(maxlen=max(int(window), 1))

    def observe(self, value: float) -> None:
        value = float(value)
        # Manual bisect: the bounds tuple is tiny and bisect.bisect_left
        # on a tuple attribute would be the same big-O anyway.
        lo, hi = 0, len(self._bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        with self._lock:
            self._buckets[lo] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._window.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> Optional[float]:
        """Exact q-th percentile (0..100) over the retained window."""
        with self._lock:
            window = sorted(self._window)
        if not window:
            return None
        rank = max(0, min(len(window) - 1, round(q / 100.0 * (len(window) - 1))))
        return window[int(rank)]

    def _state(self) -> Dict[str, Any]:
        with self._lock:
            cumulative: List[int] = []
            running = 0
            for count in self._buckets[:-1]:
                running += count
                cumulative.append(running)
            window = sorted(self._window)
            state = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "bounds": list(self._bounds),
                "cumulative": cumulative,  # per bound; +Inf is `count`
            }
        state["percentiles"] = _window_percentiles(window)
        return state


def _window_percentiles(window: Sequence[float]) -> Dict[str, Optional[float]]:
    if not window:
        return {"p50": None, "p95": None, "p99": None}
    last = len(window) - 1
    return {
        key: window[int(round(q / 100.0 * last))]
        for key, q in (("p50", 50.0), ("p95", 95.0), ("p99", 99.0))
    }


def _bucket_percentiles(
    bounds: Sequence[float], cumulative: Sequence[int], count: int
) -> Dict[str, Optional[float]]:
    """Estimate quantiles from merged buckets (upper bound of the bucket
    the rank falls in — the raw windows live in other processes)."""
    if count <= 0:
        return {"p50": None, "p95": None, "p99": None}
    out: Dict[str, Optional[float]] = {}
    for key, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        rank = q * count
        value: Optional[float] = None
        for bound, cum in zip(bounds, cumulative):
            if cum >= rank:
                value = bound
                break
        out[key] = value  # None = the rank fell in the +Inf overflow
    return out


class MetricsRegistry:
    """A named, thread-safe collection of instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create on the
    ``(name, labels)`` identity; re-registering a name as a different
    kind raises.
    """

    enabled = True

    def __init__(self, name: str = "repro"):
        self.name = str(name)
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Any] = {}

    def _get(self, kind, name: str, labels: Mapping[str, str], **kwargs):
        key = (str(name), _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = kind(str(name), labels, **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        window: int = 512,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets, window=window)

    # -- export ---------------------------------------------------------- #

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict document of every instrument's current state."""
        with self._lock:
            instruments = list(self._instruments.values())
        counters, gauges, histograms = [], [], []
        for instrument in instruments:
            if isinstance(instrument, Counter):
                counters.append({
                    "name": instrument.name,
                    "labels": dict(instrument.labels),
                    "value": instrument.value,
                })
            elif isinstance(instrument, Gauge):
                gauges.append({
                    "name": instrument.name,
                    "labels": dict(instrument.labels),
                    "value": instrument.value,
                })
            else:
                histograms.append({
                    "name": instrument.name,
                    "labels": dict(instrument.labels),
                    **instrument._state(),
                })
        return {
            "enabled": True,
            "registry": self.name,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_text(self) -> str:
        return render_prometheus(self.snapshot())

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)


# --------------------------------------------------------------------- #
# Disabled mode: shared no-op singletons                                #
# --------------------------------------------------------------------- #


class _NullCounter:
    __slots__ = ()
    name = "null"
    labels: Dict[str, str] = {}
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    labels: Dict[str, str] = {}
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    labels: Dict[str, str] = {}
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> None:
        return None


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """No-op registry: every instrument is a shared do-nothing singleton.

    Instrument methods neither lock nor allocate, so disabled-mode
    instrumentation costs one no-op method call — the no-op suite pins
    this with an allocation-count gate on the check-in hot path.
    """

    enabled = False
    name = "null"

    def counter(self, name: str, **labels: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, buckets=None, window: int = 512,
                  **labels: str) -> _NullHistogram:
        return NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Any]:
        return {
            "enabled": False,
            "registry": "null",
            "counters": [],
            "gauges": [],
            "histograms": [],
        }

    def render_text(self) -> str:
        return render_prometheus(self.snapshot())

    def render_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)


#: Process-wide disabled registry; ``metrics or NULL_REGISTRY`` at
#: construction sites makes instrumentation unconditional and free.
NULL_REGISTRY = NullRegistry()


# --------------------------------------------------------------------- #
# Snapshot algebra: label, merge, render                                #
# --------------------------------------------------------------------- #


def label_snapshot(snapshot: Mapping[str, Any], **labels: str) -> Dict[str, Any]:
    """A copy of ``snapshot`` with ``labels`` stamped onto every entry.

    The sharded front end tags each worker's scrape with
    ``shard="<k>"`` before merging, so per-shard series stay
    distinguishable in the aggregate.
    """
    out = {
        "enabled": bool(snapshot.get("enabled", True)),
        "registry": str(snapshot.get("registry", "")),
        "counters": [],
        "gauges": [],
        "histograms": [],
    }
    for kind in ("counters", "gauges", "histograms"):
        for entry in snapshot.get(kind, []):
            stamped = dict(entry)
            stamped["labels"] = {**dict(entry.get("labels", {})), **labels}
            out[kind].append(stamped)
    return out


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge snapshot documents: counters add, gauges last-wins,
    histograms add bucket-wise (identical bounds required) with
    percentiles re-estimated from the merged buckets.

    Entries with distinct ``(name, labels)`` identities pass through
    side by side — tag per-source labels first (:func:`label_snapshot`)
    to keep sources distinguishable.
    """
    counters: Dict[Tuple, Dict[str, Any]] = {}
    gauges: Dict[Tuple, Dict[str, Any]] = {}
    histograms: Dict[Tuple, Dict[str, Any]] = {}
    names: List[str] = []
    for snapshot in snapshots:
        registry = str(snapshot.get("registry", ""))
        if registry and registry not in names:
            names.append(registry)
        for entry in snapshot.get("counters", []):
            key = (entry["name"], _label_key(entry.get("labels", {})))
            slot = counters.get(key)
            if slot is None:
                counters[key] = dict(entry)
            else:
                slot["value"] += entry["value"]
        for entry in snapshot.get("gauges", []):
            key = (entry["name"], _label_key(entry.get("labels", {})))
            gauges[key] = dict(entry)
        for entry in snapshot.get("histograms", []):
            key = (entry["name"], _label_key(entry.get("labels", {})))
            slot = histograms.get(key)
            if slot is None:
                histograms[key] = dict(entry)
                continue
            if list(slot["bounds"]) != list(entry["bounds"]):
                raise ValueError(
                    f"histogram {entry['name']!r}: cannot merge differing "
                    f"bucket bounds"
                )
            slot["count"] += entry["count"]
            slot["sum"] += entry["sum"]
            mins = [m for m in (slot["min"], entry["min"]) if m is not None]
            maxes = [m for m in (slot["max"], entry["max"]) if m is not None]
            slot["min"] = min(mins) if mins else None
            slot["max"] = max(maxes) if maxes else None
            slot["cumulative"] = [
                a + b for a, b in zip(slot["cumulative"], entry["cumulative"])
            ]
    for slot in histograms.values():
        slot["percentiles"] = _bucket_percentiles(
            slot["bounds"], slot["cumulative"], slot["count"]
        )
    return {
        "enabled": True,
        "registry": "+".join(names) if names else "merged",
        "counters": [counters[key] for key in sorted(counters)],
        "gauges": [gauges[key] for key in sorted(gauges)],
        "histograms": [histograms[key] for key in sorted(histograms)],
    }


def _format_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{key}="{value}"' for key, value in sorted(
            (str(k), str(v)) for k, v in labels.items()
        )
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bool is an int; keep it numeric
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a snapshot document as Prometheus-style exposition text.

    Histograms emit the standard ``_bucket``/``_sum``/``_count`` series
    plus ``{quantile="…"}`` summary lines carrying the snapshot's
    p50/p95/p99.
    """
    lines: List[str] = []
    typed: set = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", []):
        name = entry["name"]
        _type_line(name, "counter")
        lines.append(
            f"{name}{_format_labels(entry.get('labels', {}))} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("gauges", []):
        name = entry["name"]
        _type_line(name, "gauge")
        lines.append(
            f"{name}{_format_labels(entry.get('labels', {}))} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("histograms", []):
        name = entry["name"]
        labels = entry.get("labels", {})
        _type_line(name, "histogram")
        for bound, cum in zip(entry["bounds"], entry["cumulative"]):
            le = 'le="%s"' % repr(bound)
            lines.append(f"{name}_bucket{_format_labels(labels, le)} {cum}")
        inf = 'le="+Inf"'
        lines.append(
            f"{name}_bucket{_format_labels(labels, inf)} {entry['count']}"
        )
        lines.append(
            f"{name}_sum{_format_labels(labels)} {_format_value(entry['sum'])}"
        )
        lines.append(
            f"{name}_count{_format_labels(labels)} {entry['count']}"
        )
        for key, value in entry.get("percentiles", {}).items():
            if value is None:
                continue
            quantile = 'quantile="%s"' % (
                {"p50": "0.5", "p95": "0.95", "p99": "0.99"}[key]
            )
            lines.append(
                f"{name}{_format_labels(labels, quantile)} "
                f"{_format_value(value)}"
            )
    return "\n".join(lines) + "\n"
