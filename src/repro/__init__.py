"""Crowd-ML: a privacy-preserving learning framework for a crowd of smart devices.

Reproduction of Hamm, Champion, Chen, Belkin & Xuan (ICDCS 2015,
arXiv:1501.02484).  The package is organized as:

* :mod:`repro.core` — the framework itself: device (Algorithm 1) and
  server (Algorithm 2) runtimes, protocol, authentication, DP monitoring.
* :mod:`repro.privacy` — Laplace / discrete-Laplace / Gaussian /
  exponential mechanisms, sensitivity bounds, budget accounting.
* :mod:`repro.models` — logistic regression (Table I), linear SVM, ridge.
* :mod:`repro.optim` — projected SGD (Eq. 3), schedules, AdaGrad, averaging.
* :mod:`repro.network` — event queue, delay/outage models, channels.
* :mod:`repro.data` — synthetic MNIST-like / CIFAR-like / activity data,
  partitioning, the PCA + L1 pipeline.
* :mod:`repro.baselines` — centralized (batch & input-perturbed SGD) and
  decentralized comparators.
* :mod:`repro.simulation` — the event-driven crowd simulator and trial
  runner behind every figure.
* :mod:`repro.evaluation` — metrics and error-curve aggregation.
* :mod:`repro.registry` — named component registries (models, datasets,
  partitioners, schedules, privacy mechanisms) so experiments refer to
  components as data and third parties can plug in their own.
* :mod:`repro.experiments` — the declarative experiment layer:
  :class:`ArmSpec` / :class:`ExperimentSpec` (JSON-serializable figure
  definitions), :class:`ExperimentSession` (the parallel sweep runner with
  a shared dataset cache), and the ``run_figN_experiment`` wrappers.
* :mod:`repro.store` — the persistent run store: content-addressed
  results with atomic writes and file locking, so sweeps are cached,
  resumable, and shareable across processes (``repro-store`` CLI).
* :mod:`repro.serve` — the remote service API: a versioned wire
  protocol, :class:`CrowdService` (an HTTP host owning a ``ServerCore``),
  :class:`ServiceClient`/:class:`HttpTransport`/:class:`RemoteDevice`
  clients, and the ``repro-serve`` CLI — the same protocol surface the
  simulator exercises, served over a real network.
* :mod:`repro.gateway` — the edge gateway tier: device↔gateway↔server
  two-tier topologies (:class:`TwoTierTopology`/:class:`GatewayProfile`)
  with batch-aggregating uplinks (:class:`GatewayAggregator`), available
  both in-simulator and as :class:`~repro.gateway.edge.EdgeGateway`
  fronting a live service.
* :mod:`repro.persist` — durable serving: versioned ``ServerCore``
  snapshots (bit-exact round trip), write-ahead checkpoint policy +
  store for ``repro-serve --state-dir`` crash-resume, and the fault
  harness (:class:`~repro.persist.FaultyProxy` /
  :class:`~repro.persist.ServeProcess`) that proves exactly-once
  check-in application under injected chaos.
* :mod:`repro.shard` — the sharded serving tier: ``repro-serve
  --workers N`` runs N durable workers behind one
  :class:`~repro.shard.ShardFrontEnd` (stable-hash device routing,
  batch split/merge), supervised by a
  :class:`~repro.shard.ShardSupervisor` that health-checks workers,
  fails a shard over from its newest snapshot, and fences zombie
  incarnations with a monotonic epoch.

Quickstart::

    from repro import quick_crowd_run
    report = quick_crowd_run(num_devices=50, epsilon=10.0, batch_size=10)
    print(report.final_error)

Declarative experiments::

    from repro import ArmSpec, ExperimentScale, ExperimentSession, ExperimentSpec
    spec = ExperimentSpec(
        name="epsilon sweep", dataset="mnist_like",
        scale=ExperimentScale.smoke(),
        arms=tuple(
            ArmSpec(label=f"eps={eps}", epsilon=eps, seed_offset=i,
                    schedule_kwargs={"constant": 30.0})
            for i, eps in enumerate((1.0, 10.0, 100.0))
        ),
    )
    result = ExperimentSession(max_workers=4).run(spec, seed=0)
    print(result.format_table())
"""

from __future__ import annotations

import math

from repro.core import CrowdMLServer, Device, DeviceConfig, ServerConfig
from repro.data import make_cifar_like, make_mnist_like
from repro.experiments import (
    ArmSpec,
    DatasetCache,
    ExperimentScale,
    ExperimentSession,
    ExperimentSpec,
    FigureResult,
    run_fig3_experiment,
    run_fig4_experiment,
    run_fig5_experiment,
    run_fig6_experiment,
    run_fig7_experiment,
    run_fig8_experiment,
    run_fig9_experiment,
)
from repro.gateway import (
    AggregatorStats,
    GatewayAggregator,
    GatewayProfile,
    TwoTierTopology,
)
from repro.models import (
    MulticlassLinearSVM,
    MulticlassLogisticRegression,
    RidgeRegression,
)
from repro.privacy import PrivacyBudget, split_budget
from repro.registry import (
    DATASETS,
    MODELS,
    PARTITIONERS,
    PRIVACY_MECHANISMS,
    Registry,
    RegistryError,
    SCHEDULES,
)
from repro.serve import (
    CrowdService,
    HttpTransport,
    RemoteDevice,
    ServiceClient,
)
from repro.simulation import (
    CrowdSimulator,
    RunTrace,
    SimulationConfig,
    TrialSetReport,
    run_crowd_trials,
)
from repro.store import RunStore, StoreError

__version__ = "1.6.0"

__all__ = [
    "AggregatorStats",
    "ArmSpec",
    "CrowdMLServer",
    "CrowdService",
    "CrowdSimulator",
    "DATASETS",
    "DatasetCache",
    "Device",
    "DeviceConfig",
    "ExperimentScale",
    "ExperimentSession",
    "ExperimentSpec",
    "FigureResult",
    "GatewayAggregator",
    "GatewayProfile",
    "HttpTransport",
    "MODELS",
    "MulticlassLinearSVM",
    "MulticlassLogisticRegression",
    "PARTITIONERS",
    "PRIVACY_MECHANISMS",
    "PrivacyBudget",
    "Registry",
    "RegistryError",
    "RemoteDevice",
    "RidgeRegression",
    "RunStore",
    "RunTrace",
    "SCHEDULES",
    "ServerConfig",
    "ServiceClient",
    "SimulationConfig",
    "StoreError",
    "TrialSetReport",
    "TwoTierTopology",
    "make_cifar_like",
    "make_mnist_like",
    "quick_crowd_run",
    "run_crowd_trials",
    "run_fig3_experiment",
    "run_fig4_experiment",
    "run_fig5_experiment",
    "run_fig6_experiment",
    "run_fig7_experiment",
    "run_fig8_experiment",
    "run_fig9_experiment",
    "split_budget",
    "__version__",
]


def quick_crowd_run(
    num_devices: int = 50,
    epsilon: float = math.inf,
    batch_size: int = 1,
    num_train: int = 2000,
    num_test: int = 1000,
    num_trials: int = 1,
    seed: int = 0,
    learning_rate_constant: float = 30.0,
    num_passes: int = 1,
) -> TrialSetReport:
    """Run a small MNIST-like Crowd-ML experiment end to end.

    A convenience wrapper for first contact with the library: generates
    data, partitions it across ``num_devices``, simulates the crowd for
    ``num_passes`` passes over each device's local data, and returns the
    averaged :class:`~repro.simulation.TrialSetReport`.
    """
    from repro.data import MNIST_CLASSES, MNIST_DIM

    train, test = make_mnist_like(num_train=num_train, num_test=num_test, seed=seed)
    config = SimulationConfig(
        num_devices=num_devices,
        batch_size=batch_size,
        epsilon=epsilon,
        learning_rate_constant=learning_rate_constant,
        num_passes=num_passes,
    )
    return run_crowd_trials(
        model_factory=lambda: MulticlassLogisticRegression(MNIST_DIM, MNIST_CLASSES),
        train=train,
        test=test,
        config=config,
        num_trials=num_trials,
        base_seed=seed,
    )
