"""Versioned snapshot codec for the full :class:`ServerCore` state.

A snapshot is one JSON-compatible dict capturing everything Algorithm 2
accumulates between check-ins:

* the optimizer — parameters **bit-exact** via the packed float64 codec
  (:func:`repro.core.codec.pack_float_array`), the iteration counter t,
  and per-rule extras (AdaGrad's accumulator, the Polyak average);
* the schedule and projection hyperparameters (scalar floats survive via
  JSON ``repr`` round-trip — exact for every finite double);
* the server config, the bookkeeping counters (checkouts, rejections,
  duplicate suppressions, per-device applied check-in sequences);
* the :class:`~repro.core.auth.DeviceRegistry` (enrollments, revocations,
  and the minting key), the :class:`~repro.core.monitor.ProgressMonitor`
  accumulators (all integers — exact), and the
  :class:`~repro.privacy.PrivacyAccountant` run-length ledger.

The stopping decision is **not** stored: it is a pure function of config
+ iteration + monitor, so the restored core recomputes it — a snapshot
cannot disagree with its own state.

``restore_core(snapshot_core(core), model)`` produces a core whose
observable state — and whose response to any further traffic — is
bit-identical to the original (property-tested against generated traffic
histories in ``tests/persist/``).

Snapshots carry a :data:`SNAPSHOT_VERSION` stamp and a model fingerprint;
restoring against a different schema version or a mismatched model raises
:class:`SnapshotError` instead of silently loading the wrong run.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

import numpy as np

from repro.core.auth import DeviceRegistry
from repro.core.config import ServerConfig
from repro.core.codec import pack_float_array, unpack_float_array
from repro.core.monitor import ProgressMonitor
from repro.core.server_core import ServerCore
from repro.models.base import Model
from repro.optim.projection import (
    BoxProjection,
    IdentityProjection,
    L2BallProjection,
    Projection,
)
from repro.optim.schedules import (
    ConstantRate,
    InverseSqrtRate,
    InverseTimeRate,
    LearningRateSchedule,
    StepDecayRate,
)
from repro.optim.sgd import SGD, AdaGrad, AveragedSGD, Optimizer
from repro.privacy.accountant import PrivacyAccountant
from repro.utils.exceptions import ReproError

#: Schema stamp carried by every snapshot.  Bump on any incompatible
#: change to the layout below; :func:`restore_core` refuses other stamps.
SNAPSHOT_VERSION = 1


class SnapshotError(ReproError):
    """A snapshot that cannot be produced or restored."""


# --------------------------------------------------------------------- #
# schedule / projection / optimizer codecs                              #
# --------------------------------------------------------------------- #


def _encode_schedule(schedule: LearningRateSchedule) -> Dict[str, Any]:
    if type(schedule) is ConstantRate:
        return {"type": "constant", "constant": schedule.constant}
    if type(schedule) is InverseSqrtRate:
        return {"type": "inverse_sqrt", "constant": schedule.constant}
    if type(schedule) is InverseTimeRate:
        return {
            "type": "inverse_time",
            "constant": schedule.constant,
            "decay": schedule.decay,
        }
    if type(schedule) is StepDecayRate:
        return {
            "type": "step_decay",
            "constant": schedule.constant,
            "factor": schedule.factor,
            "period": schedule.period,
        }
    raise SnapshotError(f"cannot snapshot schedule {type(schedule).__name__}")


def _decode_schedule(state: Dict[str, Any]) -> LearningRateSchedule:
    kind = state.get("type")
    if kind == "constant":
        return ConstantRate(float(state["constant"]))
    if kind == "inverse_sqrt":
        return InverseSqrtRate(float(state["constant"]))
    if kind == "inverse_time":
        return InverseTimeRate(float(state["constant"]), float(state["decay"]))
    if kind == "step_decay":
        return StepDecayRate(
            float(state["constant"]), float(state["factor"]), int(state["period"])
        )
    raise SnapshotError(f"unknown schedule type {kind!r}")


def _encode_projection(projection: Projection) -> Dict[str, Any]:
    if type(projection) is IdentityProjection:
        return {"type": "identity"}
    if type(projection) is L2BallProjection:
        return {"type": "l2_ball", "radius": projection.radius}
    if type(projection) is BoxProjection:
        return {"type": "box", "bound": projection.bound}
    raise SnapshotError(f"cannot snapshot projection {type(projection).__name__}")


def _decode_projection(state: Dict[str, Any]) -> Projection:
    kind = state.get("type")
    if kind == "identity":
        return IdentityProjection()
    if kind == "l2_ball":
        return L2BallProjection(float(state["radius"]))
    if kind == "box":
        return BoxProjection(float(state["bound"]))
    raise SnapshotError(f"unknown projection type {kind!r}")


def _encode_optimizer(optimizer: Optimizer) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "parameters": pack_float_array(optimizer.parameters_view),
        "iteration": optimizer.iteration,
        "projection": _encode_projection(optimizer.projection),
    }
    # Exact-type dispatch (AveragedSGD before SGD: it is a subclass).
    if type(optimizer) is AveragedSGD:
        state["type"] = "averaged_sgd"
        state["schedule"] = _encode_schedule(optimizer.schedule)
        state["burn_in"] = optimizer.burn_in
        state["average"] = pack_float_array(optimizer.averaged_parameters)
        state["averaged_steps"] = optimizer.averaged_steps
    elif type(optimizer) is SGD:
        state["type"] = "sgd"
        state["schedule"] = _encode_schedule(optimizer.schedule)
    elif type(optimizer) is AdaGrad:
        state["type"] = "adagrad"
        state["constant"] = optimizer.constant
        state["damping"] = optimizer.damping
        state["accumulator"] = pack_float_array(optimizer.accumulator)
    else:
        raise SnapshotError(f"cannot snapshot optimizer {type(optimizer).__name__}")
    return state


def _decode_optimizer(state: Dict[str, Any]) -> Optimizer:
    kind = state.get("type")
    parameters = unpack_float_array(state["parameters"])
    projection = _decode_projection(state["projection"])
    iteration = int(state["iteration"])
    if kind == "sgd":
        optimizer: Optimizer = SGD(
            parameters, schedule=_decode_schedule(state["schedule"]),
            projection=projection,
        )
        optimizer.restore_state(parameters, iteration)
    elif kind == "averaged_sgd":
        optimizer = AveragedSGD(
            parameters, schedule=_decode_schedule(state["schedule"]),
            projection=projection, burn_in=int(state["burn_in"]),
        )
        optimizer.restore_state(
            parameters, iteration,
            average=unpack_float_array(state["average"]),
            averaged_steps=int(state["averaged_steps"]),
        )
    elif kind == "adagrad":
        optimizer = AdaGrad(
            parameters, constant=float(state["constant"]),
            damping=float(state["damping"]), projection=projection,
        )
        optimizer.restore_state(
            parameters, iteration,
            accumulator=unpack_float_array(state["accumulator"]),
        )
    else:
        raise SnapshotError(f"unknown optimizer type {kind!r}")
    return optimizer


# --------------------------------------------------------------------- #
# whole-core snapshot / restore                                         #
# --------------------------------------------------------------------- #


def _model_fingerprint(model: Model) -> Dict[str, Any]:
    return {
        "type": type(model).__name__,
        "num_features": model.num_features,
        "num_classes": model.num_classes,
        "num_parameters": model.num_parameters,
    }


def snapshot_core(core: ServerCore) -> Dict[str, Any]:
    """Serialize the full state of ``core`` as a JSON-compatible dict."""
    config = core.config
    return {
        "snapshot_version": SNAPSHOT_VERSION,
        "model": _model_fingerprint(core.model),
        "config": {
            "max_iterations": config.max_iterations,
            "target_error": config.target_error,
            "min_samples_for_error_stop": config.min_samples_for_error_stop,
        },
        "optimizer": _encode_optimizer(core.optimizer),
        "counters": core.counters_state(),
        "registry": core.registry.state_dict(),
        "monitor": core.monitor.state_dict(),
        "accountant": (
            None if core.accountant is None else core.accountant.state_dict()
        ),
    }


def restore_core(snapshot: Dict[str, Any], model: Model) -> ServerCore:
    """Rebuild a :class:`ServerCore` from :func:`snapshot_core` output.

    ``model`` is supplied by the caller (models are code, not data — the
    CLI rebuilds its model from its own arguments) and validated against
    the snapshot's fingerprint, so a snapshot can never be restored onto
    a different task definition.
    """
    if not isinstance(snapshot, dict):
        raise SnapshotError(
            f"snapshot must be a dict, got {type(snapshot).__name__}"
        )
    version = snapshot.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} != supported {SNAPSHOT_VERSION}"
        )
    try:
        fingerprint = snapshot["model"]
        expected = _model_fingerprint(model)
        if fingerprint != expected:
            raise SnapshotError(
                f"snapshot was taken of model {fingerprint}, "
                f"cannot restore onto {expected}"
            )
        config_state = snapshot["config"]
        config = ServerConfig(
            max_iterations=int(config_state["max_iterations"]),
            target_error=(
                None if config_state["target_error"] is None
                else float(config_state["target_error"])
            ),
            min_samples_for_error_stop=int(
                config_state["min_samples_for_error_stop"]
            ),
        )
        optimizer = _decode_optimizer(snapshot["optimizer"])
        registry = DeviceRegistry.from_state(snapshot["registry"])
        monitor = ProgressMonitor.from_state(snapshot["monitor"])
        accountant = (
            None if snapshot["accountant"] is None
            else PrivacyAccountant.from_state(snapshot["accountant"])
        )
        core = ServerCore(
            model,
            optimizer,
            config=config,
            registry=registry,
            accountant=accountant,
            monitor=monitor,
        )
        core.restore_counters(snapshot["counters"])
    except SnapshotError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotError(f"malformed snapshot: {error}") from error
    return core


# --------------------------------------------------------------------- #
# canonical file form + equality                                        #
# --------------------------------------------------------------------- #


def canonical_json(snapshot: Dict[str, Any]) -> str:
    """Canonical serialization (sorted keys) used for checksumming."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def snapshot_checksum(snapshot: Dict[str, Any]) -> str:
    """SHA-256 over the canonical form — the torn-file detector."""
    return hashlib.sha256(canonical_json(snapshot).encode("utf-8")).hexdigest()


def core_states_equal(a: ServerCore, b: ServerCore) -> bool:
    """True when two cores are observably identical (parameters bit-exact).

    Compares everything a snapshot captures plus the recomputed stopping
    decision; the accountant comparison covers the full run-length ledger.
    """
    if a.parameters.tobytes() != b.parameters.tobytes():
        return False
    if a.iteration != b.iteration:
        return False
    if a.counters_state() != b.counters_state():
        return False
    if a.registry.state_dict() != b.registry.state_dict():
        return False
    if a.monitor.state_dict() != b.monitor.state_dict():
        return False
    if (a.accountant is None) != (b.accountant is None):
        return False
    if a.accountant is not None and (
        a.accountant.state_dict() != b.accountant.state_dict()
    ):
        return False
    if _encode_optimizer(a.optimizer) != _encode_optimizer(b.optimizer):
        return False
    return a.stopping_decision() == b.stopping_decision()


def describe_mismatch(a: ServerCore, b: ServerCore) -> Optional[str]:
    """Name the first differing state slice (test failure diagnostics)."""
    if a.parameters.tobytes() != b.parameters.tobytes():
        delta = float(np.max(np.abs(a.parameters - b.parameters)))
        return f"parameters differ (max abs delta {delta})"
    for name, view in (
        ("iteration", lambda c: c.iteration),
        ("counters", lambda c: c.counters_state()),
        ("registry", lambda c: c.registry.state_dict()),
        ("monitor", lambda c: c.monitor.state_dict()),
        ("optimizer", lambda c: _encode_optimizer(c.optimizer)),
        ("stop decision", lambda c: c.stopping_decision()),
        ("accountant", lambda c: (
            None if c.accountant is None else c.accountant.state_dict()
        )),
    ):
        if view(a) != view(b):
            return f"{name} differs: {view(a)!r} != {view(b)!r}"
    return None
