"""Durable serving: snapshot/restore, checkpointing, and fault injection.

Three layers, bottom-up:

* :mod:`repro.persist.snapshot` — a canonical, versioned, bit-exact
  serialization of full :class:`~repro.core.server_core.ServerCore`
  state (``restore_core(snapshot_core(core))`` is indistinguishable from
  the live core, property-tested).
* :mod:`repro.persist.checkpoint` — write-ahead checkpoint files under a
  state dir, with atomic writes, checksums, retention pruning, and
  newest-valid-wins recovery.
* :mod:`repro.persist.faults` — the adversary: a seeded lossy TCP proxy,
  a SIGKILL-able ``repro-serve`` subprocess harness, and the sharded
  tier's every-K-batches worker killer, used by the durability tests and
  the chaos campaigns.

The checkpoint layer also carries the sharded tier's incarnation fence
(``epoch.json`` + :class:`FencedWriteError`) — see the
:mod:`repro.persist.checkpoint` docstring for the fencing protocol.
"""

from repro.persist.checkpoint import (
    STATE_FORMAT,
    Checkpointer,
    CheckpointPolicy,
    FencedWriteError,
    SnapshotStore,
)
from repro.persist.faults import (
    FaultInjectionError,
    FaultyProxy,
    ServeProcess,
    WorkerKiller,
)
from repro.persist.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    canonical_json,
    core_states_equal,
    describe_mismatch,
    restore_core,
    snapshot_checksum,
    snapshot_core,
)

__all__ = [
    "SNAPSHOT_VERSION",
    "STATE_FORMAT",
    "CheckpointPolicy",
    "Checkpointer",
    "FaultInjectionError",
    "FaultyProxy",
    "FencedWriteError",
    "ServeProcess",
    "SnapshotError",
    "SnapshotStore",
    "WorkerKiller",
    "canonical_json",
    "core_states_equal",
    "describe_mismatch",
    "restore_core",
    "snapshot_checksum",
    "snapshot_core",
]
