"""Fault injection for the serve path: a lossy TCP proxy + process killer.

Durability claims are only worth what a fault campaign says they are, so
this module provides the two fault sources the durable-serving tests
inject:

* :class:`FaultyProxy` — an in-process TCP proxy between a client and a
  live :class:`~repro.serve.service.CrowdService`.  Per connection it
  draws one fault from a **seeded** RNG: refuse outright, drop the
  connection mid-request (the server never sees a complete request),
  swallow the response after the server has fully processed the request
  (the client never sees the ack — the double-apply trap), delay the
  response, or pass through.  The proxy is HTTP-aware just enough to know
  where a request ends (Content-Length), so "drop the response" really
  means *after* the upstream applied the update.  One request per proxied
  connection: closing after each exchange also exercises the client's
  stale-socket reconnect path.
* :class:`ServeProcess` — spawn / SIGKILL / restart a real ``repro-serve``
  subprocess, scraping the announced URL.  SIGKILL is the crash under
  test: no handlers run, no flush happens; whatever the checkpoint
  discipline made durable is all that survives.
* :class:`WorkerKiller` — the sharded-tier campaign: every K driven
  batches, SIGKILL one random (seeded) live worker under a
  :class:`~repro.shard.supervisor.ShardSupervisor` and let its health
  loop fail the shard over.  The client keeps retrying through the
  front end; the acceptance gate is per-shard bit-parity with an
  uninterrupted run.

All record counters so tests can assert the campaign actually injected
faults rather than passing vacuously.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlparse

from repro.utils.exceptions import ReproError

_CRLF2 = b"\r\n\r\n"


class FaultInjectionError(ReproError):
    """The fault harness itself failed (not an injected fault)."""


def _read_http_message(sock: socket.socket, already: bytes = b"") -> Optional[bytes]:
    """Read one full HTTP message (headers + Content-Length body).

    Returns the raw bytes, or ``None`` if the peer closed before a full
    message arrived.  Chunked encoding is not handled — neither side of
    this wire ever sends it.
    """
    data = already
    while _CRLF2 not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return None
        data += chunk
    head, _, rest = data.partition(_CRLF2)
    content_length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
            break
    while len(rest) < content_length:
        chunk = sock.recv(65536)
        if not chunk:
            return None
        rest += chunk
    return head + _CRLF2 + rest[:content_length]


class FaultyProxy:
    """Seeded lossy TCP proxy in front of one HTTP upstream.

    Parameters
    ----------
    upstream:
        The real service — a base URL (``http://127.0.0.1:8900``) or a
        ``(host, port)`` pair.  May also be retargeted between requests
        via :meth:`set_upstream` (a server that restarted on a new port).
    seed:
        Seeds the fault plan; the same seed injects the same fault
        sequence (per accepted connection, in accept order).
    refuse / drop_request / drop_response / delay:
        Per-connection fault probabilities, evaluated in that order
        (their sum must be <= 1; the remainder passes through).
    delay_seconds:
        How long a delayed response is held back.
    """

    def __init__(
        self,
        upstream,
        host: str = "127.0.0.1",
        *,
        seed: int = 0,
        refuse: float = 0.0,
        drop_request: float = 0.0,
        drop_response: float = 0.0,
        delay: float = 0.0,
        delay_seconds: float = 0.02,
    ):
        if isinstance(upstream, str):
            parsed = urlparse(upstream)
            self._upstream = (parsed.hostname or "127.0.0.1", int(parsed.port or 80))
        else:
            upstream_host, upstream_port = upstream
            self._upstream = (str(upstream_host), int(upstream_port))
        for name, p in (("refuse", refuse), ("drop_request", drop_request),
                        ("drop_response", drop_response), ("delay", delay)):
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be a probability, got {p}")
        if refuse + drop_request + drop_response + delay > 1.0 + 1e-9:
            raise ValueError("fault probabilities must sum to <= 1")
        self._probabilities = (refuse, drop_request, drop_response, delay)
        self._delay_seconds = float(delay_seconds)
        self._rng = random.Random(seed)
        self._plan_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counts: Dict[str, int] = {
            "connections": 0, "refused": 0, "requests_dropped": 0,
            "responses_dropped": 0, "delayed": 0, "passed": 0,
        }
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self._host, self._port = self._listener.getsockname()
        self._running = False
        self._accept_thread: Optional[threading.Thread] = None
        self._workers: List[threading.Thread] = []

    # -- lifecycle ------------------------------------------------------ #

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    @property
    def port(self) -> int:
        return self._port

    def stats(self) -> Dict[str, int]:
        """A *consistent* snapshot of the fault counters.

        Taken under the same lock the handler threads increment with, so
        invariants across counters (e.g. ``connections == refused +
        requests_dropped + responses_dropped + delayed + passed`` once
        traffic has drained) hold within one snapshot — reading the
        fields one by one off a live proxy can tear between increments.
        """
        with self._counter_lock:
            return dict(self._counts)

    @property
    def counts(self) -> Dict[str, int]:
        """Back-compat alias for :meth:`stats` (a snapshot, not the live
        dict — mutations do not feed back into the proxy)."""
        return self.stats()

    def stats_snapshot(self) -> Dict[str, int]:
        """Uniform plain-dict counter snapshot (:mod:`repro.obs` idiom)."""
        return self.stats()

    def set_upstream(self, upstream_port: int, upstream_host: str = "127.0.0.1") -> None:
        """Point subsequent connections at a (restarted) upstream."""
        self._upstream = (upstream_host, int(upstream_port))

    def start(self) -> "FaultyProxy":
        if self._running:
            raise FaultInjectionError("proxy already started")
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="faulty-proxy", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        # Closing the listener does not wake a thread blocked in
        # accept() on Linux; poke it with a throwaway connection (the
        # accept loop re-checks _running before counting anything).
        try:
            with socket.create_connection((self._host, self._port), timeout=1.0):
                pass
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        for worker in self._workers:
            worker.join(timeout=1.0)
        self._workers.clear()

    def __enter__(self) -> "FaultyProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ------------------------------------------------------ #

    def _draw_fault(self) -> str:
        with self._plan_lock:
            roll = self._rng.random()
        refuse, drop_request, drop_response, delay = self._probabilities
        if roll < refuse:
            return "refused"
        if roll < refuse + drop_request:
            return "requests_dropped"
        if roll < refuse + drop_request + drop_response:
            return "responses_dropped"
        if roll < refuse + drop_request + drop_response + delay:
            return "delayed"
        return "passed"

    def _count(self, key: str) -> None:
        with self._counter_lock:
            self._counts[key] += 1

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            if not self._running:
                # stop()'s wake-up poke, not real traffic.
                client.close()
                return
            self._count("connections")
            fault = self._draw_fault()
            if fault == "refused":
                self._count("refused")
                client.close()
                continue
            worker = threading.Thread(
                target=self._handle, args=(client, fault), daemon=True
            )
            worker.start()
            self._workers.append(worker)

    def _handle(self, client: socket.socket, fault: str) -> None:
        upstream: Optional[socket.socket] = None
        try:
            client.settimeout(30.0)
            if fault == "requests_dropped":
                # Take the first bytes (the client is committed) and cut
                # the line — the upstream never hears about this request.
                try:
                    client.recv(4096)
                except OSError:
                    pass
                self._count("requests_dropped")
                return
            request = _read_http_message(client)
            if request is None:
                return  # client went away first — nothing to do
            upstream = socket.create_connection(self._upstream, timeout=30.0)
            upstream.settimeout(30.0)
            upstream.sendall(request)
            response = _read_http_message(upstream)
            if response is None:
                return  # upstream died mid-response; client sees the cut
            if fault == "responses_dropped":
                # The upstream has fully processed the request; the ack
                # dies here.  This is the duplicate-suppression trap.
                self._count("responses_dropped")
                return
            if fault == "delayed":
                self._count("delayed")
                time.sleep(self._delay_seconds)
            else:
                self._count("passed")
            client.sendall(response)
        except OSError:
            pass  # injected chaos causes real socket errors; that's fine
        finally:
            if upstream is not None:
                try:
                    upstream.close()
                except OSError:
                    pass
            try:
                client.close()
            except OSError:
                pass


class ServeProcess:
    """A real ``repro-serve`` subprocess you can crash and resurrect.

    Parameters
    ----------
    cli_args:
        Arguments after ``repro-serve`` (e.g. ``["--num-features", "4",
        ...]``).  Use a fixed ``--port`` so a restart comes back at the
        same address.
    env:
        Environment for the subprocess; defaults to ``os.environ`` (the
        caller must ensure ``repro`` is importable, e.g. via PYTHONPATH).
    """

    def __init__(self, cli_args: List[str], env: Optional[Dict[str, str]] = None):
        self.cli_args = list(cli_args)
        self.env = dict(os.environ if env is None else env)
        self.process: Optional[subprocess.Popen] = None
        self.url: Optional[str] = None
        self.kills = 0

    @property
    def running(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def start(self, timeout: float = 20.0, attempts: int = 5) -> str:
        """Spawn and wait for the ``serving on <url>`` announcement."""
        if self.running:
            raise FaultInjectionError("server already running")
        last_stderr = ""
        for attempt in range(attempts):
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.serve.cli", *self.cli_args],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=self.env,
            )
            deadline = time.monotonic() + timeout
            line = ""
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if line.startswith("serving on ") or not line:
                    break
            if line.startswith("serving on "):
                self.process = process
                self.url = line.split("serving on ", 1)[1].strip()
                return self.url
            # Spawn failed (e.g. the killed predecessor's port not yet
            # released) — reap and retry.
            process.kill()
            _, last_stderr = process.communicate()
            time.sleep(0.2 * (attempt + 1))
        raise FaultInjectionError(
            f"repro-serve failed to announce a URL; last stderr:\n{last_stderr}"
        )

    def sigkill(self) -> None:
        """The crash under test: no handlers, no flush, instant death."""
        if not self.running:
            raise FaultInjectionError("no running server to kill")
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)
        self.kills += 1
        self.process = None

    def terminate(self, timeout: float = 30.0) -> int:
        """Graceful SIGTERM; returns the exit code."""
        if self.process is None:
            raise FaultInjectionError("no server process to terminate")
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait(timeout=timeout)
        code = self.process.returncode
        self.process = None
        return code

    def stop(self) -> None:
        """Best-effort cleanup for test teardown."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=30)
        self.process = None


class WorkerKiller:
    """SIGKILL a random live shard worker every ``every`` driven batches.

    The campaign driver calls :meth:`after_batch` once per client batch;
    every ``every``-th call picks one live worker under the supervisor
    (seeded RNG, so the kill schedule is reproducible) and crashes it
    with SIGKILL — no handlers, no flush.  Detection and failover are
    deliberately left to the supervisor's health loop: the campaign
    injects the death, the tier under test must notice and recover.

    Parameters
    ----------
    supervisor:
        The :class:`~repro.shard.supervisor.ShardSupervisor` whose
        workers are fair game.
    every:
        Kill cadence in batches (>= 1).
    seed:
        Seeds the victim choice.
    max_kills:
        Stop killing after this many crashes (``None`` = unbounded) —
        lets a campaign end with a quiet tail so the tier provably
        converges back to healthy.
    """

    def __init__(self, supervisor, every: int = 5, seed: int = 0,
                 max_kills: Optional[int] = None):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self._supervisor = supervisor
        self.every = int(every)
        self._rng = random.Random(seed)
        self.max_kills = max_kills
        self._lock = threading.Lock()
        self.batches_seen = 0
        self.kills = 0
        #: Shard indices in kill order — the campaign's reproducible trace.
        self.killed_shards: List[int] = []

    def after_batch(self) -> Optional[int]:
        """Count one batch; maybe kill.  Returns the shard killed (or None)."""
        with self._lock:
            self.batches_seen += 1
            if self.batches_seen % self.every != 0:
                return None
            if self.max_kills is not None and self.kills >= self.max_kills:
                return None
            live = [
                shard for shard, worker in enumerate(self._supervisor.workers)
                if worker.alive
            ]
            if not live:
                return None  # everything already dead/mid-failover
            shard = live[self._rng.randrange(len(live))]
            try:
                self._supervisor.workers[shard].sigkill()
            except ReproError:
                return None  # lost the race with a failover — fine
            self.kills += 1
            self.killed_shards.append(shard)
            return shard
