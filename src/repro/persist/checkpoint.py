"""Write-ahead checkpointing of :class:`ServerCore` snapshots.

State-dir layout (the run store's atomicity discipline, applied to one
live server instead of a content-addressed sweep)::

    <state_dir>/
        state.json                  # {"format": 1} marker
        lock                        # fcntl writer lock (FileLock)
        epoch.json                  # {"epoch": N} incarnation fence (optional)
        snapshots/
            snapshot-000000000042.json
            snapshot-000000000057.json
            ...

Every snapshot file is written via temp-file + ``os.replace``
(:func:`repro.store.backend.write_json_atomic`), so a SIGKILL at any
instant leaves either the previous complete file or an invisible temp —
never a half-written snapshot under the real name.  Each file carries a
SHA-256 checksum over the canonical snapshot body as a second line of
defense (a torn file that somehow landed is detected and skipped);
:meth:`SnapshotStore.load_latest` walks newest → oldest and returns the
first valid snapshot.

:class:`CheckpointPolicy` decides *when* to write (``every_n_updates`` /
``every_seconds``); :class:`Checkpointer` binds a policy to a store and
is what :class:`~repro.serve.service.CrowdService` calls under its core
lock — the snapshot is durable **before** the ack leaves the server, so
with ``every_n_updates=1`` a crash can only lose work the client never
saw acknowledged (which it retries, and the sequence-number dedupe makes
the retry exactly-once).

Epoch fencing (sharded tier)
----------------------------

When N workers share one state tree (one ``shard-<k>/`` dir each), a
supervisor that declares a worker dead and spawns a replacement must
also *fence* the old incarnation: a SIGSTOPped or network-partitioned
"zombie" may wake up later and try to checkpoint state the replacement
has already moved past.  The fence is a monotonic integer in
``epoch.json``:

* the supervisor calls :meth:`SnapshotStore.advance_fence` **before**
  spawning each incarnation and hands the returned epoch to the worker;
* a store opened with ``epoch=e`` stamps ``e`` into every snapshot
  payload and, under the same fcntl lock that serializes writers,
  refuses to write once the fence has advanced past ``e``
  (:class:`FencedWriteError`).

Because the service checkpoints write-ahead, a fenced write fails the
request before any ack leaves the zombie — its client retries against
the current incarnation and the dedupe ledger keeps the replay
exactly-once.  The fence-then-read order in the supervisor (advance the
fence, *then* load the snapshot to restore from) linearizes the
takeover: any zombie write either lands before the bump (and is part of
the restored state) or is refused.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.persist.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    snapshot_checksum,
    snapshot_core,
)
from repro.store.backend import write_json_atomic
from repro.store.locking import FileLock

#: On-disk format version of the state dir, recorded in ``state.json``.
STATE_FORMAT = 1

_SNAPSHOT_PREFIX = "snapshot-"
_FENCE_FILENAME = "epoch.json"


class FencedWriteError(SnapshotError):
    """A write from a superseded incarnation was refused by the fence."""


class CheckpointPolicy:
    """When to write a checkpoint: update-count and/or wall-clock cadence.

    Parameters
    ----------
    every_n_updates:
        Checkpoint once at least this many updates have been applied
        since the last one (``1`` = write-ahead every update; ``None``
        disables the count trigger).
    every_seconds:
        Checkpoint once this much wall-clock time has passed since the
        last one (``None`` disables the time trigger).

    With both ``None`` the policy never fires on its own — only forced
    checkpoints (startup, shutdown) are written.
    """

    def __init__(
        self,
        every_n_updates: Optional[int] = 1,
        every_seconds: Optional[float] = None,
    ):
        if every_n_updates is not None and every_n_updates < 1:
            raise ValueError(
                f"every_n_updates must be >= 1, got {every_n_updates}"
            )
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(f"every_seconds must be > 0, got {every_seconds}")
        self.every_n_updates = every_n_updates
        self.every_seconds = every_seconds

    def due(
        self,
        iteration: int,
        last_iteration: int,
        now: float,
        last_time: float,
    ) -> bool:
        """Should a checkpoint be written at this point?"""
        if iteration == last_iteration:
            # Nothing new to make durable (registrations are checkpointed
            # explicitly by the service, not through the policy).
            return False
        if (
            self.every_n_updates is not None
            and iteration - last_iteration >= self.every_n_updates
        ):
            return True
        if self.every_seconds is not None and now - last_time >= self.every_seconds:
            return True
        return False


class SnapshotStore:
    """Atomic, retention-pruned snapshot files under one state dir.

    Parameters
    ----------
    state_dir / retain / lock_timeout:
        Directory, newest-K retention, and fcntl lock acquisition
        timeout.
    epoch:
        Incarnation epoch of this writer (``None`` = unfenced, the
        single-process default).  A fenced store stamps its epoch into
        every snapshot payload and refuses :meth:`write` once
        :meth:`advance_fence` has moved ``epoch.json`` past it — see the
        module docstring's fencing protocol.
    """

    def __init__(
        self,
        state_dir: str,
        retain: int = 4,
        lock_timeout: float = 10.0,
        epoch: Optional[int] = None,
    ):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        if epoch is not None and epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        self.state_dir = os.path.abspath(state_dir)
        self.retain = int(retain)
        self.epoch = None if epoch is None else int(epoch)
        self.snapshots_dir = os.path.join(self.state_dir, "snapshots")
        os.makedirs(self.snapshots_dir, exist_ok=True)
        self._lock = FileLock(
            os.path.join(self.state_dir, "lock"), timeout=lock_timeout
        )
        self._check_marker()

    def _check_marker(self) -> None:
        marker_path = os.path.join(self.state_dir, "state.json")
        if os.path.isfile(marker_path):
            with open(marker_path) as handle:
                marker = json.load(handle)
            if marker.get("format") != STATE_FORMAT:
                raise SnapshotError(
                    f"state dir {self.state_dir} has format "
                    f"{marker.get('format')!r}; this build reads {STATE_FORMAT}"
                )
        else:
            write_json_atomic(marker_path, {"format": STATE_FORMAT})

    # -- paths ---------------------------------------------------------- #

    def snapshot_paths(self) -> List[str]:
        """All snapshot files, newest (highest iteration) first."""
        try:
            names = os.listdir(self.snapshots_dir)
        except FileNotFoundError:
            return []
        files = [
            name for name in names
            if name.startswith(_SNAPSHOT_PREFIX) and name.endswith(".json")
        ]
        # The zero-padded iteration makes lexicographic == numeric order.
        return [
            os.path.join(self.snapshots_dir, name)
            for name in sorted(files, reverse=True)
        ]

    def _path_for(self, iteration: int) -> str:
        return os.path.join(
            self.snapshots_dir, f"{_SNAPSHOT_PREFIX}{iteration:012d}.json"
        )

    # -- incarnation fence ----------------------------------------------- #

    @property
    def _fence_path(self) -> str:
        return os.path.join(self.state_dir, _FENCE_FILENAME)

    def fence_epoch(self) -> int:
        """The current fence (``-1`` when no incarnation was ever fenced).

        A torn/garbled fence file reads as ``-1`` — the file is written
        atomically, so that only happens to a state dir damaged out of
        band, and treating it as unfenced merely disables refusals (the
        safe direction for a single-writer dir).
        """
        try:
            with open(self._fence_path) as handle:
                fence = json.load(handle).get("epoch", -1)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError, AttributeError):
            return -1
        return fence if isinstance(fence, int) else -1

    def advance_fence(self) -> int:
        """Ratchet the fence one epoch forward; returns the new epoch.

        The supervisor calls this **before** spawning an incarnation
        (and before reading the snapshot a failover restores from): the
        bump happens under the same lock that serializes snapshot
        writes, so once it returns, any write from an older epoch is
        refused — a zombie's late checkpoint can never land after the
        takeover read it is missing from.
        """
        with self._lock:
            new_epoch = self.fence_epoch() + 1
            write_json_atomic(self._fence_path, {"epoch": new_epoch})
        return new_epoch

    def _check_fence_locked(self) -> None:
        if self.epoch is None:
            return
        fence = self.fence_epoch()
        if fence > self.epoch:
            raise FencedWriteError(
                f"write from epoch {self.epoch} refused: {self.state_dir} "
                f"is fenced at epoch {fence} (a newer incarnation owns "
                f"this shard)"
            )

    # -- write ---------------------------------------------------------- #

    def write(self, snapshot: Dict[str, Any]) -> str:
        """Persist one snapshot atomically; prunes old files; returns path.

        The file payload wraps the snapshot with its checksum::

            {"checksum": "<sha256>", "snapshot": {...}}

        Two snapshots at the same iteration (e.g. a registration burst
        between updates) overwrite — newer state strictly supersedes.
        """
        iteration = int(snapshot["optimizer"]["iteration"])
        payload = {
            "checksum": snapshot_checksum(snapshot),
            "snapshot": snapshot,
        }
        if self.epoch is not None:
            # Outside the checksummed snapshot body: the epoch describes
            # the *writer*, not the core state, so two incarnations that
            # happen to write identical state stay byte-comparable.
            payload["epoch"] = self.epoch
        path = self._path_for(iteration)
        with self._lock:
            self._check_fence_locked()
            write_json_atomic(path, payload)
            self._prune_locked(keep=path)
        return path

    def _prune_locked(self, keep: str) -> None:
        paths = self.snapshot_paths()
        for path in paths[self.retain:]:
            if path == keep:
                continue
            try:
                os.unlink(path)
            except OSError:
                pass  # already gone (concurrent pruner) — harmless

    # -- read ----------------------------------------------------------- #

    def load_latest(self) -> Optional[Tuple[Dict[str, Any], str]]:
        """Newest valid snapshot as ``(snapshot, path)``; ``None`` if empty.

        Walks newest → oldest, skipping torn/truncated/corrupt files (the
        fallback the checkpoint discipline promises).  If snapshot files
        exist but *none* is valid, raises :class:`SnapshotError` — a
        state dir full of garbage should stop a resume, not silently
        start the run over.  A snapshot stamped with a *newer* schema
        version also raises: falling back past it would resurrect stale
        state.
        """
        paths = self.snapshot_paths()
        if not paths:
            return None
        for path in paths:
            snapshot = self._load_one(path)
            if snapshot is not None:
                return snapshot, path
        raise SnapshotError(
            f"no valid snapshot among {len(paths)} file(s) in "
            f"{self.snapshots_dir}"
        )

    def _load_one(self, path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None  # torn/truncated/unreadable — fall back
        if not isinstance(payload, dict):
            return None
        snapshot = payload.get("snapshot")
        checksum = payload.get("checksum")
        if not isinstance(snapshot, dict) or not isinstance(checksum, str):
            return None
        version = snapshot.get("snapshot_version")
        if isinstance(version, int) and version > SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path} is a version-{version} snapshot; this build reads "
                f"up to {SNAPSHOT_VERSION}"
            )
        if snapshot_checksum(snapshot) != checksum:
            return None  # bits landed but don't add up — fall back
        return snapshot


class Checkpointer:
    """Policy-driven snapshot writer bound to one store.

    The caller (the service, under its core lock) invokes
    :meth:`after_update` after state changes and :meth:`checkpoint` for
    forced writes (startup priming, registrations, shutdown flush).
    """

    def __init__(self, store: SnapshotStore, policy: Optional[CheckpointPolicy] = None):
        self.store = store
        self.policy = policy if policy is not None else CheckpointPolicy()
        self.snapshots_written = 0
        self._last_iteration = -1
        self._last_time = time.monotonic()
        self.attach_metrics(None)

    def attach_metrics(self, metrics=None) -> None:
        """(Re)bind obs instruments (no-op singletons when ``None``)."""
        from repro.obs.metrics import NULL_REGISTRY

        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_snapshots = registry.counter("checkpoint_snapshots_total")
        self._m_bytes = registry.counter("checkpoint_bytes_total")
        self._m_write_seconds = registry.histogram("checkpoint_write_seconds")

    def checkpoint(self, core) -> str:
        """Write a snapshot now, unconditionally; returns its path."""
        write_start = time.perf_counter()
        path = self.store.write(snapshot_core(core))
        self._m_write_seconds.observe(time.perf_counter() - write_start)
        self._m_snapshots.inc()
        try:
            self._m_bytes.inc(os.path.getsize(path))
        except OSError:
            pass  # racing a prune; size accounting is best-effort
        self.snapshots_written += 1
        self._last_iteration = core.iteration
        self._last_time = time.monotonic()
        return path

    def after_update(self, core) -> Optional[str]:
        """Checkpoint iff the policy says this state change warrants it."""
        if self.policy.due(
            core.iteration, self._last_iteration, time.monotonic(), self._last_time
        ):
            return self.checkpoint(core)
        return None

    def note_restored(self, core) -> None:
        """Record a resume point so the next trigger measures from it."""
        self._last_iteration = core.iteration
        self._last_time = time.monotonic()
