"""Write-ahead checkpointing of :class:`ServerCore` snapshots.

State-dir layout (the run store's atomicity discipline, applied to one
live server instead of a content-addressed sweep)::

    <state_dir>/
        state.json                  # {"format": 1} marker
        lock                        # fcntl writer lock (FileLock)
        snapshots/
            snapshot-000000000042.json
            snapshot-000000000057.json
            ...

Every snapshot file is written via temp-file + ``os.replace``
(:func:`repro.store.backend.write_json_atomic`), so a SIGKILL at any
instant leaves either the previous complete file or an invisible temp —
never a half-written snapshot under the real name.  Each file carries a
SHA-256 checksum over the canonical snapshot body as a second line of
defense (a torn file that somehow landed is detected and skipped);
:meth:`SnapshotStore.load_latest` walks newest → oldest and returns the
first valid snapshot.

:class:`CheckpointPolicy` decides *when* to write (``every_n_updates`` /
``every_seconds``); :class:`Checkpointer` binds a policy to a store and
is what :class:`~repro.serve.service.CrowdService` calls under its core
lock — the snapshot is durable **before** the ack leaves the server, so
with ``every_n_updates=1`` a crash can only lose work the client never
saw acknowledged (which it retries, and the sequence-number dedupe makes
the retry exactly-once).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.persist.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    snapshot_checksum,
    snapshot_core,
)
from repro.store.backend import write_json_atomic
from repro.store.locking import FileLock

#: On-disk format version of the state dir, recorded in ``state.json``.
STATE_FORMAT = 1

_SNAPSHOT_PREFIX = "snapshot-"


class CheckpointPolicy:
    """When to write a checkpoint: update-count and/or wall-clock cadence.

    Parameters
    ----------
    every_n_updates:
        Checkpoint once at least this many updates have been applied
        since the last one (``1`` = write-ahead every update; ``None``
        disables the count trigger).
    every_seconds:
        Checkpoint once this much wall-clock time has passed since the
        last one (``None`` disables the time trigger).

    With both ``None`` the policy never fires on its own — only forced
    checkpoints (startup, shutdown) are written.
    """

    def __init__(
        self,
        every_n_updates: Optional[int] = 1,
        every_seconds: Optional[float] = None,
    ):
        if every_n_updates is not None and every_n_updates < 1:
            raise ValueError(
                f"every_n_updates must be >= 1, got {every_n_updates}"
            )
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(f"every_seconds must be > 0, got {every_seconds}")
        self.every_n_updates = every_n_updates
        self.every_seconds = every_seconds

    def due(
        self,
        iteration: int,
        last_iteration: int,
        now: float,
        last_time: float,
    ) -> bool:
        """Should a checkpoint be written at this point?"""
        if iteration == last_iteration:
            # Nothing new to make durable (registrations are checkpointed
            # explicitly by the service, not through the policy).
            return False
        if (
            self.every_n_updates is not None
            and iteration - last_iteration >= self.every_n_updates
        ):
            return True
        if self.every_seconds is not None and now - last_time >= self.every_seconds:
            return True
        return False


class SnapshotStore:
    """Atomic, retention-pruned snapshot files under one state dir."""

    def __init__(self, state_dir: str, retain: int = 4, lock_timeout: float = 10.0):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.state_dir = os.path.abspath(state_dir)
        self.retain = int(retain)
        self.snapshots_dir = os.path.join(self.state_dir, "snapshots")
        os.makedirs(self.snapshots_dir, exist_ok=True)
        self._lock = FileLock(
            os.path.join(self.state_dir, "lock"), timeout=lock_timeout
        )
        self._check_marker()

    def _check_marker(self) -> None:
        marker_path = os.path.join(self.state_dir, "state.json")
        if os.path.isfile(marker_path):
            with open(marker_path) as handle:
                marker = json.load(handle)
            if marker.get("format") != STATE_FORMAT:
                raise SnapshotError(
                    f"state dir {self.state_dir} has format "
                    f"{marker.get('format')!r}; this build reads {STATE_FORMAT}"
                )
        else:
            write_json_atomic(marker_path, {"format": STATE_FORMAT})

    # -- paths ---------------------------------------------------------- #

    def snapshot_paths(self) -> List[str]:
        """All snapshot files, newest (highest iteration) first."""
        try:
            names = os.listdir(self.snapshots_dir)
        except FileNotFoundError:
            return []
        files = [
            name for name in names
            if name.startswith(_SNAPSHOT_PREFIX) and name.endswith(".json")
        ]
        # The zero-padded iteration makes lexicographic == numeric order.
        return [
            os.path.join(self.snapshots_dir, name)
            for name in sorted(files, reverse=True)
        ]

    def _path_for(self, iteration: int) -> str:
        return os.path.join(
            self.snapshots_dir, f"{_SNAPSHOT_PREFIX}{iteration:012d}.json"
        )

    # -- write ---------------------------------------------------------- #

    def write(self, snapshot: Dict[str, Any]) -> str:
        """Persist one snapshot atomically; prunes old files; returns path.

        The file payload wraps the snapshot with its checksum::

            {"checksum": "<sha256>", "snapshot": {...}}

        Two snapshots at the same iteration (e.g. a registration burst
        between updates) overwrite — newer state strictly supersedes.
        """
        iteration = int(snapshot["optimizer"]["iteration"])
        payload = {
            "checksum": snapshot_checksum(snapshot),
            "snapshot": snapshot,
        }
        path = self._path_for(iteration)
        with self._lock:
            write_json_atomic(path, payload)
            self._prune_locked(keep=path)
        return path

    def _prune_locked(self, keep: str) -> None:
        paths = self.snapshot_paths()
        for path in paths[self.retain:]:
            if path == keep:
                continue
            try:
                os.unlink(path)
            except OSError:
                pass  # already gone (concurrent pruner) — harmless

    # -- read ----------------------------------------------------------- #

    def load_latest(self) -> Optional[Tuple[Dict[str, Any], str]]:
        """Newest valid snapshot as ``(snapshot, path)``; ``None`` if empty.

        Walks newest → oldest, skipping torn/truncated/corrupt files (the
        fallback the checkpoint discipline promises).  If snapshot files
        exist but *none* is valid, raises :class:`SnapshotError` — a
        state dir full of garbage should stop a resume, not silently
        start the run over.  A snapshot stamped with a *newer* schema
        version also raises: falling back past it would resurrect stale
        state.
        """
        paths = self.snapshot_paths()
        if not paths:
            return None
        for path in paths:
            snapshot = self._load_one(path)
            if snapshot is not None:
                return snapshot, path
        raise SnapshotError(
            f"no valid snapshot among {len(paths)} file(s) in "
            f"{self.snapshots_dir}"
        )

    def _load_one(self, path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None  # torn/truncated/unreadable — fall back
        if not isinstance(payload, dict):
            return None
        snapshot = payload.get("snapshot")
        checksum = payload.get("checksum")
        if not isinstance(snapshot, dict) or not isinstance(checksum, str):
            return None
        version = snapshot.get("snapshot_version")
        if isinstance(version, int) and version > SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path} is a version-{version} snapshot; this build reads "
                f"up to {SNAPSHOT_VERSION}"
            )
        if snapshot_checksum(snapshot) != checksum:
            return None  # bits landed but don't add up — fall back
        return snapshot


class Checkpointer:
    """Policy-driven snapshot writer bound to one store.

    The caller (the service, under its core lock) invokes
    :meth:`after_update` after state changes and :meth:`checkpoint` for
    forced writes (startup priming, registrations, shutdown flush).
    """

    def __init__(self, store: SnapshotStore, policy: Optional[CheckpointPolicy] = None):
        self.store = store
        self.policy = policy if policy is not None else CheckpointPolicy()
        self.snapshots_written = 0
        self._last_iteration = -1
        self._last_time = time.monotonic()

    def checkpoint(self, core) -> str:
        """Write a snapshot now, unconditionally; returns its path."""
        path = self.store.write(snapshot_core(core))
        self.snapshots_written += 1
        self._last_iteration = core.iteration
        self._last_time = time.monotonic()
        return path

    def after_update(self, core) -> Optional[str]:
        """Checkpoint iff the policy says this state change warrants it."""
        if self.policy.due(
            core.iteration, self._last_iteration, time.monotonic(), self._last_time
        ):
            return self.checkpoint(core)
        return None

    def note_restored(self, core) -> None:
        """Record a resume point so the next trigger measures from it."""
        self._last_iteration = core.iteration
        self._last_time = time.monotonic()
