"""Advisory file locks guarding store writes across processes.

:class:`FileLock` is an exclusive, inter-process lock on a path.  On
POSIX it uses ``fcntl.flock`` (the lock dies with the holder, so a
SIGKILLed writer never wedges the store); elsewhere it falls back to
``O_EXCL`` lock-file creation with stale-lock breaking by mtime.

Locks serialize *writers* only — readers rely on the backend's atomic
rename discipline (see :mod:`repro.store.backend`) and never block.
"""

from __future__ import annotations

import os
import time

try:
    import fcntl
except ImportError:  # non-POSIX (e.g. Windows)
    fcntl = None  # type: ignore[assignment]


class LockTimeout(TimeoutError):
    """Raised when a lock cannot be acquired within the timeout."""


class FileLock:
    """Exclusive advisory lock on ``path``.

    Parameters
    ----------
    path:
        Lock-file location; parent directories are created on demand.
    timeout:
        Seconds to wait for the lock before :class:`LockTimeout`.
    poll_interval:
        Sleep between acquisition attempts.
    stale_after:
        Fallback mode only: a lock file older than this many seconds is
        presumed abandoned (its holder was killed) and broken.

    Usage::

        with FileLock("/path/to/store/locks/abc.lock"):
            ...  # exclusive section
    """

    def __init__(self, path: str, timeout: float = 30.0,
                 poll_interval: float = 0.05, stale_after: float = 300.0):
        if timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        self.path = path
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self._fd: int | None = None

    @property
    def locked(self) -> bool:
        return self._fd is not None

    def acquire(self) -> None:
        if self.locked:
            raise RuntimeError(f"lock already held: {self.path}")
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        if fcntl is not None:
            self._acquire_flock(deadline)
        else:
            self._acquire_exclusive_create(deadline)

    def _acquire_flock(self, deadline: float) -> None:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(fd)
                    raise LockTimeout(
                        f"could not lock {self.path} within "
                        f"{self.timeout:.1f}s"
                    ) from None
                time.sleep(self.poll_interval)
            else:
                self._fd = fd
                return

    def _acquire_exclusive_create(self, deadline: float) -> None:
        while True:
            try:
                fd = os.open(self.path,
                             os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not lock {self.path} within "
                        f"{self.timeout:.1f}s"
                    ) from None
                time.sleep(self.poll_interval)
            else:
                os.write(fd, str(os.getpid()).encode("ascii"))
                self._fd = fd
                return

    def _break_if_stale(self) -> None:
        """Remove a fallback lock file whose holder looks long dead."""
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return  # already gone
        if age > self.stale_after:
            try:
                os.unlink(self.path)
            except OSError:
                pass  # a racing process broke it first

    def release(self) -> None:
        if not self.locked:
            raise RuntimeError(f"lock not held: {self.path}")
        fd, self._fd = self._fd, None
        if fcntl is not None:
            # The lock file itself stays behind: removing it would let a
            # third process lock a fresh inode while a second still
            # blocks on the old one.
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:
            os.close(fd)
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
