"""``repro-store`` — inspect and manage a persistent run store.

Subcommands::

    repro-store list   [--experiment N] [--type T] [--label L] [--long]
    repro-store show   KEYPREFIX
    repro-store diff   KEYPREFIX KEYPREFIX [--tolerance X]
    repro-store export KEYPREFIX [-o PATH]
    repro-store prune  [--older-than AGE] [--experiment N] [--type T] [--all]

The store directory comes from ``--store DIR`` or the
``REPRO_STORE_DIR`` environment variable.  Key prefixes resolve like git
short hashes; ``AGE`` accepts ``90``, ``45s``, ``30m``, ``12h``, ``7d``.
``diff`` compares two figure entries' per-arm tail errors and exits
non-zero when any arm moved by more than ``--tolerance`` — usable
directly as a CI regression gate between two sweeps.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.experiments.results import FigureResult
from repro.store.backend import StoreError
from repro.store.store import RunStore, STORE_DIR_ENV

_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_age(text: str) -> float:
    """``"90"``/``"45s"``/``"30m"``/``"12h"``/``"7d"`` → seconds."""
    text = text.strip().lower()
    unit = 1.0
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise StoreError(f"unparseable age {text!r} "
                         "(expected e.g. 90, 45s, 30m, 12h, 7d)") from None
    if value < 0:
        raise StoreError(f"age must be non-negative, got {value}")
    return value * unit


def _age_string(created_at: float, now: Optional[float] = None) -> str:
    seconds = max(0.0, (time.time() if now is None else now) - created_at)
    for suffix, unit in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= unit:
            return f"{seconds / unit:.1f}{suffix}"
    return f"{seconds:.0f}s"


def _headline(manifest: Dict[str, Any]) -> str:
    """The one number worth a column in ``list`` output."""
    summary = manifest.get("summary", {})
    if manifest.get("type") == "error_curve":
        return f"tail={summary.get('tail_error', float('nan')):.3f}"
    if manifest.get("type") == "scalar":
        return f"value={summary.get('value', float('nan')):.3f}"
    tails = summary.get("tail_errors", {})
    return f"{len(tails)} arm(s)"


# --------------------------------------------------------------------- #
# Subcommands                                                           #
# --------------------------------------------------------------------- #


def cmd_list(store: RunStore, args: argparse.Namespace) -> int:
    manifests = store.query(result_type=args.type,
                            experiment=args.experiment, label=args.label)
    if not manifests:
        print("(store is empty or no entries match)")
        return 0
    width = 64 if args.long else 12
    print(f"{'key':<{width}} {'type':<13} {'experiment':<22} "
          f"{'label':<26} {'trial':>5} {'age':>7}  summary")
    for m in manifests:
        trial = m.get("trial")
        print(f"{m['key'][:width]:<{width}} {m.get('type', '?'):<13} "
              f"{str(m.get('experiment', '-')):<22} "
              f"{str(m.get('label', '-')):<26} "
              f"{'-' if trial is None else trial:>5} "
              f"{_age_string(m.get('created_at', 0.0)):>7}  {_headline(m)}")
    print(f"({len(manifests)} entr{'y' if len(manifests) == 1 else 'ies'})")
    return 0


def cmd_show(store: RunStore, args: argparse.Namespace) -> int:
    key = store.resolve(args.key)
    manifest = store.manifest(key)
    print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _figure_entry(store: RunStore, prefix: str) -> FigureResult:
    key = store.resolve(prefix)
    value = store.get(key)
    if not isinstance(value, FigureResult):
        raise StoreError(
            f"{key[:12]} is a {type(value).__name__} entry; expected a "
            "figure_result (run `repro-store list --type figure_result`)"
        )
    return value


def cmd_diff(store: RunStore, args: argparse.Namespace) -> int:
    left = _figure_entry(store, args.left)
    right = _figure_entry(store, args.right)
    left_tails = left.tail_errors()
    right_tails = right.tail_errors()
    arms = sorted(set(left_tails) | set(right_tails))
    print(f"{'arm':<34} {'left':>9} {'right':>9} {'delta':>10}")
    worst = 0.0
    for arm in arms:
        a, b = left_tails.get(arm), right_tails.get(arm)
        if a is None or b is None:
            print(f"{arm:<34} {'-' if a is None else f'{a:9.4f}':>9} "
                  f"{'-' if b is None else f'{b:9.4f}':>9} {'(only one)':>10}")
            worst = float("inf")
            continue
        delta = b - a
        worst = max(worst, abs(delta))
        print(f"{arm:<34} {a:>9.4f} {b:>9.4f} {delta:>+10.4f}")
    for name in sorted(set(left.reference_lines) | set(right.reference_lines)):
        a = left.reference_lines.get(name)
        b = right.reference_lines.get(name)
        if a is not None and b is not None:
            worst = max(worst, abs(b - a))
            print(f"{name:<34} {a:>9.4f} {b:>9.4f} {b - a:>+10.4f}  (const)")
        else:
            worst = float("inf")
            print(f"{name:<34} {'-' if a is None else f'{a:9.4f}':>9} "
                  f"{'-' if b is None else f'{b:9.4f}':>9} {'(only one)':>10}")
    if worst > args.tolerance:
        print(f"DIFFER (max |delta| {worst:.4f} > "
              f"tolerance {args.tolerance:.4f})")
        return 1
    print(f"MATCH (max |delta| {worst:.4f} <= "
          f"tolerance {args.tolerance:.4f})")
    return 0


def cmd_export(store: RunStore, args: argparse.Namespace) -> int:
    result = _figure_entry(store, args.key)
    text = result.to_json() + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output} "
              f"({len(result.curves)} curve(s), "
              f"{len(result.reference_lines)} reference line(s))")
    else:
        sys.stdout.write(text)
    return 0


def cmd_prune(store: RunStore, args: argparse.Namespace) -> int:
    removed = store.prune(
        older_than=None if args.older_than is None
        else parse_age(args.older_than),
        result_type=args.type,
        experiment=args.experiment,
        everything=args.all,
    )
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


# --------------------------------------------------------------------- #
# Entry point                                                           #
# --------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--store", metavar="DIR", default=None,
                        help=f"store directory (default: ${STORE_DIR_ENV})")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list stored entries")
    p.add_argument("--experiment", help="filter by experiment name")
    p.add_argument("--label", help="filter by arm label")
    p.add_argument("--type", choices=("error_curve", "scalar",
                                      "figure_result"),
                   help="filter by stored value type")
    p.add_argument("--long", action="store_true", help="print full keys")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("show", help="print one entry's manifest")
    p.add_argument("key", help="key or unique prefix")
    p.set_defaults(func=cmd_show)

    p = sub.add_parser("diff", help="compare two figure runs' tail errors")
    p.add_argument("left", help="key or unique prefix of the baseline run")
    p.add_argument("right", help="key or unique prefix of the other run")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="max |delta| still reported as MATCH (default 0)")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("export", help="write a figure entry's curves as JSON")
    p.add_argument("key", help="key or unique prefix")
    p.add_argument("-o", "--output", metavar="PATH",
                   help="destination file (default: stdout)")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("prune", help="delete matching entries")
    p.add_argument("--older-than", metavar="AGE",
                   help="minimum age, e.g. 90, 45s, 30m, 12h, 7d")
    p.add_argument("--experiment", help="filter by experiment name")
    p.add_argument("--type", choices=("error_curve", "scalar",
                                      "figure_result"),
                   help="filter by stored value type")
    p.add_argument("--all", action="store_true",
                   help="allow pruning with no other filter")
    p.set_defaults(func=cmd_prune)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    root = args.store or os.environ.get(STORE_DIR_ENV)
    if not root:
        parser.error(f"no store directory: pass --store or set "
                     f"${STORE_DIR_ENV}")
    try:
        store = RunStore(root)
        return args.func(store, args)
    except StoreError as exc:
        print(f"repro-store: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager (`| head`) closed early; not an error.  Point
        # stdout at devnull so interpreter shutdown doesn't re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
