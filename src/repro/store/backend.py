"""On-disk layout and atomic I/O for the run store.

Layout under a store root::

    <root>/
        store.json                  # {"format": 1} marker
        runs/<key[:2]>/<key>/
            result.json             # the stored value (written first)
            manifest.json           # metadata (written last = commit)
        locks/<key>.lock            # per-entry writer lock

An entry *exists* iff its ``manifest.json`` does: every file is written
via temp-file + ``os.replace`` and the manifest lands last, so a writer
killed at any instant leaves either a complete entry or an invisible
partial one that the next writer simply overwrites.  Readers therefore
never need locks; writers serialize per key through
:class:`~repro.store.locking.FileLock`.
"""

from __future__ import annotations

import json
import os
import shutil
import string
import tempfile
from typing import Any, Dict, Iterator, Optional

from repro.store.locking import FileLock

#: On-disk format version, recorded in ``store.json``.
STORE_FORMAT = 1

MANIFEST_NAME = "manifest.json"
RESULT_NAME = "result.json"

_HEX = set(string.hexdigits.lower())


class StoreError(RuntimeError):
    """A store invariant was violated (bad key, format mismatch, ...)."""


def write_json_atomic(path: str, payload: Any) -> None:
    """Write ``payload`` as JSON so readers see the old file or the new.

    The temp file lives in the destination directory, so ``os.replace``
    is a same-filesystem atomic rename.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class DirectoryBackend:
    """Filesystem backend: one directory per entry, fanned out by prefix."""

    def __init__(self, root: str, lock_timeout: float = 30.0):
        self.root = os.path.abspath(root)
        self._lock_timeout = lock_timeout
        os.makedirs(self.runs_dir, exist_ok=True)
        os.makedirs(self.locks_dir, exist_ok=True)
        self._check_format_marker()

    # -- layout -------------------------------------------------------- #

    @property
    def runs_dir(self) -> str:
        return os.path.join(self.root, "runs")

    @property
    def locks_dir(self) -> str:
        return os.path.join(self.root, "locks")

    @property
    def marker_path(self) -> str:
        return os.path.join(self.root, "store.json")

    def entry_dir(self, key: str) -> str:
        self._validate_key(key)
        return os.path.join(self.runs_dir, key[:2], key)

    def lock(self, key: str) -> FileLock:
        """The writer lock for ``key``'s entry."""
        self._validate_key(key)
        return FileLock(os.path.join(self.locks_dir, f"{key}.lock"),
                        timeout=self._lock_timeout)

    @staticmethod
    def _validate_key(key: str) -> None:
        if len(key) != 64 or not set(key) <= _HEX:
            raise StoreError(
                f"malformed store key {key!r} (expected 64 hex chars)"
            )

    def _check_format_marker(self) -> None:
        if os.path.isfile(self.marker_path):
            with open(self.marker_path) as handle:
                marker = json.load(handle)
            if marker.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"store at {self.root} has format "
                    f"{marker.get('format')!r}; this build reads format "
                    f"{STORE_FORMAT}"
                )
        else:
            # Concurrent initializers both write the same marker; the
            # atomic replace makes the race harmless.
            write_json_atomic(self.marker_path, {"format": STORE_FORMAT})

    # -- entry I/O ----------------------------------------------------- #

    def exists(self, key: str) -> bool:
        return os.path.isfile(os.path.join(self.entry_dir(key),
                                           MANIFEST_NAME))

    def read_manifest(self, key: str) -> Optional[Dict[str, Any]]:
        return self._read_json(key, MANIFEST_NAME)

    def read_result(self, key: str) -> Optional[Dict[str, Any]]:
        return self._read_json(key, RESULT_NAME)

    def _read_json(self, key: str, name: str) -> Optional[Dict[str, Any]]:
        path = os.path.join(self.entry_dir(key), name)
        try:
            with open(path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as exc:
            # Atomic writes mean a crash can't leave half a file; decode
            # failures indicate external damage worth surfacing.
            raise StoreError(f"corrupt store file {path}: {exc}") from exc

    def write_entry(self, key: str, manifest: Dict[str, Any],
                    result: Dict[str, Any], overwrite: bool = False) -> bool:
        """Persist an entry; returns False if it exists and not ``overwrite``."""
        with self.lock(key):
            if not overwrite and self.exists(key):
                return False
            entry = self.entry_dir(key)
            os.makedirs(entry, exist_ok=True)
            write_json_atomic(os.path.join(entry, RESULT_NAME), result)
            write_json_atomic(os.path.join(entry, MANIFEST_NAME), manifest)
            return True

    def remove(self, key: str) -> bool:
        """Delete an entry (and any partial files); True if it existed.

        The lock file deliberately stays behind: unlinking it would let
        a later writer flock a fresh inode at the same path while an
        earlier writer still blocks on the old one, putting two
        processes inside the key's critical section at once.  Lock
        files are empty — pruning an entry reclaims its data either way.
        """
        with self.lock(key):
            existed = self.exists(key)
            shutil.rmtree(self.entry_dir(key), ignore_errors=True)
        return existed

    def iter_keys(self) -> Iterator[str]:
        """All committed entry keys (sorted for deterministic listings)."""
        try:
            prefixes = sorted(os.listdir(self.runs_dir))
        except FileNotFoundError:
            return
        for prefix in prefixes:
            prefix_dir = os.path.join(self.runs_dir, prefix)
            if not os.path.isdir(prefix_dir):
                continue
            for key in sorted(os.listdir(prefix_dir)):
                if os.path.isfile(os.path.join(prefix_dir, key,
                                               MANIFEST_NAME)):
                    yield key
