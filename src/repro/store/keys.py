"""Stable content-addressed keys for stored results.

A store key is the SHA-256 of a *canonical JSON* rendering of everything
that determines a result bit-for-bit: for one task that is the execution
payload :class:`~repro.experiments.session.ExperimentSession` builds
(arm fields, resolved dataset request, effective seed, trial index); for
a whole figure it is the spec's dict form plus the run seed.

Canonicalization rules (``canonicalize``):

* dicts sort by key; tuples become lists;
* non-finite floats become the strings ``"__inf__"`` / ``"__-inf__"`` /
  ``"__nan__"`` so the canonical form is strict JSON (``allow_nan`` off);
* NumPy scalars collapse to their Python equivalents;
* anything else is a :class:`TypeError` — keys never silently depend on
  ``repr`` of an unknown object.

Arm *labels* are intentionally absent from task keys (they never enter
the payload): renaming an arm keeps its cache entries, and two arms that
differ only in label share them.  Bump :data:`KEY_FORMAT` whenever
execution semantics change in a way that invalidates stored results.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping

import numpy as np

#: Version stamp mixed into every key; bump to invalidate all entries.
KEY_FORMAT = 1

#: Payload entries that reference in-memory data tables, never content.
_REF_SUFFIX = "_ref"


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to canonical JSON-compatible data (see module doc)."""
    if isinstance(obj, Mapping):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        if math.isnan(value):
            return "__nan__"
        if math.isinf(value):
            return "__inf__" if value > 0 else "__-inf__"
        return value
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for a store key"
    )


def canonical_json(obj: Any) -> str:
    """The canonical JSON string hashed by :func:`digest`."""
    return json.dumps(canonicalize(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def digest(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def task_key(payload: Mapping[str, Any]) -> str:
    """Key for one execution task (one trial / one baseline run).

    ``payload`` is the dict built by ``ExperimentSession._arm_payloads``:
    every field that shapes the computation, plus ``*_ref`` handles into
    the in-memory data table.  The refs are dropped — the dataset is
    identified by the payload's ``data_desc`` (maker + resolved kwargs),
    not by where it happens to live in this process.
    """
    material = {k: v for k, v in payload.items()
                if not k.endswith(_REF_SUFFIX)}
    material["__record__"] = "task"
    material["__format__"] = KEY_FORMAT
    return digest(material)


def figure_key(spec_dict: Mapping[str, Any], seed: int) -> str:
    """Key for a complete figure run: spec dict form + run seed."""
    return digest({
        "__record__": "figure",
        "__format__": KEY_FORMAT,
        "spec": spec_dict,
        "seed": int(seed),
    })
