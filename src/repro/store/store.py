""":class:`RunStore` — the persistent, content-addressed result store.

Values are addressed by the keys of :mod:`repro.store.keys` and can be
an :class:`~repro.evaluation.curves.ErrorCurve` (one task's trajectory),
a ``float`` (a ``central_batch`` reference scalar), or a whole
:class:`~repro.experiments.results.FigureResult`.  Storage is
first-writer-wins: concurrent workers computing the same key race
safely, and a loser simply keeps the winner's (bit-identical) entry.

Every entry carries a manifest — key, creation time, value type, a small
summary (final/tail error), and caller-supplied context such as the
experiment name and arm label — which is what ``query``/``prune`` and the
``repro-store`` CLI operate on without touching result payloads.
"""

from __future__ import annotations

import numbers
import os
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.evaluation.curves import ErrorCurve
from repro.experiments.results import FigureResult
from repro.store.backend import DirectoryBackend, StoreError

#: Environment variable naming the default store directory.
STORE_DIR_ENV = "REPRO_STORE_DIR"


# --------------------------------------------------------------------- #
# Value (de)serialization                                               #
# --------------------------------------------------------------------- #


def encode_result(value: Any) -> Dict[str, Any]:
    """The JSON form written to an entry's ``result.json``."""
    if isinstance(value, ErrorCurve):
        return {"type": "error_curve", "curve": value.to_dict()}
    if isinstance(value, FigureResult):
        return {"type": "figure_result", "figure": value.to_dict()}
    if isinstance(value, numbers.Real) and not isinstance(value, bool):
        return {"type": "scalar", "value": float(value)}
    raise StoreError(
        f"cannot store a {type(value).__name__}; expected ErrorCurve, "
        "FigureResult, or float"
    )


def decode_result(payload: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_result` (bit-exact for floats)."""
    kind = payload.get("type")
    if kind == "error_curve":
        return ErrorCurve.from_dict(payload["curve"])
    if kind == "figure_result":
        return FigureResult.from_dict(payload["figure"])
    if kind == "scalar":
        return float(payload["value"])
    raise StoreError(f"unknown stored result type {kind!r}")


def _summarize(value: Any) -> Dict[str, Any]:
    """The manifest's at-a-glance numbers (CLI listings, diffs)."""
    if isinstance(value, ErrorCurve):
        return {"final_error": value.final_error,
                "tail_error": value.tail_error(),
                "num_snapshots": len(value)}
    if isinstance(value, FigureResult):
        return {"tail_errors": value.tail_errors(),
                "final_errors": {name: curve.final_error
                                 for name, curve in value.curves.items()},
                "reference_lines": dict(value.reference_lines)}
    return {"value": float(value)}


# --------------------------------------------------------------------- #
# The store                                                             #
# --------------------------------------------------------------------- #


class RunStore:
    """Get/put/query/prune over a shared on-disk result store.

    Parameters
    ----------
    root:
        Store directory (created on demand).
    lock_timeout:
        Seconds a writer waits for a per-entry lock.

    Examples
    --------
    >>> import tempfile
    >>> from repro.evaluation.curves import ErrorCurve
    >>> import numpy as np
    >>> store = RunStore(tempfile.mkdtemp())
    >>> key = "ab" * 32
    >>> store.put(key, ErrorCurve(np.array([1]), np.array([0.5])))
    True
    >>> store.get(key).final_error
    0.5
    """

    def __init__(self, root: str, lock_timeout: float = 30.0):
        self._backend = DirectoryBackend(root, lock_timeout=lock_timeout)

    @classmethod
    def from_env(cls, default: Optional[str] = None) -> Optional["RunStore"]:
        """A store at ``$REPRO_STORE_DIR`` (or ``default``); None if unset."""
        root = os.environ.get(STORE_DIR_ENV) or default
        return cls(root) if root else None

    @property
    def root(self) -> str:
        return self._backend.root

    @property
    def backend(self) -> DirectoryBackend:
        return self._backend

    # -- core API ------------------------------------------------------ #

    def get(self, key: str) -> Any:
        """The decoded value for ``key``, or None when absent."""
        if not self._backend.exists(key):
            return None
        payload = self._backend.read_result(key)
        if payload is None:  # entry pruned between exists() and read
            return None
        return decode_result(payload)

    def put(self, key: str, value: Any,
            extra: Optional[Dict[str, Any]] = None,
            overwrite: bool = False) -> bool:
        """Persist ``value`` under ``key``; returns True if written.

        ``extra`` merges caller context (experiment, label, trial, ...)
        into the manifest; it cannot shadow the core manifest fields.
        With ``overwrite=False`` an existing entry wins the race and the
        call returns False.
        """
        encoded = encode_result(value)
        manifest = dict(extra or {})
        manifest.update(
            key=key,
            type=encoded["type"],
            created_at=time.time(),
            summary=_summarize(value),
        )
        return self._backend.write_entry(key, manifest, encoded,
                                         overwrite=overwrite)

    def __contains__(self, key: str) -> bool:
        return self._backend.exists(key)

    def __len__(self) -> int:
        return sum(1 for _ in self._backend.iter_keys())

    def keys(self) -> Iterator[str]:
        return self._backend.iter_keys()

    def manifest(self, key: str) -> Optional[Dict[str, Any]]:
        return self._backend.read_manifest(key)

    # -- query / prune ------------------------------------------------- #

    def query(
        self,
        result_type: Optional[str] = None,
        experiment: Optional[str] = None,
        label: Optional[str] = None,
        predicate: Optional[Callable[[Dict[str, Any]], bool]] = None,
    ) -> List[Dict[str, Any]]:
        """Manifests matching every given filter, oldest first.

        ``result_type`` is ``"error_curve"``/``"scalar"``/
        ``"figure_result"``; ``experiment``/``label`` match the context
        recorded at put time; ``predicate`` sees the full manifest.
        """
        matches = []
        for key in self._backend.iter_keys():
            manifest = self._backend.read_manifest(key)
            if manifest is None:
                continue
            if result_type is not None and manifest.get("type") != result_type:
                continue
            if experiment is not None and \
                    manifest.get("experiment") != experiment:
                continue
            if label is not None and manifest.get("label") != label:
                continue
            if predicate is not None and not predicate(manifest):
                continue
            matches.append(manifest)
        matches.sort(key=lambda m: (m.get("created_at", 0.0), m["key"]))
        return matches

    def prune(
        self,
        older_than: Optional[float] = None,
        result_type: Optional[str] = None,
        experiment: Optional[str] = None,
        everything: bool = False,
    ) -> int:
        """Delete matching entries; returns how many were removed.

        ``older_than`` is an age in seconds.  Calling with no filters is
        refused unless ``everything=True`` — an empty filter list is far
        more often a bug than a request to empty the store.
        """
        if (older_than is None and result_type is None
                and experiment is None and not everything):
            raise StoreError(
                "refusing to prune the whole store; pass a filter or "
                "everything=True"
            )
        cutoff = None if older_than is None else time.time() - older_than
        removed = 0
        for manifest in self.query(result_type=result_type,
                                   experiment=experiment):
            if cutoff is not None and \
                    manifest.get("created_at", 0.0) > cutoff:
                continue
            if self._backend.remove(manifest["key"]):
                removed += 1
        return removed

    def resolve(self, prefix: str) -> str:
        """Expand a unique key prefix (as git does for commit hashes)."""
        prefix = prefix.lower()
        if not prefix:
            raise StoreError("empty key prefix")
        matches = [k for k in self._backend.iter_keys()
                   if k.startswith(prefix)]
        if not matches:
            raise StoreError(f"no store entry matches {prefix!r}")
        if len(matches) > 1:
            raise StoreError(
                f"ambiguous key prefix {prefix!r} "
                f"({len(matches)} matches)"
            )
        return matches[0]
