"""Persistent run store: content-addressed, spec-keyed experiment results.

The store gives sweeps a memory.  Every task an
:class:`~repro.experiments.session.ExperimentSession` executes — one
crowd trial, one baseline curve, one reference scalar — is keyed by a
SHA-256 over everything that determines it (:mod:`repro.store.keys`) and
written to a shared on-disk layout with atomic renames and per-key file
locks (:mod:`repro.store.backend`, :mod:`repro.store.locking`), so:

* a re-run of an already-computed figure is served from disk,
  bit-identical, executing zero tasks;
* an interrupted sweep resumes from its completed tasks;
* parallel workers — including separate processes — share one store and
  race safely (first writer wins).

:class:`RunStore` is the public get/put/query/prune API, and the
``repro-store`` console script (:mod:`repro.store.cli`) lists, shows,
diffs, exports, and prunes entries.  Point the session at a store
explicitly or via the ``REPRO_STORE_DIR`` environment variable.
"""

from repro.store.backend import DirectoryBackend, StoreError, STORE_FORMAT
from repro.store.keys import (
    KEY_FORMAT,
    canonical_json,
    canonicalize,
    digest,
    figure_key,
    task_key,
)
from repro.store.locking import FileLock, LockTimeout
from repro.store.store import (
    RunStore,
    STORE_DIR_ENV,
    decode_result,
    encode_result,
)

__all__ = [
    "DirectoryBackend",
    "FileLock",
    "KEY_FORMAT",
    "LockTimeout",
    "RunStore",
    "STORE_DIR_ENV",
    "STORE_FORMAT",
    "StoreError",
    "canonical_json",
    "canonicalize",
    "decode_result",
    "digest",
    "encode_result",
    "figure_key",
    "task_key",
]
