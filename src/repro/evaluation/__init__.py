"""Evaluation utilities: metrics, error curves, multi-trial aggregation."""

from repro.evaluation.curves import ErrorCurve, average_curves, curve_std
from repro.evaluation.metrics import (
    snapshot_grid,
    test_error,
    test_loss,
    time_averaged_error,
)

__all__ = [
    "ErrorCurve",
    "average_curves",
    "curve_std",
    "snapshot_grid",
    "test_error",
    "test_loss",
    "time_averaged_error",
]
