"""Evaluation utilities: metrics, error curves, multi-trial aggregation."""

from repro.evaluation.compare import (
    assert_traces_identical,
    trace_differences,
    traces_identical,
)
from repro.evaluation.curves import ErrorCurve, average_curves, curve_std
from repro.evaluation.metrics import (
    SnapshotEvaluator,
    snapshot_grid,
    test_error,
    test_loss,
    time_averaged_error,
)

__all__ = [
    "ErrorCurve",
    "SnapshotEvaluator",
    "assert_traces_identical",
    "average_curves",
    "curve_std",
    "snapshot_grid",
    "test_error",
    "test_loss",
    "time_averaged_error",
    "trace_differences",
    "traces_identical",
]
