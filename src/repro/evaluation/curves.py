"""Error-vs-iteration curves and multi-trial aggregation.

Every experiment in Section V reports test error as a function of the
iteration count (= number of samples consumed), averaged over 10 trials.
:class:`ErrorCurve` is one trial's curve; :func:`average_curves` aligns
several trials on a common iteration grid (step-wise interpolation — the
curve holds its last value between snapshots) and averages them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np


@dataclass(frozen=True)
class ErrorCurve:
    """One (iterations, errors) trajectory.

    ``iterations`` must be strictly increasing; ``errors`` is the matching
    test-error sequence.
    """

    iterations: np.ndarray
    errors: np.ndarray

    def __post_init__(self):
        iterations = np.asarray(self.iterations, dtype=np.int64)
        errors = np.asarray(self.errors, dtype=np.float64)
        if iterations.ndim != 1 or errors.ndim != 1:
            raise ValueError("iterations and errors must be 1-D")
        if iterations.shape != errors.shape:
            raise ValueError(
                f"length mismatch: {iterations.shape} vs {errors.shape}"
            )
        if iterations.size and np.any(np.diff(iterations) <= 0):
            raise ValueError("iterations must be strictly increasing")
        object.__setattr__(self, "iterations", iterations)
        object.__setattr__(self, "errors", errors)

    def __len__(self) -> int:
        return self.iterations.shape[0]

    @property
    def final_error(self) -> float:
        """Error at the last recorded iteration."""
        if len(self) == 0:
            raise ValueError("empty curve has no final error")
        return float(self.errors[-1])

    def tail_error(self, fraction: float = 0.2) -> float:
        """Mean error over the trailing ``fraction`` of snapshots.

        A robust stand-in for the "asymptotic error" the paper eyeballs
        from its figures.
        """
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if len(self) == 0:
            raise ValueError("empty curve has no tail error")
        count = max(1, int(round(len(self) * fraction)))
        return float(np.mean(self.errors[-count:]))

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form: ``{"iterations": [...], "errors": [...]}``.

        Floats serialize via :func:`repr` (shortest round-tripping
        form), so ``from_dict(json.loads(json.dumps(to_dict())))`` is
        bit-identical to the original curve.
        """
        return {"iterations": self.iterations.tolist(),
                "errors": self.errors.tolist()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorCurve":
        """Inverse of :meth:`to_dict`."""
        return cls(np.asarray(data["iterations"], dtype=np.int64),
                   np.asarray(data["errors"], dtype=np.float64))

    def value_at(self, iteration: int) -> float:
        """Step-interpolated error at ``iteration`` (hold-last-value)."""
        if len(self) == 0:
            raise ValueError("empty curve")
        idx = int(np.searchsorted(self.iterations, iteration, side="right")) - 1
        if idx < 0:
            return float(self.errors[0])
        return float(self.errors[idx])


def average_curves(curves: list[ErrorCurve], grid: np.ndarray | None = None) -> ErrorCurve:
    """Average several trial curves onto a common iteration grid.

    When ``grid`` is omitted, the union of all snapshot iterations clipped
    to the shortest curve's horizon is used, so no curve is extrapolated.

    >>> a = ErrorCurve(np.array([1, 2]), np.array([1.0, 0.5]))
    >>> b = ErrorCurve(np.array([1, 2]), np.array([0.5, 0.3]))
    >>> average_curves([a, b]).errors.tolist()
    [0.75, 0.4]
    """
    if not curves:
        raise ValueError("need at least one curve")
    if grid is None:
        horizon = min(int(c.iterations[-1]) for c in curves)
        merged = np.unique(np.concatenate([c.iterations for c in curves]))
        grid = merged[merged <= horizon]
        if grid.size == 0:
            grid = np.array([horizon], dtype=np.int64)
    grid = np.asarray(grid, dtype=np.int64)
    stacked = np.stack(
        [[curve.value_at(int(i)) for i in grid] for curve in curves]
    )
    return ErrorCurve(grid, stacked.mean(axis=0))


def curve_std(curves: list[ErrorCurve], grid: np.ndarray) -> np.ndarray:
    """Per-gridpoint standard deviation across trials."""
    grid = np.asarray(grid, dtype=np.int64)
    stacked = np.stack(
        [[curve.value_at(int(i)) for i in grid] for curve in curves]
    )
    return stacked.std(axis=0)
