"""Exact structural comparison of run traces.

The simulator promises *bit-identical* :class:`~repro.simulation.trace
.RunTrace`\\ s across execution strategies — the fused
:class:`~repro.network.transport.DirectTransport` versus the event-driven
:class:`~repro.network.transport.SimulatedTransport`, and today's code
versus the recorded golden fingerprints in ``tests/data/`` — not
"close", identical.  :func:`assert_traces_identical` is that promise made
executable: it compares every field of two traces with exact equality
(no tolerances) and raises an :class:`AssertionError` naming the first
field that differs.  The recorded-trace regression suite
(``tests/simulation/test_trace_regression.py``) and the throughput
benchmarks both gate on it.

The field list is derived from the ``RunTrace`` dataclass itself, so a
newly added trace field can never silently escape the contract.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.simulation.trace import RunTrace


def _arrays_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact elementwise equality (NaNs compare equal positionally)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    if a.dtype.kind == "f" or b.dtype.kind == "f":
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def _values_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return _arrays_equal(a, b)
    return a == b


def trace_differences(a: RunTrace, b: RunTrace) -> List[str]:
    """Names of the ``RunTrace`` fields on which ``a`` and ``b`` differ.

    Iterates :func:`dataclasses.fields` of ``RunTrace`` — fields added in
    the future are compared automatically (with exact array equality for
    ndarray values); only the error curve is special-cased into its two
    components for a sharper diagnostic.
    """
    differing = []
    for field in dataclasses.fields(RunTrace):
        value_a = getattr(a, field.name)
        value_b = getattr(b, field.name)
        if field.name == "curve":
            if not _arrays_equal(value_a.iterations, value_b.iterations):
                differing.append("curve.iterations")
            if not _arrays_equal(value_a.errors, value_b.errors):
                differing.append("curve.errors")
        elif not _values_equal(value_a, value_b):
            differing.append(field.name)
    return differing


def traces_identical(a: RunTrace, b: RunTrace) -> bool:
    """True iff every trace field matches with exact (bitwise) equality."""
    return not trace_differences(a, b)


def assert_traces_identical(a: RunTrace, b: RunTrace, context: str = "") -> None:
    """Raise ``AssertionError`` naming the differing fields, if any."""
    differing = trace_differences(a, b)
    if differing:
        prefix = f"{context}: " if context else ""
        raise AssertionError(
            f"{prefix}traces differ on: {', '.join(differing)}"
        )
