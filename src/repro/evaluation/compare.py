"""Exact structural comparison of run traces.

The batch-arrival scheduler (``SimulationConfig.arrival_mode="batch"``)
promises *bit-identical* traces to the legacy per-sample scheduler — not
"close", identical.  :func:`assert_traces_identical` is that promise made
executable: it compares every field of two :class:`~repro.simulation.trace
.RunTrace` objects with exact equality (no tolerances) and raises an
:class:`AssertionError` naming the first field that differs.  The
cross-path equivalence suite and the throughput benchmark both gate on it.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.simulation.trace import RunTrace


def _arrays_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact elementwise equality (NaNs compare equal positionally)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    if a.dtype.kind == "f" or b.dtype.kind == "f":
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def trace_differences(a: RunTrace, b: RunTrace) -> List[str]:
    """Names of the ``RunTrace`` fields on which ``a`` and ``b`` differ."""
    differing = []
    if not _arrays_equal(a.curve.iterations, b.curve.iterations):
        differing.append("curve.iterations")
    if not _arrays_equal(a.curve.errors, b.curve.errors):
        differing.append("curve.errors")
    if not _arrays_equal(a.online_errors, b.online_errors):
        differing.append("online_errors")
    if not _arrays_equal(a.final_parameters, b.final_parameters):
        differing.append("final_parameters")
    if not _arrays_equal(a.staleness, b.staleness):
        differing.append("staleness")
    if a.total_samples_consumed != b.total_samples_consumed:
        differing.append("total_samples_consumed")
    if a.server_iterations != b.server_iterations:
        differing.append("server_iterations")
    if a.communication != b.communication:
        differing.append("communication")
    if a.per_sample_epsilon != b.per_sample_epsilon:
        differing.append("per_sample_epsilon")
    if a.stop_reason != b.stop_reason:
        differing.append("stop_reason")
    return differing


def traces_identical(a: RunTrace, b: RunTrace) -> bool:
    """True iff every trace field matches with exact (bitwise) equality."""
    return not trace_differences(a, b)


def assert_traces_identical(a: RunTrace, b: RunTrace, context: str = "") -> None:
    """Raise ``AssertionError`` naming the differing fields, if any."""
    differing = trace_differences(a, b)
    if differing:
        prefix = f"{context}: " if context else ""
        raise AssertionError(
            f"{prefix}traces differ on: {', '.join(differing)}"
        )
