"""Evaluation metrics: test error, time-averaged online error (Fig. 3)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.models.base import Model
from repro.utils.numerics import running_mean


def test_error(model: Model, parameters: np.ndarray, dataset: Dataset) -> float:
    """Misclassification rate of ``parameters`` on ``dataset``.

    >>> import numpy as np
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.data.dataset import Dataset
    >>> model = MulticlassLogisticRegression(num_features=1, num_classes=2)
    >>> ds = Dataset(np.array([[1.0], [-1.0]]), np.array([1, 0]), 2)
    >>> test_error(model, np.array([-1.0, 1.0]), ds)
    0.0
    """
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    return model.error_rate(parameters, dataset.features, dataset.labels)


def test_loss(model: Model, parameters: np.ndarray, dataset: Dataset) -> float:
    """Mean loss of ``parameters`` on ``dataset`` (includes the λ term)."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    return model.loss(parameters, dataset.features, dataset.labels)


def time_averaged_error(per_sample_errors: np.ndarray) -> np.ndarray:
    """Fig. 3's ``Err(t) = (1/t) Σ_{i≤t} I[y_i ≠ y_i^pred]``.

    ``per_sample_errors`` is the boolean error indicator sequence in
    collection order; the output is the running error-rate curve.
    """
    errors = np.asarray(per_sample_errors, dtype=np.float64)
    return running_mean(errors)


class SnapshotEvaluator:
    """Memoized test-error oracle for snapshot grids.

    A run's error curve snapshots the same parameter vector repeatedly
    whenever one check-in crosses several grid points (common at large
    minibatch sizes), and at paper scale each evaluation is a full
    test-set forward pass.  This evaluator keys results on the exact
    parameter bytes, so repeated snapshots of unchanged parameters cost a
    dict lookup instead of a 10k × d matmul; with no subsample configured
    the returned values are bit-identical to :func:`test_error`.

    Parameters
    ----------
    model, dataset:
        The evaluation oracle and the clean test set.
    subsample:
        Optional cap on the number of test examples used.  When smaller
        than the dataset, that many rows are drawn once (without
        replacement, order-preserving) from ``rng`` — an opt-in
        approximation for the scalability ablations.
    rng:
        Source for the subsample draw; required when ``subsample`` binds.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.data.dataset import Dataset
    >>> model = MulticlassLogisticRegression(num_features=1, num_classes=2)
    >>> ds = Dataset(np.array([[1.0], [-1.0]]), np.array([1, 0]), 2)
    >>> evaluator = SnapshotEvaluator(model, ds)
    >>> evaluator.error(np.array([-1.0, 1.0]))
    0.0
    >>> evaluator.hits, evaluator.misses
    (0, 1)
    """

    def __init__(
        self,
        model: Model,
        dataset: Dataset,
        subsample: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if len(dataset) == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        self._model = model
        if subsample is not None and subsample < len(dataset):
            if rng is None:
                raise ValueError("subsample requires an rng for the draw")
            rows = np.sort(rng.choice(len(dataset), size=subsample, replace=False))
            self._features = dataset.features[rows]
            self._labels = dataset.labels[rows]
        else:
            self._features = dataset.features
            self._labels = dataset.labels
        self._cache: dict = {}
        self.hits = 0
        self.misses = 0

    @property
    def num_examples(self) -> int:
        """Test examples actually evaluated per (uncached) snapshot."""
        return int(self._labels.shape[0])

    def error(self, parameters: np.ndarray) -> float:
        """Misclassification rate of ``parameters``, memoized on its bits."""
        key = np.ascontiguousarray(parameters).tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = self._model.error_rate(parameters, self._features, self._labels)
        self._cache[key] = value
        return value


def snapshot_grid(max_iterations: int, num_points: int = 60) -> np.ndarray:
    """Iteration checkpoints at which curves record test error.

    Linear grid over ``[1, max_iterations]`` with ``num_points`` unique
    integer entries, always including the endpoint.

    >>> snapshot_grid(10, 5).tolist()
    [1, 3, 6, 8, 10]
    """
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    grid = np.unique(
        np.round(np.linspace(1, max_iterations, num=min(num_points, max_iterations)))
    ).astype(np.int64)
    return grid
