"""Evaluation metrics: test error, time-averaged online error (Fig. 3)."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.models.base import Model
from repro.utils.numerics import running_mean


def test_error(model: Model, parameters: np.ndarray, dataset: Dataset) -> float:
    """Misclassification rate of ``parameters`` on ``dataset``.

    >>> import numpy as np
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.data.dataset import Dataset
    >>> model = MulticlassLogisticRegression(num_features=1, num_classes=2)
    >>> ds = Dataset(np.array([[1.0], [-1.0]]), np.array([1, 0]), 2)
    >>> test_error(model, np.array([-1.0, 1.0]), ds)
    0.0
    """
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    return model.error_rate(parameters, dataset.features, dataset.labels)


def test_loss(model: Model, parameters: np.ndarray, dataset: Dataset) -> float:
    """Mean loss of ``parameters`` on ``dataset`` (includes the λ term)."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    return model.loss(parameters, dataset.features, dataset.labels)


def time_averaged_error(per_sample_errors: np.ndarray) -> np.ndarray:
    """Fig. 3's ``Err(t) = (1/t) Σ_{i≤t} I[y_i ≠ y_i^pred]``.

    ``per_sample_errors`` is the boolean error indicator sequence in
    collection order; the output is the running error-rate curve.
    """
    errors = np.asarray(per_sample_errors, dtype=np.float64)
    return running_mean(errors)


def snapshot_grid(max_iterations: int, num_points: int = 60) -> np.ndarray:
    """Iteration checkpoints at which curves record test error.

    Linear grid over ``[1, max_iterations]`` with ``num_points`` unique
    integer entries, always including the endpoint.

    >>> snapshot_grid(10, 5).tolist()
    [1, 3, 6, 8, 10]
    """
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    grid = np.unique(
        np.round(np.linspace(1, max_iterations, num=min(num_points, max_iterations)))
    ).astype(np.int64)
    return grid
