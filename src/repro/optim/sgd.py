"""Server-side update rules (Eq. 3 and the Remark-3 alternatives).

An :class:`Optimizer` consumes one (possibly noisy, possibly delayed)
gradient at a time and maintains the flat parameter vector.  The server
applies it inside Algorithm 2's Routine 2; it is equally usable standalone,
which is how the centralized-SGD and decentralized baselines train.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.optim.projection import IdentityProjection, Projection
from repro.optim.schedules import InverseSqrtRate, LearningRateSchedule
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_vector


class Optimizer(ABC):
    """Incremental first-order optimizer over a flat parameter vector."""

    def __init__(
        self,
        initial_parameters: np.ndarray,
        projection: Optional[Projection] = None,
    ):
        self._parameters = check_vector(
            np.array(initial_parameters, dtype=np.float64, copy=True), "initial_parameters"
        )
        self._projection = projection if projection is not None else IdentityProjection()
        self._iteration = 0

    @property
    def parameters(self) -> np.ndarray:
        """Current parameter vector (copy; the optimizer owns its state)."""
        return self._parameters.copy()

    @property
    def parameters_view(self) -> np.ndarray:
        """Current parameter vector WITHOUT a defensive copy.

        Read-only contract: every step rebinds a fresh vector rather than
        mutating in place, so a view taken here is stable forever — but
        writing to it corrupts the optimizer.  For hot paths that build
        one immutable message per update.
        """
        return self._parameters

    @property
    def iteration(self) -> int:
        """Number of gradient steps applied so far."""
        return self._iteration

    @property
    def projection(self) -> Projection:
        """Projection applied after every step (Π_W of Eq. 3)."""
        return self._projection

    def step(self, gradient: np.ndarray) -> np.ndarray:
        """Apply one update and return the new parameter vector.

        The returned array is the optimizer's current state — treat it as
        read-only (every step rebinds a fresh vector, so references taken
        here are never mutated later; use :attr:`parameters` for an owned
        copy).  Skipping the defensive copy matters: the server applies
        one step per check-in.

        A non-finite gradient is rejected before it can touch the state:
        the optimizer sits at the server's wire boundary, and one inf/NaN
        message would otherwise corrupt w permanently.
        """
        if type(gradient) is not np.ndarray or gradient.dtype != np.float64:
            gradient = np.asarray(gradient, dtype=np.float64)
        if gradient.shape != self._parameters.shape:
            raise ConfigurationError(
                f"gradient must have shape {self._parameters.shape}, "
                f"got {gradient.shape}"
            )
        if not np.isfinite(gradient).all():
            raise ConfigurationError("gradient must contain only finite values")
        self._iteration += 1
        updated = self._apply(gradient)
        self._parameters = np.asarray(self._projection(updated), dtype=np.float64)
        return self._parameters

    def restore_state(self, parameters: np.ndarray, iteration: int) -> None:
        """Rebind (w, t) from a snapshot — the :mod:`repro.persist` seam.

        The parameters are adopted bit for bit (no projection re-applied:
        a snapshotted vector was already projected when it was produced).
        """
        parameters = check_vector(
            np.array(parameters, dtype=np.float64, copy=True), "parameters"
        )
        if parameters.shape != self._parameters.shape:
            raise ConfigurationError(
                f"snapshot parameters have shape {parameters.shape}, "
                f"optimizer expects {self._parameters.shape}"
            )
        if iteration < 0:
            raise ConfigurationError(f"iteration must be >= 0, got {iteration}")
        self._parameters = parameters
        self._iteration = int(iteration)

    @abstractmethod
    def _apply(self, gradient: np.ndarray) -> np.ndarray:
        """Compute the pre-projection update for the current iteration."""


class SGD(Optimizer):
    """Projected stochastic (sub)gradient descent — Eq. (3).

        w(t+1) ← Π_W[ w(t) − η(t)·g(t) ],   η(t) = c/√t by default.

    Examples
    --------
    >>> import numpy as np
    >>> opt = SGD(np.zeros(2), schedule=InverseSqrtRate(1.0))
    >>> opt.step(np.array([1.0, 0.0]))
    array([-1.,  0.])
    """

    def __init__(
        self,
        initial_parameters: np.ndarray,
        schedule: Optional[LearningRateSchedule] = None,
        projection: Optional[Projection] = None,
    ):
        super().__init__(initial_parameters, projection)
        self._schedule = schedule if schedule is not None else InverseSqrtRate(1.0)

    @property
    def schedule(self) -> LearningRateSchedule:
        """Learning-rate schedule η(t)."""
        return self._schedule

    def _apply(self, gradient: np.ndarray) -> np.ndarray:
        return self._parameters - self._schedule(self._iteration) * gradient


class AdaGrad(Optimizer):
    """Adaptive subgradient method (Duchi et al.), Remark 3's alternative.

        G(t) = G(t−1) + g(t)²  (elementwise)
        w(t+1) ← Π_W[ w(t) − c·g(t) / (δ + √G(t)) ]

    Per-coordinate step shrinkage makes the server robust to occasional
    large (noisy or malicious) gradients, the property Remark 3 calls out.
    """

    def __init__(
        self,
        initial_parameters: np.ndarray,
        constant: float = 0.1,
        damping: float = 1e-8,
        projection: Optional[Projection] = None,
    ):
        super().__init__(initial_parameters, projection)
        if constant <= 0:
            raise ValueError(f"constant must be positive, got {constant}")
        if damping <= 0:
            raise ValueError(f"damping must be positive, got {damping}")
        self._constant = float(constant)
        self._damping = float(damping)
        self._accumulator = np.zeros_like(self._parameters)

    @property
    def constant(self) -> float:
        return self._constant

    @property
    def damping(self) -> float:
        return self._damping

    @property
    def accumulator(self) -> np.ndarray:
        """Accumulated squared gradients G(t) (copy)."""
        return self._accumulator.copy()

    def _apply(self, gradient: np.ndarray) -> np.ndarray:
        self._accumulator += gradient**2
        scale = self._constant / (self._damping + np.sqrt(self._accumulator))
        return self._parameters - scale * gradient

    def restore_state(
        self,
        parameters: np.ndarray,
        iteration: int,
        accumulator: Optional[np.ndarray] = None,
    ) -> None:
        """Also restore the squared-gradient accumulator G(t)."""
        super().restore_state(parameters, iteration)
        if accumulator is not None:
            accumulator = np.array(accumulator, dtype=np.float64, copy=True)
            if accumulator.shape != self._parameters.shape:
                raise ConfigurationError(
                    f"accumulator shape {accumulator.shape} != "
                    f"parameter shape {self._parameters.shape}"
                )
            self._accumulator = accumulator


class AveragedSGD(SGD):
    """SGD with Polyak-Ruppert iterate averaging.

    The optimizer steps exactly like :class:`SGD` but additionally maintains
    the running average of iterates, available as :attr:`averaged_parameters`
    — the optimal-rate estimator for non-smooth stochastic optimization
    (the averaging schemes referenced around Eq. (13)'s convergence
    discussion).
    """

    def __init__(
        self,
        initial_parameters: np.ndarray,
        schedule: Optional[LearningRateSchedule] = None,
        projection: Optional[Projection] = None,
        burn_in: int = 0,
    ):
        super().__init__(initial_parameters, schedule, projection)
        if burn_in < 0:
            raise ValueError(f"burn_in must be non-negative, got {burn_in}")
        self._burn_in = int(burn_in)
        self._average = self._parameters.copy()
        self._averaged_steps = 0

    @property
    def averaged_parameters(self) -> np.ndarray:
        """Polyak average of post-burn-in iterates (copy)."""
        return self._average.copy()

    @property
    def burn_in(self) -> int:
        return self._burn_in

    @property
    def averaged_steps(self) -> int:
        """Number of iterates folded into the average so far."""
        return self._averaged_steps

    def step(self, gradient: np.ndarray) -> np.ndarray:
        updated = super().step(gradient)
        if self._iteration > self._burn_in:
            self._averaged_steps += 1
            self._average += (updated - self._average) / self._averaged_steps
        else:
            self._average = updated.copy()
        return updated

    def restore_state(
        self,
        parameters: np.ndarray,
        iteration: int,
        average: Optional[np.ndarray] = None,
        averaged_steps: int = 0,
    ) -> None:
        """Also restore the Polyak average and its step count."""
        super().restore_state(parameters, iteration)
        if average is not None:
            average = np.array(average, dtype=np.float64, copy=True)
            if average.shape != self._parameters.shape:
                raise ConfigurationError(
                    f"average shape {average.shape} != "
                    f"parameter shape {self._parameters.shape}"
                )
            self._average = average
            self._averaged_steps = int(averaged_steps)
