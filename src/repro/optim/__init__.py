"""Optimizers and learning-rate schedules (Eq. 3, Eq. 5, Remark 3).

The server's default is projected :class:`~repro.optim.sgd.SGD` with the
``c/√t`` schedule; :class:`~repro.optim.sgd.AdaGrad` and
:class:`~repro.optim.sgd.AveragedSGD` are the drop-in alternatives Remark 3
permits without affecting the privacy guarantee (they are post-processing
of already-sanitized gradients).
"""

from repro.optim.projection import (
    BoxProjection,
    IdentityProjection,
    L2BallProjection,
    Projection,
)
from repro.optim.schedules import (
    ConstantRate,
    InverseSqrtRate,
    InverseTimeRate,
    LearningRateSchedule,
    StepDecayRate,
)
from repro.optim.sgd import SGD, AdaGrad, AveragedSGD, Optimizer

__all__ = [
    "AdaGrad",
    "AveragedSGD",
    "BoxProjection",
    "ConstantRate",
    "IdentityProjection",
    "InverseSqrtRate",
    "InverseTimeRate",
    "L2BallProjection",
    "LearningRateSchedule",
    "Optimizer",
    "Projection",
    "SGD",
    "StepDecayRate",
]
