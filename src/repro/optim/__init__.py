"""Optimizers and learning-rate schedules (Eq. 3, Eq. 5, Remark 3).

The server's default is projected :class:`~repro.optim.sgd.SGD` with the
``c/√t`` schedule; :class:`~repro.optim.sgd.AdaGrad` and
:class:`~repro.optim.sgd.AveragedSGD` are the drop-in alternatives Remark 3
permits without affecting the privacy guarantee (they are post-processing
of already-sanitized gradients).
"""

from repro.optim.projection import (
    BoxProjection,
    IdentityProjection,
    L2BallProjection,
    Projection,
)
from repro.optim.schedules import (
    ConstantRate,
    InverseSqrtRate,
    InverseTimeRate,
    LearningRateSchedule,
    StepDecayRate,
)
from repro.optim.sgd import SGD, AdaGrad, AveragedSGD, Optimizer

__all__ = [
    "AdaGrad",
    "AveragedSGD",
    "BoxProjection",
    "ConstantRate",
    "IdentityProjection",
    "InverseSqrtRate",
    "InverseTimeRate",
    "L2BallProjection",
    "LearningRateSchedule",
    "Optimizer",
    "Projection",
    "SGD",
    "StepDecayRate",
    "paper_sgd",
]


def paper_sgd(initial_parameters, learning_rate_constant: float = 1.0,
              projection_radius=None) -> SGD:
    """The paper's server update rule, built one way everywhere.

    Projected SGD (Eq. 3) with the ``η(t) = c/√t`` schedule (Eq. 5) and
    the radius-R ball W (``None`` = unconstrained).  This single factory
    is what :class:`~repro.simulation.simulator.CrowdSimulator`, the
    ``repro-serve`` CLI, and the remote examples all share — the
    bit-parity of an HTTP run against an in-process run rests on both
    sides constructing *this* optimizer, so build it here, not by hand.
    """
    projection = (
        L2BallProjection(projection_radius)
        if projection_radius is not None
        else IdentityProjection()
    )
    return SGD(
        initial_parameters,
        schedule=InverseSqrtRate(learning_rate_constant),
        projection=projection,
    )
