"""Learning-rate schedules η(t).

The paper's default (Eq. 5) is ``η(t) = c/√t``.  Remark 3 allows adaptive
alternatives; we provide the standard family plus an inverse-time schedule
for strongly convex losses.  Iterations are 1-based to match Eq. (5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.utils.validation import check_non_negative, check_positive


class LearningRateSchedule(ABC):
    """Maps a 1-based iteration counter to a step size."""

    @abstractmethod
    def rate(self, iteration: int) -> float:
        """Step size η(t) for iteration ``t ≥ 1``."""

    def __call__(self, iteration: int) -> float:
        if iteration < 1:
            raise ValueError(f"iteration must be >= 1, got {iteration}")
        return self.rate(int(iteration))


class ConstantRate(LearningRateSchedule):
    """η(t) = c."""

    def __init__(self, constant: float):
        self._constant = check_positive(constant, "constant")

    @property
    def constant(self) -> float:
        return self._constant

    def rate(self, iteration: int) -> float:
        return self._constant


class InverseSqrtRate(LearningRateSchedule):
    """The paper's default: η(t) = c/√t (Eq. 5).

    >>> InverseSqrtRate(1.0)(4)
    0.5
    """

    def __init__(self, constant: float):
        self._constant = check_positive(constant, "constant")

    @property
    def constant(self) -> float:
        """The hyperparameter c of Eq. (5)."""
        return self._constant

    def rate(self, iteration: int) -> float:
        return self._constant / iteration**0.5


class InverseTimeRate(LearningRateSchedule):
    """η(t) = c / (1 + decay·t), the classical 1/t schedule.

    With ``decay = λ`` this is the standard rate for λ-strongly-convex
    objectives.
    """

    def __init__(self, constant: float, decay: float = 1.0):
        self._constant = check_positive(constant, "constant")
        self._decay = check_positive(decay, "decay")

    @property
    def constant(self) -> float:
        return self._constant

    @property
    def decay(self) -> float:
        return self._decay

    def rate(self, iteration: int) -> float:
        return self._constant / (1.0 + self._decay * iteration)


class StepDecayRate(LearningRateSchedule):
    """η(t) = c · factor^⌊t/period⌋ — geometric drops every ``period`` steps."""

    def __init__(self, constant: float, factor: float = 0.5, period: int = 1000):
        self._constant = check_positive(constant, "constant")
        if not (0.0 < factor <= 1.0):
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self._factor = float(factor)
        self._period = int(period)

    @property
    def constant(self) -> float:
        return self._constant

    @property
    def factor(self) -> float:
        return self._factor

    @property
    def period(self) -> int:
        return self._period

    def rate(self, iteration: int) -> float:
        return self._constant * self._factor ** (iteration // self._period)
