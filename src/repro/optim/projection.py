"""Projection onto the parameter domain W (Eq. 3).

The paper assumes W is a d-dimensional L2 ball of large radius R and uses
the rescaling projection ``Π_W(w) = min(1, R/‖w‖)·w``.  We also provide a
box projection for completeness (useful for per-coordinate constraints).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_positive


class Projection(ABC):
    """Projection operator onto a convex parameter domain."""

    @abstractmethod
    def __call__(self, parameters: np.ndarray) -> np.ndarray:
        """Return the projection of ``parameters`` onto the domain."""


class IdentityProjection(Projection):
    """No constraint (W = R^d)."""

    def __call__(self, parameters: np.ndarray) -> np.ndarray:
        return np.asarray(parameters, dtype=np.float64)


class L2BallProjection(Projection):
    """``Π_W(w) = min(1, R/‖w‖₂)·w`` — the paper's default domain.

    Examples
    --------
    >>> import numpy as np
    >>> proj = L2BallProjection(radius=1.0)
    >>> float(np.linalg.norm(proj(np.array([3.0, 4.0]))))
    1.0
    """

    def __init__(self, radius: float):
        self._radius = check_positive(radius, "radius")

    @property
    def radius(self) -> float:
        """Ball radius R."""
        return self._radius

    def __call__(self, parameters: np.ndarray) -> np.ndarray:
        parameters = np.asarray(parameters, dtype=np.float64)
        # sqrt(w·w) is exactly what np.linalg.norm computes for a real 1-D
        # vector (same BLAS dot, same sqrt) without the dispatch overhead
        # — this projection runs once per server update.
        norm = math.sqrt(float(np.dot(parameters, parameters)))
        if norm <= self._radius or norm == 0.0:
            return parameters
        return parameters * (self._radius / norm)


class BoxProjection(Projection):
    """Clamp each coordinate to ``[-bound, +bound]``."""

    def __init__(self, bound: float):
        self._bound = check_positive(bound, "bound")

    @property
    def bound(self) -> float:
        """Per-coordinate bound."""
        return self._bound

    def __call__(self, parameters: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(parameters, dtype=np.float64), -self._bound, self._bound)
