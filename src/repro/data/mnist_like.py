"""MNIST-like synthetic digit-recognition dataset (DESIGN.md §3 substitution).

The paper uses MNIST preprocessed with PCA to 50 dimensions and L1
normalization; the multinomial-logistic test error reached by the
centralized batch baseline is ≈ 0.1 (Fig. 4).  This generator matches the
interface of that preprocessed dataset: 10 classes, D = 50, ``‖x‖₁ ≤ 1``,
and a class geometry tuned so that a linear classifier reaches an error
floor near 0.1.

The canonical configuration is ``make_mnist_like()`` — 60 000 train and
10 000 test samples, exactly the paper's sizes.  Smaller sizes are accepted
for tests.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.synthetic import ClassClusterGenerator, ClusterSpec
from repro.utils.rng import RngFactory

#: Feature dimension after the paper's PCA step.
MNIST_DIM = 50
#: Number of digit classes.
MNIST_CLASSES = 10
#: Class-separation knob calibrated so multinomial logistic regression
#: plateaus near the paper's 0.1 test error on this generator.
MNIST_SEPARATION = 2.95

def mnist_like_generator(structure_seed: int = 0) -> ClassClusterGenerator:
    """The fixed class geometry behind all MNIST-like draws."""
    spec = ClusterSpec(
        num_classes=MNIST_CLASSES,
        num_features=MNIST_DIM,
        subclusters_per_class=4,
        class_separation=MNIST_SEPARATION,
        subcluster_spread=0.5,
    )
    return ClassClusterGenerator(spec, structure_seed=structure_seed)


def make_mnist_like(
    num_train: int = 60_000,
    num_test: int = 10_000,
    seed: int = 0,
    structure_seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Return (train, test) MNIST-like datasets.

    ``seed`` varies the sampled points (per trial); ``structure_seed``
    varies the underlying class geometry (kept fixed across trials, like
    the real MNIST distribution is).

    >>> train, test = make_mnist_like(num_train=100, num_test=50)
    >>> train.num_features, train.num_classes
    (50, 10)
    """
    generator = mnist_like_generator(structure_seed)
    rng = RngFactory(seed).generator("mnist-like")
    return generator.sample_train_test(num_train, num_test, rng)
