"""Sample-to-device assignment (Section V-C: M = 1000 devices).

The paper assigns the training pool to devices uniformly at random per
trial ("assignment of samples ... randomized"), giving each device ~60
train samples.  We implement that i.i.d. partition plus two non-i.i.d.
alternatives (Dirichlet label skew and shard-based skew) used by the
heterogeneity ablations — device data in a real crowd is rarely uniform.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_positive_int


def _split_by_assignment(dataset: Dataset, assignment: np.ndarray, num_devices: int
                         ) -> list[Dataset]:
    return [dataset.subset(np.where(assignment == m)[0]) for m in range(num_devices)]


def iid_partition(
    dataset: Dataset, num_devices: int, rng: np.random.Generator
) -> list[Dataset]:
    """Uniformly random assignment of samples to devices (paper default).

    Every device receives ``len(dataset) // num_devices`` samples (±1), in
    random order.

    >>> import numpy as np
    >>> ds = Dataset(np.zeros((10, 2)), np.zeros(10, dtype=int), num_classes=2)
    >>> parts = iid_partition(ds, 5, np.random.default_rng(0))
    >>> [len(p) for p in parts]
    [2, 2, 2, 2, 2]
    """
    num_devices = check_positive_int(num_devices, "num_devices")
    rng = as_generator(rng)
    order = rng.permutation(len(dataset))
    assignment = np.empty(len(dataset), dtype=np.int64)
    assignment[order] = np.arange(len(dataset)) % num_devices
    return _split_by_assignment(dataset, assignment, num_devices)


def dirichlet_partition(
    dataset: Dataset,
    num_devices: int,
    rng: np.random.Generator,
    alpha: float = 0.5,
) -> list[Dataset]:
    """Label-skewed partition: per-class device shares ~ Dirichlet(α).

    Small α concentrates each class on few devices (strong heterogeneity);
    α → ∞ recovers the i.i.d. partition.
    """
    num_devices = check_positive_int(num_devices, "num_devices")
    check_positive(alpha, "alpha")
    rng = as_generator(rng)
    assignment = np.empty(len(dataset), dtype=np.int64)
    for cls in range(dataset.num_classes):
        indices = np.where(dataset.labels == cls)[0]
        if indices.size == 0:
            continue
        rng.shuffle(indices)
        shares = rng.dirichlet(np.full(num_devices, alpha))
        counts = np.floor(shares * indices.size).astype(np.int64)
        # Distribute the rounding remainder to the largest shares.
        remainder = indices.size - counts.sum()
        if remainder > 0:
            top = np.argsort(shares)[::-1][:remainder]
            counts[top] += 1
        boundaries = np.cumsum(counts)[:-1]
        for device, chunk in enumerate(np.split(indices, boundaries)):
            assignment[chunk] = device
    return _split_by_assignment(dataset, assignment, num_devices)


def shard_partition(
    dataset: Dataset,
    num_devices: int,
    rng: np.random.Generator,
    shards_per_device: int = 2,
) -> list[Dataset]:
    """Classic shard skew: sort by label, cut into shards, deal per device.

    With ``shards_per_device = 2`` most devices see only ~2 classes — the
    pathological non-i.i.d. regime.
    """
    num_devices = check_positive_int(num_devices, "num_devices")
    shards_per_device = check_positive_int(shards_per_device, "shards_per_device")
    rng = as_generator(rng)
    num_shards = num_devices * shards_per_device
    if num_shards > len(dataset):
        raise ConfigurationError(
            f"need at least one sample per shard: {num_shards} shards, "
            f"{len(dataset)} samples"
        )
    by_label = np.argsort(dataset.labels, kind="stable")
    shards = np.array_split(by_label, num_shards)
    shard_order = rng.permutation(num_shards)
    assignment = np.empty(len(dataset), dtype=np.int64)
    for rank, shard_index in enumerate(shard_order):
        assignment[shards[shard_index]] = rank % num_devices
    return _split_by_assignment(dataset, assignment, num_devices)
