"""In-memory labelled dataset container used across the library."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_labels, check_matrix


@dataclass(frozen=True)
class Dataset:
    """A classification dataset: ``(n, D)`` features, ``(n,)`` int labels.

    Feature rows are expected (and enforced by the library's preprocessing)
    to satisfy ``‖x‖₁ ≤ 1``, the assumption behind every sensitivity bound.

    Examples
    --------
    >>> import numpy as np
    >>> ds = Dataset(np.zeros((4, 2)), np.array([0, 1, 0, 1]), num_classes=2)
    >>> len(ds)
    4
    """

    features: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self):
        features = check_matrix(self.features, "features")
        labels = check_labels(self.labels, "labels", self.num_classes)
        if features.shape[0] != labels.shape[0]:
            raise ConfigurationError(
                f"features rows ({features.shape[0]}) != labels length ({labels.shape[0]})"
            )
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        """Feature dimension D."""
        return self.features.shape[1]

    @property
    def max_l1_norm(self) -> float:
        """Largest row L1 norm (should be ≤ 1 after preprocessing)."""
        if len(self) == 0:
            return 0.0
        return float(np.max(np.sum(np.abs(self.features), axis=1)))

    def class_counts(self) -> np.ndarray:
        """Per-class sample counts (length ``num_classes``)."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return the dataset restricted to ``indices`` (copying)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(self.features[indices].copy(), self.labels[indices].copy(),
                       self.num_classes)

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """Return a row-permuted copy."""
        order = rng.permutation(len(self))
        return self.subset(order)

    def samples(self) -> Iterator[Tuple[np.ndarray, int]]:
        """Iterate ``(x, y)`` pairs in order."""
        for i in range(len(self)):
            yield self.features[i], int(self.labels[i])


def train_test_split(
    dataset: Dataset,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[Dataset, Dataset]:
    """Random split into train and test subsets.

    >>> import numpy as np
    >>> ds = Dataset(np.zeros((10, 2)), np.zeros(10, dtype=int), num_classes=2)
    >>> train, test = train_test_split(ds, 0.3, np.random.default_rng(0))
    >>> len(train), len(test)
    (7, 3)
    """
    if not (0.0 < test_fraction < 1.0):
        raise ConfigurationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    order = rng.permutation(len(dataset))
    num_test = int(round(len(dataset) * test_fraction))
    num_test = min(max(num_test, 1), len(dataset) - 1)
    return dataset.subset(order[num_test:]), dataset.subset(order[:num_test])


def concatenate(datasets: list[Dataset]) -> Dataset:
    """Stack several datasets (same D and C) into one."""
    if not datasets:
        raise ConfigurationError("cannot concatenate an empty list of datasets")
    num_classes = datasets[0].num_classes
    num_features = datasets[0].num_features
    for ds in datasets[1:]:
        if ds.num_classes != num_classes or ds.num_features != num_features:
            raise ConfigurationError("datasets must agree on num_classes and num_features")
    return Dataset(
        np.concatenate([ds.features for ds in datasets], axis=0),
        np.concatenate([ds.labels for ds in datasets], axis=0),
        num_classes,
    )
