"""Class-structured synthetic feature generator.

This is the offline stand-in for the paper's image datasets (see DESIGN.md
§3).  The generator produces what the paper's preprocessing produces:
PCA-compressed, L1-normalized feature vectors with class structure.  Each
class owns several Gaussian "style" subclusters (handwriting styles for
MNIST, object poses for CIFAR); a sample draws a subcluster, adds isotropic
within-cluster scatter, and is L1-normalized, guaranteeing ``‖x‖₁ ≤ 1``.

The single knob that matters for the figures is ``class_separation`` — the
ratio of between-class distance to within-class scatter — which controls
the achievable (Bayes-like) error floor of a linear classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.numerics import l1_normalize
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_positive,
    check_positive_int,
)


@dataclass(frozen=True)
class ClusterSpec:
    """Geometry of the synthetic class clusters.

    Attributes
    ----------
    num_classes:
        Number of classes C.
    num_features:
        Feature dimension D (post-"PCA").
    subclusters_per_class:
        Style prototypes per class.
    class_separation:
        Distance scale of class means relative to unit within-class scatter.
        Larger = more separable = lower achievable error.
    subcluster_spread:
        Distance of subcluster prototypes from their class mean.
    """

    num_classes: int
    num_features: int
    subclusters_per_class: int = 3
    class_separation: float = 3.0
    subcluster_spread: float = 0.8

    def __post_init__(self):
        check_positive_int(self.num_classes, "num_classes")
        check_positive_int(self.num_features, "num_features")
        check_positive_int(self.subclusters_per_class, "subclusters_per_class")
        check_positive(self.class_separation, "class_separation")
        check_positive(self.subcluster_spread, "subcluster_spread")


class ClassClusterGenerator:
    """Samples labelled feature vectors from a fixed cluster geometry.

    The geometry (class means and subcluster prototypes) is drawn once from
    ``structure_seed`` so that train and test sets — and all trials of an
    experiment — share the same underlying "world", while the per-sample
    randomness varies per call.

    Examples
    --------
    >>> spec = ClusterSpec(num_classes=3, num_features=8)
    >>> gen = ClassClusterGenerator(spec, structure_seed=0)
    >>> ds = gen.sample(100, rng=np.random.default_rng(1))
    >>> len(ds), ds.num_features
    (100, 8)
    >>> ds.max_l1_norm <= 1.0 + 1e-9
    True
    """

    def __init__(self, spec: ClusterSpec, structure_seed: int = 0):
        self._spec = spec
        structure_rng = np.random.default_rng(structure_seed)
        d, c, k = spec.num_features, spec.num_classes, spec.subclusters_per_class
        # Class means: random directions scaled by the separation knob.
        raw = structure_rng.normal(size=(c, d))
        raw /= np.linalg.norm(raw, axis=1, keepdims=True)
        self._class_means = raw * spec.class_separation
        # Subcluster prototypes sit at a fixed radius (= spread) around
        # their class mean; normalizing the offset keeps the geometry
        # dimension-independent, so class_separation alone controls the
        # achievable error of a linear classifier.
        offsets = structure_rng.normal(size=(c, k, d))
        offsets /= np.linalg.norm(offsets, axis=2, keepdims=True)
        offsets *= spec.subcluster_spread * spec.class_separation
        self._prototypes = self._class_means[:, None, :] + offsets

    @property
    def spec(self) -> ClusterSpec:
        return self._spec

    @property
    def class_means(self) -> np.ndarray:
        """``(C, D)`` class mean matrix (copy)."""
        return self._class_means.copy()

    def sample(
        self,
        num_samples: int,
        rng: np.random.Generator,
        *,
        class_distribution: np.ndarray | None = None,
    ) -> Dataset:
        """Draw ``num_samples`` i.i.d. labelled samples.

        ``class_distribution`` (length C, summing to 1) overrides the
        uniform class prior — used to emulate non-uniform label priors on
        individual devices.
        """
        num_samples = check_positive_int(num_samples, "num_samples")
        rng = as_generator(rng)
        spec = self._spec
        if class_distribution is None:
            labels = rng.integers(0, spec.num_classes, size=num_samples)
        else:
            probs = np.asarray(class_distribution, dtype=np.float64)
            if probs.shape != (spec.num_classes,) or not np.isclose(probs.sum(), 1.0):
                raise ValueError("class_distribution must be a length-C probability vector")
            labels = rng.choice(spec.num_classes, size=num_samples, p=probs)
        styles = rng.integers(0, spec.subclusters_per_class, size=num_samples)
        centers = self._prototypes[labels, styles]
        noise = rng.normal(size=(num_samples, spec.num_features))
        features = l1_normalize(centers + noise)
        return Dataset(features, labels.astype(np.int64), spec.num_classes)

    def sample_train_test(
        self,
        num_train: int,
        num_test: int,
        rng: np.random.Generator,
    ) -> tuple[Dataset, Dataset]:
        """Draw disjoint train and test sets from the same geometry."""
        rng = as_generator(rng)
        return self.sample(num_train, rng), self.sample(num_test, rng)
