"""Datasets and data plumbing: synthetic generators, partitioning, pipeline.

The generators are the offline substitutes for the paper's datasets (see
DESIGN.md §3): :func:`make_mnist_like` (digits, Figs. 4-6),
:func:`make_cifar_like` (objects, Figs. 7-9), and
:mod:`repro.data.activity` (the Section V-B phone pipeline, Fig. 3).
"""

from repro.data.activity import (
    ACTIVITY_NAMES,
    IN_VEHICLE,
    NUM_ACTIVITIES,
    ON_FOOT,
    STILL,
    ActivityConfig,
    ActivityTraceGenerator,
    collect_on_label_change,
    make_activity_stream,
)
from repro.data.cifar_like import (
    CIFAR_CLASSES,
    CIFAR_DIM,
    cifar_like_generator,
    make_cifar_like,
)
from repro.data.dataset import Dataset, concatenate, train_test_split
from repro.data.mnist_like import (
    MNIST_CLASSES,
    MNIST_DIM,
    make_mnist_like,
    mnist_like_generator,
)
from repro.data.partition import dirichlet_partition, iid_partition, shard_partition
from repro.data.preprocessing import PcaL1Pipeline, preprocess_train_test
from repro.data.synthetic import ClassClusterGenerator, ClusterSpec
from repro.data.thermostat import (
    THERMOSTAT_DIM,
    make_thermostat_data,
    make_thermostat_split,
)

__all__ = [
    "ACTIVITY_NAMES",
    "ActivityConfig",
    "ActivityTraceGenerator",
    "CIFAR_CLASSES",
    "CIFAR_DIM",
    "ClassClusterGenerator",
    "ClusterSpec",
    "Dataset",
    "IN_VEHICLE",
    "MNIST_CLASSES",
    "MNIST_DIM",
    "NUM_ACTIVITIES",
    "ON_FOOT",
    "PcaL1Pipeline",
    "STILL",
    "THERMOSTAT_DIM",
    "make_thermostat_data",
    "make_thermostat_split",
    "cifar_like_generator",
    "collect_on_label_change",
    "concatenate",
    "dirichlet_partition",
    "iid_partition",
    "make_activity_stream",
    "make_cifar_like",
    "make_mnist_like",
    "mnist_like_generator",
    "preprocess_train_test",
    "shard_partition",
    "train_test_split",
]
