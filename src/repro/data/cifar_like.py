"""CIFAR-like synthetic object-recognition dataset (DESIGN.md §3).

The paper pushes CIFAR-10 images through an ImageNet-trained CNN, takes the
4096-d last-hidden-layer activations, PCA-compresses them to 100 dims, and
L1-normalizes.  The resulting task is harder than MNIST: the centralized
batch error floor is ≈ 0.3 (Fig. 7).  This generator matches D = 100,
C = 10, ``‖x‖₁ ≤ 1``, with heavier class overlap (more style subclusters,
smaller separation) so a linear classifier plateaus near 0.3.

Canonical sizes follow the paper: 50 000 train / 10 000 test.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.synthetic import ClassClusterGenerator, ClusterSpec
from repro.utils.rng import RngFactory

#: Feature dimension after the paper's PCA step on CNN features.
CIFAR_DIM = 100
#: Number of object classes.
CIFAR_CLASSES = 10
#: Separation calibrated for a ≈0.3 linear-classifier error floor.
CIFAR_SEPARATION = 2.1

def cifar_like_generator(structure_seed: int = 0) -> ClassClusterGenerator:
    """The fixed class geometry behind all CIFAR-like draws."""
    spec = ClusterSpec(
        num_classes=CIFAR_CLASSES,
        num_features=CIFAR_DIM,
        subclusters_per_class=6,
        class_separation=CIFAR_SEPARATION,
        subcluster_spread=0.5,
    )
    return ClassClusterGenerator(spec, structure_seed=structure_seed)


def make_cifar_like(
    num_train: int = 50_000,
    num_test: int = 10_000,
    seed: int = 0,
    structure_seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Return (train, test) CIFAR-like datasets.

    >>> train, test = make_cifar_like(num_train=100, num_test=50)
    >>> train.num_features, train.num_classes
    (100, 10)
    """
    generator = cifar_like_generator(structure_seed)
    rng = RngFactory(seed).generator("cifar-like")
    return generator.sample_train_test(num_train, num_test, rng)
