"""Preprocessing pipeline of Section V-C: PCA compression + L1 normalization.

The sensitivity analysis (Appendix A) requires ``‖x‖₁ ≤ 1``; the paper
achieves this by L1-normalizing after PCA.  :class:`PcaL1Pipeline` fits PCA
on training data only, then applies projection + normalization to any
split, so test data never leaks into the fitted transform.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.features.pca import PCA
from repro.utils.exceptions import ConfigurationError
from repro.utils.numerics import l1_normalize
from repro.utils.validation import check_positive_int


class PcaL1Pipeline:
    """PCA to ``num_components`` dimensions followed by L1 normalization.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> raw_train = Dataset(rng.normal(size=(200, 20)),
    ...                     rng.integers(0, 3, 200), num_classes=3)
    >>> pipeline = PcaL1Pipeline(num_components=5).fit(raw_train)
    >>> out = pipeline.transform(raw_train)
    >>> out.num_features, round(out.max_l1_norm, 6) <= 1.0
    (5, True)
    """

    def __init__(self, num_components: int):
        self._num_components = check_positive_int(num_components, "num_components")
        self._pca: Optional[PCA] = None

    @property
    def num_components(self) -> int:
        return self._num_components

    @property
    def is_fitted(self) -> bool:
        return self._pca is not None

    def fit(self, dataset: Dataset) -> "PcaL1Pipeline":
        """Fit the PCA on a training dataset's features."""
        self._pca = PCA(self._num_components).fit(dataset.features)
        return self

    def transform(self, dataset: Dataset) -> Dataset:
        """Project and L1-normalize ``dataset``; labels pass through."""
        if self._pca is None:
            raise ConfigurationError("pipeline must be fitted before transform")
        projected = self._pca.transform(dataset.features)
        return Dataset(l1_normalize(projected), dataset.labels.copy(), dataset.num_classes)

    def fit_transform(self, dataset: Dataset) -> Dataset:
        """Fit on ``dataset`` and return its transformation."""
        return self.fit(dataset).transform(dataset)


def preprocess_train_test(
    train: Dataset, test: Dataset, num_components: int
) -> tuple[Dataset, Dataset]:
    """Fit the pipeline on ``train`` and transform both splits.

    The single entry point mirroring the paper's "preprocessed with PCA to
    have a reduced dimension of D, and L1 normalized".
    """
    pipeline = PcaL1Pipeline(num_components).fit(train)
    return pipeline.transform(train), pipeline.transform(test)
