"""Synthetic smartphone activity-recognition data (Section V-B substitute).

The paper's demonstration samples triaxial accelerometers at 20 Hz on seven
Android phones, computes acceleration magnitudes over 3.2 s sliding windows,
takes 64-bin FFT features, and learns a 3-class ("Still" / "On Foot" /
"In Vehicle") logistic-regression classifier online.  Ground-truth labels
come from Google's activity-recognition service, and a sample is collected
only when its label *changes* from the previous value (to decorrelate
samples).

We reproduce that entire pipeline on a physics-inspired synthetic
accelerometer.  Each activity regime has a distinct spectral signature:

* **Still** — gravity plus small sensor noise (flat, tiny spectrum);
* **On Foot** — a ≈2 Hz step oscillation with harmonics riding on gravity
  (strong low-bin peaks);
* **In Vehicle** — broadband engine/road vibration plus low-frequency sway
  (spread-out mid-spectrum energy).

A semi-Markov regime process with exponential dwell times produces the
label stream; the trace generator synthesizes the matching 20 Hz triaxial
signal.  Downstream, :func:`repro.features.fft.fft_magnitude_features`
— the *same* code the real pipeline would run — turns it into samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.features.fft import acceleration_magnitude, fft_magnitude_features
from repro.features.windows import window_majority_labels
from repro.utils.exceptions import ConfigurationError
from repro.utils.numerics import l1_normalize
from repro.utils.rng import as_generator

#: Activity class indices (match the paper's three activities).
STILL, ON_FOOT, IN_VEHICLE = 0, 1, 2
ACTIVITY_NAMES = ("Still", "On Foot", "In Vehicle")
NUM_ACTIVITIES = 3

GRAVITY = 9.81


@dataclass(frozen=True)
class ActivityConfig:
    """Parameters of the synthetic accelerometer pipeline.

    Defaults mirror Section V-B: 20 Hz sampling, 64-sample (3.2 s) windows,
    64 FFT bins.
    """

    sample_rate_hz: float = 20.0
    window_size: int = 64
    num_fft_bins: int = 64
    #: Mean dwell time (seconds) in each activity regime.
    mean_dwell_s: float = 90.0
    #: Step frequency for walking (Hz) and its jitter.
    step_frequency_hz: float = 2.0
    step_amplitude: float = 2.5
    #: Vehicle vibration amplitude.
    vehicle_amplitude: float = 0.8
    sensor_noise: float = 0.05

    def __post_init__(self):
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        if self.window_size <= 1:
            raise ConfigurationError("window_size must exceed 1")
        if self.num_fft_bins <= 0:
            raise ConfigurationError("num_fft_bins must be positive")
        if self.mean_dwell_s <= 0:
            raise ConfigurationError("mean_dwell_s must be positive")


class ActivityTraceGenerator:
    """Synthesizes labelled triaxial accelerometer traces.

    Examples
    --------
    >>> import numpy as np
    >>> gen = ActivityTraceGenerator()
    >>> signal, labels = gen.generate_trace(10.0, np.random.default_rng(0))
    >>> signal.shape[1], signal.shape[0] == labels.shape[0]
    (3, True)
    """

    def __init__(self, config: ActivityConfig | None = None):
        self._config = config if config is not None else ActivityConfig()

    @property
    def config(self) -> ActivityConfig:
        return self._config

    def _regime_sequence(self, num_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Semi-Markov label stream: exponential dwell, uniform next regime."""
        cfg = self._config
        labels = np.empty(num_samples, dtype=np.int64)
        position = 0
        current = int(rng.integers(0, NUM_ACTIVITIES))
        while position < num_samples:
            dwell_s = max(float(rng.exponential(cfg.mean_dwell_s)), 1.0 / cfg.sample_rate_hz)
            dwell = max(int(dwell_s * cfg.sample_rate_hz), 1)
            end = min(position + dwell, num_samples)
            labels[position:end] = current
            position = end
            # Jump to one of the other regimes.
            offset = int(rng.integers(1, NUM_ACTIVITIES))
            current = (current + offset) % NUM_ACTIVITIES
        return labels

    @staticmethod
    def _segments(labels: np.ndarray):
        """Yield ``(start, end, label)`` for maximal constant-label runs."""
        n = labels.shape[0]
        start = 0
        for i in range(1, n + 1):
            if i == n or labels[i] != labels[start]:
                yield start, i, int(labels[start])
                start = i

    def _synthesize(self, labels: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Render a triaxial signal matching the per-sample label stream.

        Regime parameters (step frequency, vehicle tones) are re-drawn per
        contiguous segment: two walks in the same trace have different
        cadences, exactly as two users (or two outings) would.
        """
        cfg = self._config
        n = labels.shape[0]
        t = np.arange(n) / cfg.sample_rate_hz
        signal = np.zeros((n, 3))
        signal[:, 2] = GRAVITY  # gravity on the z axis
        signal += rng.normal(0.0, cfg.sensor_noise, size=(n, 3))

        for start, end, label in self._segments(labels):
            seg_t = t[start:end]
            count = end - start
            if label == ON_FOOT:
                freq = cfg.step_frequency_hz * (1.0 + 0.15 * rng.normal())
                freq = max(freq, 0.8)
                phase = rng.uniform(0, 2 * np.pi)
                fundamental = np.sin(2 * np.pi * freq * seg_t + phase)
                harmonic = 0.4 * np.sin(2 * np.pi * 2 * freq * seg_t + 2 * phase)
                signal[start:end, 2] += cfg.step_amplitude * (fundamental + harmonic)
                signal[start:end, 0] += 0.3 * cfg.step_amplitude * np.sin(
                    2 * np.pi * 0.5 * freq * seg_t
                )
                signal[start:end] += rng.normal(0.0, 0.4, size=(count, 3))
            elif label == IN_VEHICLE:
                # Broadband vibration: several mid-frequency tones + noise.
                vib = np.zeros(count)
                for _ in range(4):
                    f = rng.uniform(3.0, 9.0)
                    vib += rng.uniform(0.3, 1.0) * np.sin(
                        2 * np.pi * f * seg_t + rng.uniform(0, 2 * np.pi)
                    )
                signal[start:end, 2] += vib * (cfg.vehicle_amplitude / 2.0)
                signal[start:end, 1] += 0.5 * cfg.vehicle_amplitude * np.sin(
                    2 * np.pi * 0.3 * seg_t + rng.uniform(0, 2 * np.pi)
                )
                signal[start:end] += rng.normal(0.0, 0.25, size=(count, 3))
        return signal

    def generate_trace(
        self, duration_s: float, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(signal (n, 3), labels (n,))`` for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration_s must be positive, got {duration_s}")
        rng = as_generator(rng)
        num_samples = int(duration_s * self._config.sample_rate_hz)
        if num_samples < 1:
            raise ConfigurationError("duration too short for one sample")
        labels = self._regime_sequence(num_samples, rng)
        signal = self._synthesize(labels, rng)
        return signal, labels

    def windowed_features(
        self, duration_s: float, rng: np.random.Generator
    ) -> Dataset:
        """Run the full pipeline: trace → |a| → windows → FFT → L1 norm."""
        cfg = self._config
        signal, labels = self.generate_trace(duration_s, rng)
        magnitudes = acceleration_magnitude(signal)
        features = fft_magnitude_features(
            magnitudes,
            window_size=cfg.window_size,
            hop=cfg.window_size,
            num_bins=cfg.num_fft_bins,
        )
        window_labels = window_majority_labels(labels, cfg.window_size, cfg.window_size)
        return Dataset(l1_normalize(features), window_labels, NUM_ACTIVITIES)


def collect_on_label_change(dataset: Dataset) -> Dataset:
    """Keep only samples whose label differs from the previous sample's.

    Reproduces Section V-B's decorrelation rule ("we collect a sample only
    when its label has changed from its previous value"), which lowers the
    effective sampling rate from 1/30 Hz to about 1/352 Hz on the phones.
    The first sample is always kept.
    """
    if len(dataset) == 0:
        return dataset
    labels = dataset.labels
    keep = np.ones(len(dataset), dtype=bool)
    keep[1:] = labels[1:] != labels[:-1]
    return dataset.subset(np.where(keep)[0])


def make_activity_stream(
    num_samples: int,
    rng: np.random.Generator,
    config: ActivityConfig | None = None,
    collect_on_change: bool = True,
) -> Dataset:
    """Generate at least ``num_samples`` device samples via the full pipeline.

    Synthesizes trace in growing chunks until enough post-filter samples
    exist, then truncates — the stream a single simulated phone feeds into
    Device Routine 1.

    >>> import numpy as np
    >>> ds = make_activity_stream(20, np.random.default_rng(0))
    >>> len(ds)
    20
    """
    if num_samples <= 0:
        raise ConfigurationError(f"num_samples must be positive, got {num_samples}")
    rng = as_generator(rng)
    generator = ActivityTraceGenerator(config)
    cfg = generator.config
    from repro.data.dataset import concatenate

    collected: list[Dataset] = []
    # Expected windows per regime switch ≈ dwell/window; size chunks to
    # need only a few rounds.
    chunk_s = max(num_samples * cfg.mean_dwell_s / 2.0, 120.0)
    guard = 0
    while True:
        collected.append(generator.windowed_features(chunk_s, rng))
        # Filter the concatenated stream so chunk boundaries cannot leave
        # consecutive duplicate labels behind.
        full = concatenate(collected)
        if collect_on_change:
            full = collect_on_label_change(full)
        if len(full) >= num_samples:
            return full.subset(np.arange(num_samples))
        guard += 1
        if guard > 200:
            raise RuntimeError("activity stream generation failed to accumulate samples")
