"""Smart-thermostat regression data (the intro's motivating example).

Section I motivates "learning optimal settings of room temperatures for
smart thermostats" — a *regression* task the framework supports through
:class:`~repro.models.ridge.RidgeRegression`.  This generator synthesizes
that workload: each sample is a feature vector of home-context signals
(time-of-day harmonics, occupancy, outdoor temperature, recent activity)
and the target is the occupant's preferred temperature offset from a
nominal setpoint, in normalized units.

The underlying preference function is linear in the features with mild
heteroscedastic noise, so the task is learnable by the ridge model while
remaining non-trivial; features are L1-normalized to keep the
sensitivity precondition ``‖x‖₁ ≤ 1``, and targets are scaled into
``[-1, 1]`` so the default residual clipping is rarely active.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.numerics import l1_normalize
from repro.utils.rng import RngFactory, as_generator

#: Feature layout: [sin(t), cos(t), sin(2t), cos(2t), occupancy,
#: outdoor_temp, activity, weekend]
THERMOSTAT_DIM = 8


@dataclass(frozen=True)
class ThermostatSample:
    """One labelled reading: context features and preferred offset."""

    features: np.ndarray
    target: float


def _preference_weights(structure_rng: np.random.Generator) -> np.ndarray:
    """The household's latent linear preference function."""
    base = np.array([0.35, -0.2, 0.1, -0.05, 0.45, -0.5, 0.3, 0.15])
    jitter = structure_rng.normal(0.0, 0.05, size=THERMOSTAT_DIM)
    return base + jitter


def make_thermostat_data(
    num_samples: int,
    seed: int = 0,
    structure_seed: int = 0,
    noise: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(features (n, 8), targets (n,))`` thermostat readings.

    ``structure_seed`` fixes the household's preference function (shared
    across devices in one deployment); ``seed`` varies the observations.

    >>> x, y = make_thermostat_data(100)
    >>> x.shape, y.shape
    ((100, 8), (100,))
    >>> bool(np.all(np.sum(np.abs(x), axis=1) <= 1.0 + 1e-9))
    True
    """
    if num_samples <= 0:
        raise ConfigurationError(f"num_samples must be positive, got {num_samples}")
    if noise < 0:
        raise ConfigurationError(f"noise must be non-negative, got {noise}")
    structure_rng = np.random.default_rng(structure_seed)
    weights = _preference_weights(structure_rng)
    rng = RngFactory(seed).generator("thermostat")

    hour = rng.uniform(0.0, 24.0, size=num_samples)
    phase = 2 * np.pi * hour / 24.0
    occupancy = (rng.random(num_samples) < 0.6).astype(np.float64)
    outdoor = rng.normal(0.0, 1.0, size=num_samples)  # normalized °C anomaly
    activity = np.clip(rng.gamma(2.0, 0.25, size=num_samples), 0.0, 2.0)
    weekend = (rng.random(num_samples) < 2.0 / 7.0).astype(np.float64)

    raw = np.column_stack(
        [
            np.sin(phase),
            np.cos(phase),
            np.sin(2 * phase),
            np.cos(2 * phase),
            occupancy,
            outdoor,
            activity,
            weekend,
        ]
    )
    features = l1_normalize(raw)
    clean = features @ weights
    # Heteroscedastic noise: preferences are fuzzier when nobody is home.
    scale = noise * (1.0 + 0.5 * (1.0 - occupancy))
    targets = clean + rng.normal(0.0, 1.0, size=num_samples) * scale
    targets = np.clip(targets, -1.0, 1.0)
    return features, targets


def make_thermostat_split(
    num_train: int = 4000,
    num_test: int = 1000,
    seed: int = 0,
    structure_seed: int = 0,
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """Train/test thermostat splits sharing one preference function."""
    train = make_thermostat_data(num_train, seed=seed,
                                 structure_seed=structure_seed)
    test = make_thermostat_data(num_test, seed=seed + 1,
                                structure_seed=structure_seed)
    return train, test
