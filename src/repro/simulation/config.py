"""Configuration for the simulated crowd environment (Section V-C)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.adaptive import BatchPolicy
from repro.network.latency import LinkDelays
from repro.network.outage import NoOutage, OutageModel
from repro.simulation.churn import ChurnSchedule
from repro.utils.exceptions import ConfigurationError

if TYPE_CHECKING:
    from repro.gateway.topology import TwoTierTopology


@dataclass(frozen=True)
class SimulationConfig:
    """All knobs of one simulated Crowd-ML run.

    Attributes
    ----------
    num_devices:
        M (the paper uses 1000 for the image experiments, 7 for activity).
    batch_size:
        Minibatch size b.
    epsilon:
        Total per-sample privacy level ε (``math.inf`` = the ε⁻¹ = 0 arms).
    learning_rate_constant:
        c in η(t) = c/√t (Eq. 5).
    l2_regularization:
        λ of Eq. (2).
    link_delays:
        The τ_req/τ_co/τ_ci distributions (``LinkDelays.zero()`` for the
        no-delay arms).
    sampling_rate:
        F_s — samples generated per time unit per device.
    num_passes:
        Passes through each device's local data (the paper uses up to 5).
    holdout_fraction:
        Remark 2 held-out fraction on each device.
    buffer_factor:
        Buffer capacity B = buffer_factor × b.
    num_snapshots:
        How many (iteration, test-error) points to record.
    projection_radius:
        Radius R of the parameter ball W (``None`` = unconstrained).
    outage:
        Communication failure model (reliable by default).
    max_iterations:
        Optional hard cap on server updates (defaults to "all data").
    target_error:
        Optional ρ stopping threshold.
    churn:
        Optional :class:`~repro.simulation.churn.ChurnSchedule`; devices
        sense only inside their activity windows (Fig. 2's join/leave).
    batch_policy_factory:
        Optional zero-arg callable building a fresh
        :class:`~repro.core.adaptive.BatchPolicy` per device — the
        §IV-B3 adaptive-minibatch refinement.  ``None`` keeps b fixed.
    transport:
        How protocol messages travel.  ``"auto"`` (default) picks
        :class:`~repro.network.transport.DirectTransport` — fused
        synchronous rounds, no per-message heap events — whenever every
        link delay is exactly zero and the network is reliable, and the
        event-driven :class:`~repro.network.transport.SimulatedTransport`
        otherwise.  ``"direct"``/``"simulated"`` force a choice
        (``"direct"`` raises unless the config is zero-delay and
        outage-free).  The two transports produce bit-identical
        :class:`~repro.simulation.trace.RunTrace`\\ s on every config
        where both are valid.  ``"http"`` drives a **live**
        :class:`~repro.serve.service.CrowdService` at ``server_url``
        through :class:`~repro.serve.remote.HttpTransport`: the same
        fused-round schedule as ``"direct"`` (and, for a server hosting
        the matching spec, a bit-identical trace), with the server side
        in another process.  Never auto-selected.  Server-owned knobs
        (``learning_rate_constant``, ``projection_radius``,
        ``max_iterations``, ``target_error``) must stay at their
        defaults here — configure them on the server (``repro-serve``)
        instead; non-default values are rejected rather than silently
        ignored.
    server_url:
        Base URL of the remote service (``transport="http"`` only),
        e.g. ``"http://127.0.0.1:8900"``.
    http_retries:
        ``transport="http"`` only: extra attempts the HTTP client makes
        on transient failures (connection refused/reset, 5xx), with
        exponential backoff — how a run rides out a server bounce.
        Default 0 = fail fast, the historical behaviour.
    coalesce_checkins:
        Event-driven transport only: drain contiguous same-timestamp
        check-in deliveries as one
        :meth:`~repro.core.server_core.ServerCore.handle_checkins`
        batch instead of one event dispatch each.  Bit-identical traces
        either way (the recorded-trace suite gates both); the knob
        exists for A/B measurement.
    snapshot_subsample:
        Opt-in cap on the number of test examples used per error
        snapshot (drawn once per run from a dedicated RNG stream).
        ``None`` (default) evaluates the full test set.  Setting it
        changes snapshot values — it is meant for the scalability
        ablations, where each of the ~60 snapshots otherwise runs a full
        test-set forward pass.
    gateways:
        Optional :class:`~repro.gateway.topology.TwoTierTopology`.  When
        set, devices reach the server through batch-aggregating edge
        gateways (:class:`~repro.gateway.transport.GatewayTransport`):
        every per-link property — device↔gateway and gateway↔server
        delays, outages, stall windows — lives in the topology's
        gateway profiles, so ``link_delays`` and ``outage`` must stay at
        their reliable zero defaults (rejected otherwise, to rule out
        double-modelling the same hop).  Only valid with
        ``transport="auto"`` or ``"simulated"``: the tier is inherently
        event-driven, and the synchronous ``"direct"``/``"http"`` paths
        cannot host it.  A *transparent* topology (pass-through flush,
        zero delays, no outages/stalls) is bit-identical to running
        without gateways — the recorded-trace suite gates this.
    """

    num_devices: int
    batch_size: int = 1
    epsilon: float = math.inf
    learning_rate_constant: float = 1.0
    l2_regularization: float = 0.0
    link_delays: LinkDelays = field(default_factory=LinkDelays.zero)
    sampling_rate: float = 1.0
    num_passes: int = 1
    holdout_fraction: float = 0.0
    buffer_factor: int = 50
    num_snapshots: int = 60
    projection_radius: Optional[float] = 100.0
    outage: OutageModel = field(default_factory=NoOutage)
    max_iterations: Optional[int] = None
    target_error: Optional[float] = None
    churn: Optional["ChurnSchedule"] = None
    batch_policy_factory: Optional[Callable[[], "BatchPolicy"]] = None
    transport: str = "auto"
    server_url: Optional[str] = None
    http_retries: int = 0
    coalesce_checkins: bool = True
    snapshot_subsample: Optional[int] = None
    gateways: Optional["TwoTierTopology"] = None

    def __post_init__(self):
        if self.transport not in ("auto", "direct", "simulated", "http"):
            raise ConfigurationError(
                f"transport must be 'auto', 'direct', 'simulated' or 'http', "
                f"got {self.transport!r}"
            )
        if self.transport == "http" and not self.server_url:
            raise ConfigurationError(
                "transport='http' needs server_url (e.g. 'http://127.0.0.1:8900')"
            )
        if self.transport != "http" and self.server_url is not None:
            raise ConfigurationError(
                f"server_url is only meaningful with transport='http', "
                f"got transport={self.transport!r}"
            )
        if self.http_retries < 0:
            raise ConfigurationError(
                f"http_retries must be >= 0, got {self.http_retries}"
            )
        if self.http_retries and self.transport != "http":
            raise ConfigurationError(
                f"http_retries is only meaningful with transport='http', "
                f"got transport={self.transport!r}"
            )
        if self.snapshot_subsample is not None and self.snapshot_subsample < 1:
            raise ConfigurationError(
                f"snapshot_subsample must be >= 1, got {self.snapshot_subsample}"
            )
        if self.churn is not None and self.churn.num_devices != self.num_devices:
            raise ConfigurationError(
                f"churn schedule covers {self.churn.num_devices} devices, "
                f"config has {self.num_devices}"
            )
        if self.num_devices < 1:
            raise ConfigurationError(f"num_devices must be >= 1, got {self.num_devices}")
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate_constant <= 0:
            raise ConfigurationError("learning_rate_constant must be positive")
        if self.l2_regularization < 0:
            raise ConfigurationError("l2_regularization must be non-negative")
        if self.sampling_rate <= 0:
            raise ConfigurationError("sampling_rate must be positive")
        if self.num_passes < 1:
            raise ConfigurationError(f"num_passes must be >= 1, got {self.num_passes}")
        if not (0.0 <= self.holdout_fraction < 1.0):
            raise ConfigurationError("holdout_fraction must be in [0, 1)")
        if self.buffer_factor < 1:
            raise ConfigurationError("buffer_factor must be >= 1")
        if self.num_snapshots < 1:
            raise ConfigurationError("num_snapshots must be >= 1")
        if self.projection_radius is not None and self.projection_radius <= 0:
            raise ConfigurationError("projection_radius must be positive")
        if self.gateways is not None:
            if self.transport not in ("auto", "simulated"):
                raise ConfigurationError(
                    f"gateways need the event-driven transport: use "
                    f"transport='auto' or 'simulated', got {self.transport!r}"
                )
            if not self.link_delays.is_zero or not isinstance(self.outage, NoOutage):
                raise ConfigurationError(
                    "with gateways, per-hop delays and outages live in the "
                    "gateway profiles (device_delays/server_delays/...); "
                    "leave link_delays and outage at their defaults"
                )
        if self.transport == "http" and not self.direct_transport_eligible:
            raise ConfigurationError(
                "transport='http' runs fused synchronous rounds: it needs "
                "zero link delays and a reliable network (use "
                "SimulatedTransport to model delays/outages in-process)"
            )
        if self.transport == "http":
            # The live server owns the optimizer and the stopping rule;
            # accepting these knobs here and silently not applying them
            # would be exactly the divergence the parity contract
            # forbids, so reject anything the remote side cannot see.
            # (Defaults come from the dataclass fields themselves, so
            # this check can never drift from the declared defaults.)
            defaults = {f.name: f.default for f in fields(self)}
            server_owned = (
                "learning_rate_constant", "projection_radius",
                "max_iterations", "target_error",
            )
            mismatched = [
                name for name in server_owned
                if getattr(self, name) != defaults[name]
            ]
            if mismatched:
                raise ConfigurationError(
                    f"transport='http': {mismatched} are owned by the live "
                    f"server — leave them at their defaults here and "
                    f"configure repro-serve (or the hosted ServerCore) "
                    f"with the intended values instead"
                )

    @property
    def direct_transport_eligible(self) -> bool:
        """Whether fused synchronous rounds are exactly equivalent here.

        True iff every link delay is exactly zero (and RNG-free) and the
        network is reliable — the conditions under which nothing can
        interleave inside a round trip.
        """
        return self.link_delays.is_zero and isinstance(self.outage, NoOutage)

    def resolved_transport(self) -> str:
        """The concrete transport ``"auto"`` resolves to for this config.

        A configured gateway tier always resolves to ``"gateway"`` —
        the tier needs the event queue even when every hop is zero-delay
        (flush timers and batch deliveries are events).
        """
        if self.gateways is not None:
            return "gateway"
        if self.transport == "auto":
            return "direct" if self.direct_transport_eligible else "simulated"
        return self.transport

    def delay_in_sample_units(self, delta_multiples: float) -> float:
        """Convert a delay expressed in Δ = 1/(M·F_s) units to time units.

        Section V-C measures delays in Δ, "the number of samples generated
        by all devices during the delay": a delay of k·Δ spans the time in
        which the crowd generates k samples.
        """
        return float(delta_multiples) / (self.num_devices * self.sampling_rate)
