"""Run traces: everything one simulated Crowd-ML run records."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.evaluation.curves import ErrorCurve


@dataclass
class CommunicationStats:
    """Crowd-wide traffic totals (Section IV-B2 accounting)."""

    checkout_requests: int = 0
    checkouts_delivered: int = 0
    checkins_delivered: int = 0
    messages_dropped: int = 0
    uplink_floats: int = 0
    downlink_floats: int = 0

    @property
    def total_floats(self) -> int:
        """Total float64 payload volume in both directions."""
        return self.uplink_floats + self.downlink_floats


@dataclass
class RunTrace:
    """Output of one simulated run.

    Attributes
    ----------
    curve:
        Test error vs iteration (= samples consumed crowd-wide).
    online_errors:
        Per-sample online prediction-error indicators in consumption order
        (drives Fig. 3's time-averaged error).
    final_parameters:
        The server's parameters when the run ended.
    total_samples_consumed:
        Σ n_s over applied check-ins.
    server_iterations:
        Number of SGD updates applied (= check-ins applied).
    communication:
        Crowd-wide traffic counters.
    per_sample_epsilon:
        Max per-sample ε actually spent by any device.
    stop_reason:
        Why the run ended ("data_exhausted", "max_iterations",
        "target_error").
    staleness:
        Per-applied-check-in gradient staleness: the number of server
        updates that happened between the check-out that produced the
        gradient and its application.  Section IV-B3 predicts a mean of
        roughly (τ_co + τ_ci)·M·F_s / b.
    """

    curve: ErrorCurve
    online_errors: np.ndarray
    final_parameters: np.ndarray
    total_samples_consumed: int
    server_iterations: int
    communication: CommunicationStats
    per_sample_epsilon: float
    stop_reason: str
    staleness: np.ndarray = None

    @property
    def mean_staleness(self) -> float:
        """Average number of interleaved updates per applied gradient."""
        if self.staleness is None or self.staleness.size == 0:
            return 0.0
        return float(np.mean(self.staleness))

    @property
    def max_staleness(self) -> int:
        """Worst-case staleness observed."""
        if self.staleness is None or self.staleness.size == 0:
            return 0
        return int(np.max(self.staleness))

    @property
    def final_error(self) -> float:
        """Test error at the last snapshot."""
        return self.curve.final_error

    def time_averaged_error(self) -> np.ndarray:
        """Fig. 3's running mean of online prediction errors."""
        from repro.evaluation.metrics import time_averaged_error

        return time_averaged_error(self.online_errors)
