"""Hyperparameter selection (Section V-C's protocol).

"Hyperparameters λ (Table I) and c (Eq. 5) are selected from the averaged
test error from 10 trials."  :func:`select_hyperparameters` runs a grid of
(λ, c) candidates through the multi-trial crowd runner and returns the pair
minimizing the averaged tail error, together with the full score table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from repro.data.dataset import Dataset
from repro.models.base import Model
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import run_crowd_trials
from repro.utils.exceptions import ConfigurationError

ModelBuilder = Callable[[float], Model]  # lambda l2: Model(...)


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one grid search."""

    best_l2: float
    best_learning_rate: float
    best_error: float
    scores: Dict[Tuple[float, float], float]

    def format_table(self) -> str:
        """Score grid as text (rows λ, columns c)."""
        lines = [f"{'lambda':>10} {'c':>10} {'tail error':>11}"]
        for (l2, c), err in sorted(self.scores.items()):
            marker = "  <-- best" if (l2, c) == (self.best_l2,
                                                 self.best_learning_rate) else ""
            lines.append(f"{l2:>10g} {c:>10g} {err:>11.3f}{marker}")
        return "\n".join(lines)


def select_hyperparameters(
    model_builder: ModelBuilder,
    train: Dataset,
    validation: Dataset,
    base_config: SimulationConfig,
    l2_grid: Sequence[float],
    learning_rate_grid: Sequence[float],
    num_trials: int = 3,
    base_seed: int = 0,
) -> SelectionResult:
    """Grid-search (λ, c) by averaged validation error.

    ``model_builder`` maps an λ to a fresh model; every other simulation
    knob comes from ``base_config`` (its own λ/c fields are overridden).
    The winner minimizes the trial-averaged tail error on ``validation``.

    >>> # doctest-level smoke is exercised in the unit tests
    """
    if not l2_grid or not learning_rate_grid:
        raise ConfigurationError("both grids must be non-empty")
    scores: Dict[Tuple[float, float], float] = {}
    import dataclasses

    for l2 in l2_grid:
        for c in learning_rate_grid:
            config = dataclasses.replace(
                base_config, l2_regularization=float(l2),
                learning_rate_constant=float(c),
            )
            report = run_crowd_trials(
                lambda l2=l2: model_builder(float(l2)),
                train,
                validation,
                config,
                num_trials=num_trials,
                base_seed=base_seed,
            )
            scores[(float(l2), float(c))] = report.tail_error()
    best = min(scores, key=scores.get)
    return SelectionResult(
        best_l2=best[0],
        best_learning_rate=best[1],
        best_error=scores[best],
        scores=scores,
    )
