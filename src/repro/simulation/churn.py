"""Device churn: joins and leaves during a running task (Fig. 2).

"Devices can join or leave the task at any time."  A
:class:`ChurnSchedule` assigns every device a join time and a leave time;
the simulator starts a device's sensing at its join time and silences it
(no further samples, requests, or check-ins) after its leave time.
Learning must tolerate both — check-ins from the remaining crowd keep the
asynchronous SGD running.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class ChurnSchedule:
    """Per-device activity windows ``[join_time, leave_time)``.

    Attributes
    ----------
    join_times:
        When each device starts sensing (length M).
    leave_times:
        When each device goes silent (``inf`` = stays until the end).
    """

    join_times: np.ndarray
    leave_times: np.ndarray

    def __post_init__(self):
        join = np.asarray(self.join_times, dtype=np.float64)
        leave = np.asarray(self.leave_times, dtype=np.float64)
        if join.ndim != 1 or leave.shape != join.shape:
            raise ConfigurationError(
                "join_times and leave_times must be equal-length 1-D arrays"
            )
        if np.any(join < 0):
            raise ConfigurationError("join_times must be non-negative")
        if np.any(leave <= join):
            raise ConfigurationError("every leave_time must exceed its join_time")
        object.__setattr__(self, "join_times", join)
        object.__setattr__(self, "leave_times", leave)

    @property
    def num_devices(self) -> int:
        return self.join_times.shape[0]

    def is_active(self, device_index: int, time: float) -> bool:
        """True while the device is within its activity window."""
        return (
            self.join_times[device_index] <= time < self.leave_times[device_index]
        )

    @classmethod
    def always_on(cls, num_devices: int) -> "ChurnSchedule":
        """The default: everyone joins at 0 and never leaves."""
        return cls(
            np.zeros(num_devices),
            np.full(num_devices, math.inf),
        )

    @classmethod
    def staggered_joins(
        cls,
        num_devices: int,
        join_window: float,
        rng: np.random.Generator,
    ) -> "ChurnSchedule":
        """Devices trickle in uniformly over ``[0, join_window]``."""
        rng = as_generator(rng)
        if join_window < 0:
            raise ConfigurationError("join_window must be non-negative")
        joins = rng.uniform(0.0, max(join_window, 1e-12), size=num_devices)
        return cls(joins, np.full(num_devices, math.inf))

    @classmethod
    def random_sessions(
        cls,
        num_devices: int,
        horizon: float,
        mean_session: float,
        rng: np.random.Generator,
    ) -> "ChurnSchedule":
        """Each device is present for one random session inside the horizon.

        Joins are uniform in ``[0, horizon)``; session lengths are
        exponential with the given mean (clipped to at least one time
        unit), modelling phones that participate for a while and drop out.
        """
        rng = as_generator(rng)
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if mean_session <= 0:
            raise ConfigurationError("mean_session must be positive")
        joins = rng.uniform(0.0, horizon, size=num_devices)
        lengths = np.maximum(rng.exponential(mean_session, size=num_devices), 1.0)
        return cls(joins, joins + lengths)
