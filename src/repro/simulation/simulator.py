"""Event-driven simulation of a Crowd-ML deployment (Section V-C).

The :class:`CrowdSimulator` wires M :class:`~repro.core.device.Device`
actors and one :class:`~repro.core.server_core.ServerCore` over a
:class:`~repro.network.transport.Transport` and drives the whole system
from a deterministic :class:`~repro.network.events.EventQueue`:

* each device's samples arrive at rate F_s (staggered start offsets);
* a full minibatch triggers the Fig. 2 round trip — request (τ_req),
  check-out (τ_co), local gradient + sanitize, check-in (τ_ci);
* the server applies updates in arrival order, so staleness emerges
  naturally: a check-in computed against w(t₀) may be applied at t ≫ t₀.

Test error is snapshotted on an iteration grid (iteration = samples
consumed crowd-wide, matching the figures' x axes).

Between stochastic events (message deliveries, outages, churn), a
device's sample arrivals are *fully deterministic*: they land on the
fixed grid ``offset + k/F_s``.  The simulator never schedules per-sample
events — it precomputes each device's arrival-time grid (exact float
accumulation), schedules one heap event at the device's next check-out
trigger, and advances the whole span of arrivals in a single vectorized
:meth:`~repro.core.device.Device.observe_batch` call when a trigger or a
check-out delivery fires.

How the round trip itself executes depends on the transport
(``SimulationConfig.transport``):

* :class:`~repro.network.transport.SimulatedTransport` schedules each
  message leg on the event queue through a delayed, possibly lossy
  :class:`~repro.network.channel.Channel`.  Deliveries travel as
  ``(bound method, args)`` pairs — no per-message closures.  When τ > 0
  synchronizes several check-ins onto the *same* arrival timestamp, the
  first delivery drains the whole contiguous run from the heap and
  applies it as one :meth:`ServerCore.handle_checkins
  <repro.core.server_core.ServerCore.handle_checkins>` batch —
  bit-identical to dispatching each event (order, snapshots, staleness,
  and stopping are segmented exactly; the recorded-trace suite gates it).
* :class:`~repro.network.transport.DirectTransport` (auto-selected for
  zero-delay, outage-free configs) runs the whole round *synchronously*
  inside the trigger event via :meth:`ServerCore.serve_round
  <repro.core.server_core.ServerCore.serve_round>`: with nothing able to
  interleave between legs at the same timestamp, the fused path is
  bit-identical to the event-driven one while firing **one** heap event
  per check-out instead of four (see the recorded-trace regression
  suite).
* :class:`~repro.serve.remote.HttpTransport`
  (``transport="http", server_url=...``) runs the same fused-round
  schedule as the direct path, but the server side is a **live**
  :class:`~repro.serve.service.CrowdService` in another process:
  :class:`~repro.serve.remote.RemoteServerCore` stands in for the local
  core, every leg is a ``/v1/checkout`` / ``/v1/checkins`` HTTP round
  trip, and — for a server hosting the matching spec — the resulting
  trace is bit-identical to a :class:`DirectTransport` run (floats
  survive the JSON wire format exactly).
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.config import DeviceConfig, ServerConfig
from repro.core.device import Device
from repro.core.protocol import CheckinMessage, CheckoutRequest, CheckoutResponse
from repro.core.server import CrowdMLServer
from repro.core.server_core import ServerCore
from repro.data.dataset import Dataset
from repro.evaluation.curves import ErrorCurve
from repro.evaluation.metrics import SnapshotEvaluator, snapshot_grid
from repro.models.base import Model
from repro.network.events import EventQueue
from repro.network.transport import (
    DirectLink,
    DirectTransport,
    SimulatedLink,
    SimulatedTransport,
    Transport,
)
from repro.obs.metrics import NULL_REGISTRY
from repro.optim import paper_sgd
from repro.privacy.budget import split_budget
from repro.simulation.config import SimulationConfig
from repro.simulation.trace import CommunicationStats, RunTrace
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RngFactory


class _DeviceActor:
    """A device plus its precomputed arrival plan and transport link.

    ``arrival_times[k]`` is the exact event time of the k-th arrival,
    ``arrival_order[k]`` the dataset row it delivers, and
    ``arrival_limit`` the number of arrivals that happen before the
    device's churn leave time.  ``next_arrival`` tracks how far the
    device has been advanced.
    """

    __slots__ = (
        "device", "dataset", "link", "start_offset", "exhausted",
        "arrival_times", "arrival_order", "arrival_limit", "next_arrival",
        "trigger_index",
    )

    def __init__(self, device: Device, dataset: Dataset, link, start_offset: float):
        self.device = device
        self.dataset = dataset
        self.link = link
        self.start_offset = start_offset
        self.exhausted = False
        self.arrival_times: Optional[np.ndarray] = None
        self.arrival_order: Optional[np.ndarray] = None
        self.arrival_limit = 0
        self.next_arrival = 0
        self.trigger_index = 0


class CrowdSimulator:
    """Simulates one full Crowd-ML run.

    Parameters
    ----------
    model:
        Task definition (shared by server and devices).
    device_datasets:
        One local dataset per device (length = M).
    test_dataset:
        Clean evaluation set for the error curve.
    config:
        All simulation knobs.
    seed:
        Root seed; every random stream (delays, noise, shuffles, offsets)
        derives from it.

    Examples
    --------
    >>> from repro.data import make_mnist_like, iid_partition
    >>> from repro.models import MulticlassLogisticRegression
    >>> import numpy as np
    >>> train, test = make_mnist_like(num_train=200, num_test=100)
    >>> parts = iid_partition(train, 10, np.random.default_rng(0))
    >>> model = MulticlassLogisticRegression(50, 10)
    >>> sim = CrowdSimulator(model, parts, test,
    ...                      SimulationConfig(num_devices=10), seed=0)
    >>> trace = sim.run()
    >>> trace.total_samples_consumed > 0
    True
    """

    def __init__(
        self,
        model: Model,
        device_datasets: List[Dataset],
        test_dataset: Dataset,
        config: SimulationConfig,
        seed: int = 0,
        metrics=None,
    ):
        setup_start = time.perf_counter()
        if len(device_datasets) != config.num_devices:
            raise ConfigurationError(
                f"got {len(device_datasets)} device datasets for "
                f"{config.num_devices} devices"
            )
        self._model = model
        self._device_datasets = device_datasets
        self._test_dataset = test_dataset
        self._config = config
        self._rng_factory = RngFactory(seed)
        self._queue = EventQueue()

        resolved = config.resolved_transport()
        self._remote = resolved == "http"
        self._gateway = None
        if self._remote:
            # Imported here for layering, not laziness: the simulation
            # package must stay importable standalone without a hard
            # dependency on the serve layer (which depends back on
            # network/ and core/).
            from repro.serve.client import ServiceClient
            from repro.serve.remote import HttpTransport, RemoteServerCore

            self._transport: Transport = HttpTransport(
                ServiceClient(config.server_url, retries=config.http_retries)
            )
        elif resolved == "gateway":
            # Same layering rule as the serve import above: gateway/
            # depends on network/ and core/, so simulation/ must not
            # import it unconditionally.
            from repro.gateway.transport import GatewayTransport

            self._on_gateway_batch_handler = self._on_gateway_batch
            self._gateway = GatewayTransport(
                self._queue,
                config.gateways,
                config.num_devices,
                self._on_gateway_batch_handler,
                self._rng_factory,
            )
            self._transport = self._gateway
        elif resolved == "direct":
            self._transport = DirectTransport(config.link_delays, config.outage)
        else:
            self._transport = SimulatedTransport(
                self._queue, config.link_delays, config.outage
            )
        self._direct = self._transport.synchronous
        self._coalesce = config.coalesce_checkins

        total_samples = sum(len(ds) for ds in device_datasets) * config.num_passes
        if self._remote:
            # The live server owns the model, optimizer, and stopping
            # config; the local ones must merely describe the same task.
            # Retrying clients must tag check-ins with sequence numbers:
            # a retry whose original response was lost is then answered
            # from the server's dedupe ledger instead of applied twice.
            core = RemoteServerCore(
                self._transport.client, tag_checkins=config.http_retries > 0
            )
            core.validate_model(model)
            self._server: Optional[CrowdMLServer] = None
            self._core = core
        else:
            optimizer = paper_sgd(
                model.init_parameters(),
                learning_rate_constant=config.learning_rate_constant,
                projection_radius=config.projection_radius,
            )
            max_iterations = config.max_iterations
            if max_iterations is None:
                # Every check-in applies >= 1 sample, so a cap one beyond
                # the total sample count can never bind before the data
                # runs out.
                max_iterations = total_samples + 1
            server_config = ServerConfig(
                max_iterations=max_iterations, target_error=config.target_error
            )
            self._server = CrowdMLServer(model, optimizer, server_config)
            self._core = self._server.core
        self._total_samples = total_samples

        self._actors = [self._build_actor(m) for m in range(config.num_devices)]

        self._grid = snapshot_grid(max(total_samples, 1), config.num_snapshots)
        self._grid_pos = 0
        subsample = config.snapshot_subsample
        snapshot_rng = None
        if subsample is not None and subsample < len(test_dataset):
            snapshot_rng = self._rng_factory.generator("snapshot", 0)
        self._snapshot_eval = SnapshotEvaluator(
            model, test_dataset, subsample, snapshot_rng
        )
        self._snapshot_iters: list[int] = []
        self._snapshot_errors: list[float] = []
        self._online_errors: list[np.ndarray] = []
        self._samples_consumed = 0
        self._comm = CommunicationStats()
        self._staleness: list[int] = []
        self._stopped_reason: Optional[str] = None
        self._coalesced_checkins = 0
        # Bound-method handles created once: every schedule/send passes one
        # of these plus an args tuple, so the hot loop allocates neither
        # closures nor fresh bound methods per message.
        self._on_trigger_handler = self._on_trigger
        self._on_request_handler = self._on_request_arrival
        self._on_checkout_handler = self._on_checkout_arrival
        self._on_checkin_handler = self._on_checkin_arrival
        # Obs instrumentation lives only at run boundaries (setup /
        # event-loop / finalize phase timings, whole-run totals) — the
        # per-event and per-sample hot paths are untouched, keeping
        # enabled-mode overhead within the benchmark gate.
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._setup_seconds = time.perf_counter() - setup_start

    @property
    def server(self) -> Optional[CrowdMLServer]:
        """The in-process server shim (``None`` when driving a live
        remote service over ``transport="http"``)."""
        return self._server

    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def transport(self) -> Transport:
        """The transport protocol messages actually travel through."""
        return self._transport

    @property
    def gateway(self):
        """The :class:`~repro.gateway.transport.GatewayTransport` when a
        two-tier topology is configured, else ``None``."""
        return self._gateway

    @property
    def events_fired(self) -> int:
        """Heap events executed so far (the throughput benchmark's y axis)."""
        return self._queue.fired

    @property
    def coalesced_checkins(self) -> int:
        """Check-in deliveries absorbed into a batch drain instead of
        being dispatched as their own event."""
        return self._coalesced_checkins

    def _build_actor(self, device_index: int) -> _DeviceActor:
        config = self._config
        budget = split_budget(config.epsilon, self._model.num_classes)
        device_config = DeviceConfig(
            batch_size=config.batch_size,
            buffer_capacity=config.batch_size * config.buffer_factor,
            budget=budget,
            holdout_fraction=config.holdout_fraction,
        )
        device_rng = self._rng_factory.generator("device", device_index)
        # Local cores mint the token in-process; a RemoteServerCore routes
        # the same call through POST /v1/join on the live service.
        token = self._core.register_device(device_index)
        batch_policy = (
            config.batch_policy_factory()
            if config.batch_policy_factory is not None
            else None
        )
        device = Device(
            device_index, self._model, device_config, token, device_rng,
            batch_policy=batch_policy,
        )

        network_rng = self._rng_factory.generator("network", device_index)
        link = self._transport.connect(device_index, network_rng)
        offset_rng = self._rng_factory.generator("offset", device_index)
        # Stagger device start times over one full minibatch period: real
        # devices join a task at arbitrary times, so their check-in phases
        # are desynchronized.  (With a common start, all M devices fill
        # their minibatches simultaneously and every round delivers M
        # synchronized check-ins — inflating gradient staleness to ~M/2
        # independent of the network delay.)
        start_offset = float(
            offset_rng.uniform(0.0, config.batch_size / config.sampling_rate)
        )
        actor = _DeviceActor(
            device, self._device_datasets[device_index], link, start_offset,
        )
        self._plan_arrivals(actor, device_index)
        return actor

    def _plan_arrivals(self, actor: _DeviceActor, device_index: int) -> None:
        """Precompute the device's deterministic arrival grid.

        Arrival k fires at the float obtained by adding ``1/F_s`` to the
        previous arrival time, starting from ``start_offset (+ join
        time)`` — ``np.add.accumulate`` performs exactly that
        left-to-right IEEE-754 accumulation, so the grid is bit-identical
        to the retired one-event-per-sample scheduler's event times (the
        recorded-trace suite pins this).  Per-pass shuffles draw from the
        dedicated "shuffle" stream in pass order, and arrivals at or past
        the churn leave time are cut off exactly as the per-event leave
        check would.
        """
        config = self._config
        dataset = actor.dataset
        shuffle_rng = self._rng_factory.generator("shuffle", device_index)
        per_pass = len(dataset)
        if per_pass == 0:
            actor.arrival_times = np.empty(0, dtype=np.float64)
            actor.arrival_order = np.empty(0, dtype=np.int64)
            actor.arrival_limit = 0
            return
        actor.arrival_order = np.concatenate(
            [shuffle_rng.permutation(per_pass) for _ in range(config.num_passes)]
        )
        total = actor.arrival_order.shape[0]
        first = actor.start_offset
        if config.churn is not None:
            first = first + float(config.churn.join_times[device_index])
        steps = np.empty(total, dtype=np.float64)
        steps[0] = 0.0 + first
        steps[1:] = 1.0 / config.sampling_rate
        actor.arrival_times = np.add.accumulate(steps)
        actor.arrival_limit = total
        if config.churn is not None:
            # A device goes silent at its first arrival with now >= leave;
            # only arrivals strictly before the leave time are observed.
            actor.arrival_limit = int(
                np.searchsorted(
                    actor.arrival_times,
                    float(config.churn.leave_times[device_index]),
                    side="left",
                )
            )

    # ------------------------------------------------------------------ #
    # Event handlers — batch arrivals                                    #
    # ------------------------------------------------------------------ #
    #
    # Invariant: an active device has exactly one pending progress event —
    # either a trigger (the arrival that fills its minibatch) or an
    # in-flight check-out round trip.  Arrivals between progress events
    # are advanced lazily in one vectorized step, so the heap sees
    # O(check-ins) events instead of O(total samples).

    def _advance_arrivals(self, actor: _DeviceActor, end: int) -> None:
        """Deliver arrivals ``[next_arrival, end)`` to the device at once."""
        end = min(end, actor.arrival_limit)
        if end <= actor.next_arrival:
            return
        rows = actor.arrival_order[actor.next_arrival:end]
        dataset = actor.dataset
        actor.device.observe_rows(dataset.features, dataset.labels, rows)
        actor.next_arrival = end

    def _advance_arrivals_until(self, actor: _DeviceActor, time: float) -> None:
        """Deliver every arrival strictly before ``time``.

        Matches per-event order for continuous or zero delay
        distributions, where a sample arriving at *exactly* a delivery's
        timestamp has probability zero (see
        ``SimulationConfig.transport``).
        """
        end = int(np.searchsorted(actor.arrival_times, time, side="left"))
        self._advance_arrivals(actor, end)

    def _schedule_trigger(self, actor: _DeviceActor) -> None:
        """Schedule the arrival that completes the device's next minibatch.

        From a quiescent device state (no request in flight), the next
        check-out trigger is deterministic: it fires at the arrival that
        lifts the buffer to the current batch size (or at the very next
        arrival, when a failed check-out left the buffer already full).
        Exhausted or churned-out devices schedule nothing and go silent.
        """
        if self._stopped_reason is not None:
            return
        device = actor.device
        needed = max(device.current_batch_size - device.buffer_size, 1)
        index = actor.next_arrival + needed - 1
        if index >= actor.arrival_limit:
            actor.exhausted = True
            return
        actor.trigger_index = index
        self._queue.schedule(
            float(actor.arrival_times[index]), self._on_trigger_handler,
            tag="trigger", args=(actor,),
        )

    def _on_trigger(self, actor: _DeviceActor) -> None:
        if self._stopped_reason is not None:
            return
        self._advance_arrivals(actor, actor.trigger_index + 1)
        if self._direct:
            self._run_fused_round(actor)
            return
        delivered = self._send_checkout_request(actor)
        if not delivered:
            # Remark 1: the request was lost in an outage; the buffer is
            # intact and the very next arrival re-triggers.
            self._schedule_trigger(actor)

    # ------------------------------------------------------------------ #
    # The check-out/check-in round trip — event-driven transport         #
    # ------------------------------------------------------------------ #

    def _send_checkout_request(self, actor: _DeviceActor) -> bool:
        actor.device.mark_checkout_requested()
        request = CheckoutRequest(
            device_id=actor.device.device_id,
            token=actor.device.token,
            request_time=self._queue.now,
        )
        self._comm.checkout_requests += 1
        link: SimulatedLink = actor.link
        return link.request.send(
            self._on_request_handler,
            payload_floats=request.payload_floats,
            on_drop=actor.device.on_checkout_failed,
            args=(actor, request),
        )

    def _on_request_arrival(self, actor: _DeviceActor, request: CheckoutRequest) -> None:
        if self._stopped_reason is not None or self._core.stopped:
            actor.device.on_checkout_failed()
            self._resume_after_failed_checkout(actor)
            return
        response = self._core.handle_checkout(request)
        self._comm.downlink_floats += response.payload_floats
        link: SimulatedLink = actor.link
        delivered = link.checkout.send(
            self._on_checkout_handler,
            payload_floats=response.payload_floats,
            on_drop=actor.device.on_checkout_failed,
            args=(actor, response),
        )
        if not delivered:
            self._resume_after_failed_checkout(actor)

    def _resume_after_failed_checkout(self, actor: _DeviceActor) -> None:
        """Restart the trigger chain after a lost check-out.

        The arrivals buffered while the request was in flight are
        advanced first (they drew their holdout randomness before the
        failure), then the next arrival re-triggers.
        """
        if self._stopped_reason is not None:
            return
        self._advance_arrivals_until(actor, self._queue.now)
        self._schedule_trigger(actor)

    def _on_checkout_arrival(self, actor: _DeviceActor, response: CheckoutResponse) -> None:
        if self._stopped_reason is not None:
            return
        self._comm.checkouts_delivered += 1
        # Samples that arrived while the check-out was in flight were
        # buffered (and consumed holdout randomness) before this delivery
        # fired.
        self._advance_arrivals_until(actor, self._queue.now)
        if actor.device.buffer_size == 0:
            # Buffer was consumed by a racing check-out; nothing to do.
            actor.device.on_checkout_failed()
            self._schedule_trigger(actor)
            return
        result = actor.device.complete_checkout(
            response.parameters, response.server_iteration
        )
        self._online_errors.append(result.per_sample_errors)
        message = result.message
        self._comm.uplink_floats += message.payload_floats
        link: SimulatedLink = actor.link
        link.checkin.send(
            self._on_checkin_handler,
            payload_floats=message.payload_floats,
            args=(actor, message),
        )
        # The buffer is empty again (and an adaptive policy may have just
        # changed b): the next trigger is deterministic from here.
        self._schedule_trigger(actor)

    def _on_checkin_arrival(self, actor: _DeviceActor, message: CheckinMessage) -> None:
        if self._stopped_reason is not None or self._core.stopped:
            return
        if self._coalesce:
            # Batch drain: if the very next events are further check-in
            # deliveries at this exact timestamp (τ > 0 synchronizing
            # several devices), consume them now and apply the whole run
            # as handle_checkins batches.  Only *contiguous* head events
            # are taken, so nothing that could observe server state (a
            # checkout arrival, a trigger) is ever reordered around an
            # update.
            taken = self._queue.take_matching(self._on_checkin_handler)
            if taken is not None:
                run = [message]
                while taken is not None:
                    run.append(taken[1])
                    taken = self._queue.take_matching(self._on_checkin_handler)
                self._coalesced_checkins += len(run) - 1
                self._apply_checkin_run(run)
                return
        self._staleness.append(self._core.iteration - message.checkout_iteration)
        self._core.handle_checkin(message)
        self._comm.checkins_delivered += 1
        self._samples_consumed += message.num_samples
        self._maybe_snapshot()
        decision = self._core.stopping_decision()
        if decision.stopped:
            self._stopped_reason = decision.reason.value

    def _apply_checkin_run(self, messages: List[CheckinMessage]) -> None:
        """Apply a contiguous run of same-timestamp check-in deliveries.

        Bit-identical to firing one ``_on_checkin_arrival`` per message:
        the run is split into :meth:`ServerCore.handle_checkins
        <repro.core.server_core.ServerCore.handle_checkins>` segments so
        that every point where the sequential path would observe
        intermediate state falls on a segment boundary —

        * a snapshot-grid crossing ends its segment (the error snapshot
          must see the parameters *at* the crossing, not after the run);
        * the remaining ``max_iterations`` budget caps a segment (the
          sequential guard drops post-stop deliveries before they reach
          the core, so they must never be submitted);
        * with a ρ target the stop can flip after *any* update, so
          segments shrink to one message (the batch win stays for the
          T_max-bounded figure configs, where the budget is closed-form).

        Every message inside a segment is then guaranteed to be accepted
        (registered device, validated shape, budget in hand), which is
        what lets staleness be bookkept from the segment's start
        iteration: accepted check-in *k* observes exactly *k* prior
        applies.
        """
        core = self._core
        server_config = core.config
        per_message_stop = server_config.target_error is not None
        grid = self._grid
        n = len(messages)
        i = 0
        while i < n:
            if self._stopped_reason is not None or core.stopped:
                # Remaining deliveries arrived after the stop: the
                # sequential guard ignores them (delivered but unapplied).
                return
            limit = i + 1 if per_message_stop else n
            # Budget >= 1 here: a spent budget implies core.stopped above.
            limit = min(limit, i + server_config.max_iterations - core.iteration)
            consumed = self._samples_consumed
            j = i
            while j < limit:
                consumed += messages[j].num_samples
                j += 1
                if (
                    self._grid_pos < grid.shape[0]
                    and consumed >= grid[self._grid_pos]
                ):
                    break
            segment = messages[i:j]
            start_iteration = core.iteration
            for offset, message in enumerate(segment):
                self._staleness.append(
                    start_iteration + offset - message.checkout_iteration
                )
            core.handle_checkins(segment)
            self._comm.checkins_delivered += len(segment)
            self._samples_consumed = consumed
            self._maybe_snapshot()
            decision = core.stopping_decision()
            if decision.stopped:
                self._stopped_reason = decision.reason.value
            i = j

    def _on_gateway_batch(self, messages: List[CheckinMessage]) -> None:
        """A gateway's flushed check-in batch reached the server.

        The batch is applied through the same segmented
        :meth:`_apply_checkin_run` as coalesced per-message deliveries,
        so a pass-through gateway (every batch a single message) is
        bit-identical to per-device delivery.  Batches from other
        gateways landing on the same timestamp are drained into the run
        too, exactly like same-timestamp per-message deliveries.
        """
        if self._stopped_reason is not None or self._core.stopped:
            return
        run = list(messages)
        if self._coalesce:
            taken = self._queue.take_matching(self._on_gateway_batch_handler)
            while taken is not None:
                run.extend(taken[0])
                self._coalesced_checkins += len(taken[0])
                taken = self._queue.take_matching(self._on_gateway_batch_handler)
        self._apply_checkin_run(run)

    # ------------------------------------------------------------------ #
    # The check-out/check-in round trip — direct transport (fused)       #
    # ------------------------------------------------------------------ #

    def _run_fused_round(self, actor: _DeviceActor) -> None:
        """One whole Fig. 2 round trip, synchronously, via ``serve_round``.

        Zero delay and a reliable network mean nothing can interleave
        between the three legs, so executing them inline is equivalent to
        scheduling them — with zero heap events and zero closures.  All
        bookkeeping happens in the same order as the event-driven
        handlers.
        """
        device = actor.device
        device.mark_checkout_requested()
        request = CheckoutRequest(
            device_id=device.device_id,
            token=device.token,
            request_time=self._queue.now,
        )
        self._comm.checkout_requests += 1
        link: DirectLink = actor.link
        link.note_request(request.payload_floats)
        outcome = self._core.serve_round(
            (request,), self._complete_fused_round, (actor,)
        )
        if outcome.responses[0] is None:
            # Stopped or rejected before the checkout was served.  On the
            # local direct path this cannot happen mid-run (a stop always
            # surfaces through the check-in that caused it); on the remote
            # path it can — the live server may have stopped between
            # rounds (or under a concurrent client) and reject the
            # checkout — so record the stop before Remark 1 recovery,
            # which also halts the trigger chain.
            if outcome.stop.stopped:
                self._stopped_reason = outcome.stop.reason.value
            device.on_checkout_failed()
            self._schedule_trigger(actor)
            return
        message = outcome.messages[0]
        if message is None:
            return  # racing checkout: _complete_fused_round rescheduled
        if outcome.acks[0] is None:
            # The check-in was sent but rejected — only possible on the
            # remote path, when the live server stopped under a
            # concurrent client between our checkout and check-in.  Not
            # an applied update: drop the optimistic staleness entry and
            # record the stop instead of counting a phantom delivery.
            self._staleness.pop()
            if outcome.stop.stopped:
                self._stopped_reason = outcome.stop.reason.value
            return
        self._comm.checkins_delivered += 1
        self._samples_consumed += message.num_samples
        self._maybe_snapshot()
        if outcome.stop.stopped:
            self._stopped_reason = outcome.stop.reason.value

    def _complete_fused_round(
        self, response: CheckoutResponse, actor: _DeviceActor
    ) -> Optional[CheckinMessage]:
        """Device side of a fused round: Routines 2 + 3 plus bookkeeping."""
        self._comm.checkouts_delivered += 1
        self._comm.downlink_floats += response.payload_floats
        link: DirectLink = actor.link
        link.note_checkout(response.payload_floats)
        device = actor.device
        if device.buffer_size == 0:
            device.on_checkout_failed()
            self._schedule_trigger(actor)
            return None
        result = device.complete_checkout(
            response.parameters, response.server_iteration
        )
        self._online_errors.append(result.per_sample_errors)
        message = result.message
        self._comm.uplink_floats += message.payload_floats
        link.note_checkin(message.payload_floats)
        self._schedule_trigger(actor)
        # Applied immediately after return: zero interleaved updates.
        self._staleness.append(self._core.iteration - message.checkout_iteration)
        return message

    # ------------------------------------------------------------------ #
    # Snapshots and run loop                                             #
    # ------------------------------------------------------------------ #

    def _maybe_snapshot(self) -> None:
        while (
            self._grid_pos < self._grid.shape[0]
            and self._samples_consumed >= self._grid[self._grid_pos]
        ):
            self._snapshot_iters.append(self._samples_consumed)
            self._snapshot_errors.append(
                self._snapshot_eval.error(self._core.parameters)
            )
            self._grid_pos += 1

    def run(self) -> RunTrace:
        """Execute the simulation to completion and return its trace."""
        loop_start = time.perf_counter()
        for actor in self._actors:
            self._schedule_trigger(actor)
        while True:
            while self._queue.step():
                pass
            # With a gateway tier, an empty queue may leave check-ins
            # stranded in gateway buffers (no deadline configured, or a
            # trailing trickle below flush_size): drain them — the
            # shutdown flush — and keep stepping until the whole tier is
            # quiescent.  After a stop the leftovers would be ignored on
            # delivery anyway, so the drain is skipped.
            if self._gateway is None or self._stopped_reason is not None:
                break
            if not self._gateway.drain_stranded():
                break

        loop_seconds = time.perf_counter() - loop_start
        finalize_start = time.perf_counter()

        if self._stopped_reason is None:
            self._stopped_reason = "data_exhausted"

        if not self._snapshot_iters or self._snapshot_iters[-1] != self._samples_consumed:
            if self._samples_consumed > 0:
                self._snapshot_iters.append(self._samples_consumed)
                self._snapshot_errors.append(
                    self._snapshot_eval.error(self._core.parameters)
                )

        iters = np.asarray(self._snapshot_iters, dtype=np.int64)
        errors = np.asarray(self._snapshot_errors, dtype=np.float64)
        if iters.size:
            _, first_idx = np.unique(iters, return_index=True)
            curve = ErrorCurve(iters[first_idx], errors[first_idx])
        else:
            curve = ErrorCurve(
                np.array([1], dtype=np.int64),
                np.array([self._snapshot_eval.error(self._core.parameters)]),
            )

        online = (
            np.concatenate(self._online_errors)
            if self._online_errors
            else np.zeros(0, dtype=bool)
        )
        per_sample_epsilon = max(
            (actor.device.accountant.spend().per_sample_epsilon for actor in self._actors),
            default=0.0,
        )
        self._comm.messages_dropped = sum(
            actor.link.messages_dropped for actor in self._actors
        )
        if self._gateway is not None:
            # Whole batches lost on a gateway's backhaul (per-device
            # drops — edge-hop losses and capacity overflow — are
            # already counted on the device links above).
            self._comm.messages_dropped += self._gateway.checkins_lost

        # Run-boundary metrics: one counter bump and a few gauge writes
        # per run, never per event.
        metrics = self._metrics
        metrics.counter("sim_runs_total").inc()
        metrics.counter("sim_events_total").inc(self._queue.fired)
        metrics.counter("sim_samples_total").inc(self._samples_consumed)
        metrics.gauge("sim_setup_seconds").set(self._setup_seconds)
        metrics.gauge("sim_event_loop_seconds").set(loop_seconds)
        metrics.gauge("sim_finalize_seconds").set(
            time.perf_counter() - finalize_start
        )
        if self._samples_consumed:
            metrics.gauge("sim_events_per_sample").set(
                self._queue.fired / self._samples_consumed
            )

        return RunTrace(
            curve=curve,
            online_errors=online,
            final_parameters=self._core.parameters,
            total_samples_consumed=self._samples_consumed,
            server_iterations=self._core.iteration,
            communication=self._comm,
            per_sample_epsilon=per_sample_epsilon,
            stop_reason=self._stopped_reason,
            staleness=np.asarray(self._staleness, dtype=np.int64),
        )
