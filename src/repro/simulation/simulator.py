"""Event-driven simulation of a Crowd-ML deployment (Section V-C).

The :class:`CrowdSimulator` wires M :class:`~repro.core.device.Device`
actors and one :class:`~repro.core.server.CrowdMLServer` over delayed,
possibly lossy :class:`~repro.network.channel.Channel`s, and drives the
whole system from a deterministic
:class:`~repro.network.events.EventQueue`:

* each device's samples arrive at rate F_s (staggered start offsets);
* a full minibatch triggers the Fig. 2 round trip — request (τ_req),
  check-out (τ_co), local gradient + sanitize, check-in (τ_ci);
* the server applies updates in arrival order, so staleness emerges
  naturally: a check-in computed against w(t₀) may be applied at t ≫ t₀.

Test error is snapshotted on an iteration grid (iteration = samples
consumed crowd-wide, matching the figures' x axes).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.core.config import DeviceConfig, ServerConfig
from repro.core.device import Device
from repro.core.protocol import CheckinMessage, CheckoutRequest, CheckoutResponse
from repro.core.server import CrowdMLServer
from repro.data.dataset import Dataset
from repro.evaluation.curves import ErrorCurve
from repro.evaluation.metrics import snapshot_grid, test_error
from repro.models.base import Model
from repro.network.channel import Channel
from repro.network.events import EventQueue
from repro.optim.projection import IdentityProjection, L2BallProjection
from repro.optim.schedules import InverseSqrtRate
from repro.optim.sgd import SGD
from repro.privacy.budget import split_budget
from repro.simulation.config import SimulationConfig
from repro.simulation.trace import CommunicationStats, RunTrace
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RngFactory


class _DeviceActor:
    """A device plus its sample stream and network endpoints."""

    def __init__(
        self,
        device: Device,
        stream: Iterator[tuple[np.ndarray, int]],
        request_channel: Channel,
        checkout_channel: Channel,
        checkin_channel: Channel,
        start_offset: float,
    ):
        self.device = device
        self.stream = stream
        self.request_channel = request_channel
        self.checkout_channel = checkout_channel
        self.checkin_channel = checkin_channel
        self.start_offset = start_offset
        self.exhausted = False


class CrowdSimulator:
    """Simulates one full Crowd-ML run.

    Parameters
    ----------
    model:
        Task definition (shared by server and devices).
    device_datasets:
        One local dataset per device (length = M).
    test_dataset:
        Clean evaluation set for the error curve.
    config:
        All simulation knobs.
    seed:
        Root seed; every random stream (delays, noise, shuffles, offsets)
        derives from it.

    Examples
    --------
    >>> from repro.data import make_mnist_like, iid_partition
    >>> from repro.models import MulticlassLogisticRegression
    >>> import numpy as np
    >>> train, test = make_mnist_like(num_train=200, num_test=100)
    >>> parts = iid_partition(train, 10, np.random.default_rng(0))
    >>> model = MulticlassLogisticRegression(50, 10)
    >>> sim = CrowdSimulator(model, parts, test,
    ...                      SimulationConfig(num_devices=10), seed=0)
    >>> trace = sim.run()
    >>> trace.total_samples_consumed > 0
    True
    """

    def __init__(
        self,
        model: Model,
        device_datasets: List[Dataset],
        test_dataset: Dataset,
        config: SimulationConfig,
        seed: int = 0,
    ):
        if len(device_datasets) != config.num_devices:
            raise ConfigurationError(
                f"got {len(device_datasets)} device datasets for "
                f"{config.num_devices} devices"
            )
        self._model = model
        self._device_datasets = device_datasets
        self._test_dataset = test_dataset
        self._config = config
        self._rng_factory = RngFactory(seed)
        self._queue = EventQueue()

        projection = (
            L2BallProjection(config.projection_radius)
            if config.projection_radius is not None
            else IdentityProjection()
        )
        optimizer = SGD(
            model.init_parameters(),
            schedule=InverseSqrtRate(config.learning_rate_constant),
            projection=projection,
        )
        total_samples = sum(len(ds) for ds in device_datasets) * config.num_passes
        max_iterations = config.max_iterations
        if max_iterations is None:
            # Every check-in applies >= 1 sample, so a cap one beyond the
            # total sample count can never bind before the data runs out.
            max_iterations = total_samples + 1
        server_config = ServerConfig(
            max_iterations=max_iterations, target_error=config.target_error
        )
        self._server = CrowdMLServer(model, optimizer, server_config)
        self._total_samples = total_samples

        self._actors = [self._build_actor(m) for m in range(config.num_devices)]

        self._grid = snapshot_grid(max(total_samples, 1), config.num_snapshots)
        self._grid_pos = 0
        self._snapshot_iters: list[int] = []
        self._snapshot_errors: list[float] = []
        self._online_errors: list[np.ndarray] = []
        self._samples_consumed = 0
        self._comm = CommunicationStats()
        self._staleness: list[int] = []
        self._stopped_reason: Optional[str] = None

    @property
    def server(self) -> CrowdMLServer:
        return self._server

    @property
    def config(self) -> SimulationConfig:
        return self._config

    def _build_actor(self, device_index: int) -> _DeviceActor:
        config = self._config
        budget = split_budget(config.epsilon, self._model.num_classes)
        device_config = DeviceConfig(
            batch_size=config.batch_size,
            buffer_capacity=config.batch_size * config.buffer_factor,
            budget=budget,
            holdout_fraction=config.holdout_fraction,
        )
        device_rng = self._rng_factory.generator("device", device_index)
        token = self._server.register_device(device_index)
        batch_policy = (
            config.batch_policy_factory()
            if config.batch_policy_factory is not None
            else None
        )
        device = Device(
            device_index, self._model, device_config, token, device_rng,
            batch_policy=batch_policy,
        )

        network_rng = self._rng_factory.generator("network", device_index)
        delays = config.link_delays
        request_channel = Channel(
            self._queue, delays.request, config.outage, network_rng,
            name=f"request-{device_index}",
        )
        checkout_channel = Channel(
            self._queue, delays.checkout, config.outage, network_rng,
            name=f"checkout-{device_index}",
        )
        checkin_channel = Channel(
            self._queue, delays.checkin, config.outage, network_rng,
            name=f"checkin-{device_index}",
        )
        stream = self._sample_stream(device_index)
        offset_rng = self._rng_factory.generator("offset", device_index)
        # Stagger device start times over one full minibatch period: real
        # devices join a task at arbitrary times, so their check-in phases
        # are desynchronized.  (With a common start, all M devices fill
        # their minibatches simultaneously and every round delivers M
        # synchronized check-ins — inflating gradient staleness to ~M/2
        # independent of the network delay.)
        start_offset = float(
            offset_rng.uniform(0.0, config.batch_size / config.sampling_rate)
        )
        return _DeviceActor(
            device, stream, request_channel, checkout_channel, checkin_channel,
            start_offset,
        )

    def _sample_stream(self, device_index: int) -> Iterator[tuple[np.ndarray, int]]:
        """The device's local data, reshuffled each pass."""
        dataset = self._device_datasets[device_index]
        shuffle_rng = self._rng_factory.generator("shuffle", device_index)
        for _ in range(self._config.num_passes):
            if len(dataset) == 0:
                return
            order = shuffle_rng.permutation(len(dataset))
            for index in order:
                yield dataset.features[index], int(dataset.labels[index])

    # ------------------------------------------------------------------ #
    # Event handlers                                                     #
    # ------------------------------------------------------------------ #

    def _schedule_next_sample(self, actor: _DeviceActor, first: bool = False) -> None:
        if self._stopped_reason is not None:
            return
        delay = actor.start_offset if first else 1.0 / self._config.sampling_rate
        if first and self._config.churn is not None:
            # Devices join the task at their scheduled time (Fig. 2).
            delay += float(self._config.churn.join_times[actor.device.device_id])
        self._queue.schedule_after(delay, lambda: self._on_sample(actor), tag="sample")

    def _on_sample(self, actor: _DeviceActor) -> None:
        if self._stopped_reason is not None:
            return
        churn = self._config.churn
        if churn is not None and self._queue.now >= float(
            churn.leave_times[actor.device.device_id]
        ):
            # The device left the task: it goes silent (no more samples,
            # requests, or check-ins) but the rest of the crowd continues.
            actor.exhausted = True
            return
        try:
            features, label = next(actor.stream)
        except StopIteration:
            actor.exhausted = True
            return
        wants_checkout = actor.device.observe(features, label)
        if wants_checkout:
            self._send_checkout_request(actor)
        self._schedule_next_sample(actor)

    def _send_checkout_request(self, actor: _DeviceActor) -> None:
        actor.device.mark_checkout_requested()
        request = CheckoutRequest(
            device_id=actor.device.device_id,
            token=actor.device.token,
            request_time=self._queue.now,
        )
        self._comm.checkout_requests += 1
        actor.request_channel.send(
            deliver=lambda: self._on_request_arrival(actor, request),
            payload_floats=request.payload_floats,
            on_drop=actor.device.on_checkout_failed,
        )

    def _on_request_arrival(self, actor: _DeviceActor, request: CheckoutRequest) -> None:
        if self._stopped_reason is not None or self._server.stopped:
            actor.device.on_checkout_failed()
            return
        response = self._server.handle_checkout(request)
        self._comm.downlink_floats += response.payload_floats
        actor.checkout_channel.send(
            deliver=lambda: self._on_checkout_arrival(actor, response),
            payload_floats=response.payload_floats,
            on_drop=actor.device.on_checkout_failed,
        )

    def _on_checkout_arrival(self, actor: _DeviceActor, response: CheckoutResponse) -> None:
        if self._stopped_reason is not None:
            return
        self._comm.checkouts_delivered += 1
        if actor.device.buffer_size == 0:
            # Buffer was consumed by a racing check-out; nothing to do.
            actor.device.on_checkout_failed()
            return
        result = actor.device.complete_checkout(
            response.parameters, response.server_iteration
        )
        self._online_errors.append(result.per_sample_errors)
        message = result.message
        self._comm.uplink_floats += message.payload_floats
        actor.checkin_channel.send(
            deliver=lambda: self._on_checkin_arrival(actor, message),
            payload_floats=message.payload_floats,
        )

    def _on_checkin_arrival(self, actor: _DeviceActor, message: CheckinMessage) -> None:
        if self._stopped_reason is not None or self._server.stopped:
            return
        self._staleness.append(self._server.iteration - message.checkout_iteration)
        self._server.handle_checkin(message)
        self._comm.checkins_delivered += 1
        self._samples_consumed += message.num_samples
        self._maybe_snapshot()
        decision = self._server.stopping_decision()
        if decision.stopped:
            self._stopped_reason = decision.reason.value

    def _maybe_snapshot(self) -> None:
        while (
            self._grid_pos < self._grid.shape[0]
            and self._samples_consumed >= self._grid[self._grid_pos]
        ):
            self._snapshot_iters.append(self._samples_consumed)
            self._snapshot_errors.append(
                test_error(self._model, self._server.parameters, self._test_dataset)
            )
            self._grid_pos += 1

    # ------------------------------------------------------------------ #
    # Run                                                                #
    # ------------------------------------------------------------------ #

    def run(self) -> RunTrace:
        """Execute the simulation to completion and return its trace."""
        for actor in self._actors:
            self._schedule_next_sample(actor, first=True)
        while self._queue.step():
            pass

        if self._stopped_reason is None:
            self._stopped_reason = "data_exhausted"

        if not self._snapshot_iters or self._snapshot_iters[-1] != self._samples_consumed:
            if self._samples_consumed > 0:
                self._snapshot_iters.append(self._samples_consumed)
                self._snapshot_errors.append(
                    test_error(self._model, self._server.parameters, self._test_dataset)
                )

        iters = np.asarray(self._snapshot_iters, dtype=np.int64)
        errors = np.asarray(self._snapshot_errors, dtype=np.float64)
        if iters.size:
            _, first_idx = np.unique(iters, return_index=True)
            curve = ErrorCurve(iters[first_idx], errors[first_idx])
        else:
            curve = ErrorCurve(
                np.array([1], dtype=np.int64),
                np.array(
                    [test_error(self._model, self._server.parameters, self._test_dataset)]
                ),
            )

        online = (
            np.concatenate(self._online_errors)
            if self._online_errors
            else np.zeros(0, dtype=bool)
        )
        per_sample_epsilon = max(
            (actor.device.accountant.spend().per_sample_epsilon for actor in self._actors),
            default=0.0,
        )
        self._comm.messages_dropped = sum(
            actor.request_channel.stats.messages_dropped
            + actor.checkout_channel.stats.messages_dropped
            + actor.checkin_channel.stats.messages_dropped
            for actor in self._actors
        )
        return RunTrace(
            curve=curve,
            online_errors=online,
            final_parameters=self._server.parameters,
            total_samples_consumed=self._samples_consumed,
            server_iterations=self._server.iteration,
            communication=self._comm,
            per_sample_epsilon=per_sample_epsilon,
            stop_reason=self._stopped_reason,
            staleness=np.asarray(self._staleness, dtype=np.int64),
        )
