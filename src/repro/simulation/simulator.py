"""Event-driven simulation of a Crowd-ML deployment (Section V-C).

The :class:`CrowdSimulator` wires M :class:`~repro.core.device.Device`
actors and one :class:`~repro.core.server.CrowdMLServer` over delayed,
possibly lossy :class:`~repro.network.channel.Channel`s, and drives the
whole system from a deterministic
:class:`~repro.network.events.EventQueue`:

* each device's samples arrive at rate F_s (staggered start offsets);
* a full minibatch triggers the Fig. 2 round trip — request (τ_req),
  check-out (τ_co), local gradient + sanitize, check-in (τ_ci);
* the server applies updates in arrival order, so staleness emerges
  naturally: a check-in computed against w(t₀) may be applied at t ≫ t₀.

Test error is snapshotted on an iteration grid (iteration = samples
consumed crowd-wide, matching the figures' x axes).

Between stochastic events (message deliveries, outages, churn), a
device's sample arrivals are *fully deterministic*: they land on the
fixed grid ``offset + k/F_s``.  The default ``arrival_mode="batch"``
therefore never schedules per-sample events — it precomputes each
device's arrival-time grid (exact float accumulation, matching the
legacy scheduler bit for bit), schedules one heap event at the device's
next check-out trigger, and advances the whole span of arrivals in a
single vectorized :meth:`~repro.core.device.Device.observe_batch` call
when a trigger or a check-out delivery fires.  Heap traffic drops from
O(total samples) to O(check-ins); traces are bit-identical to the
legacy ``arrival_mode="per_sample"`` scheduler (see
:mod:`repro.evaluation.compare` and the cross-path equivalence suite).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.core.config import DeviceConfig, ServerConfig
from repro.core.device import Device
from repro.core.protocol import CheckinMessage, CheckoutRequest, CheckoutResponse
from repro.core.server import CrowdMLServer
from repro.data.dataset import Dataset
from repro.evaluation.curves import ErrorCurve
from repro.evaluation.metrics import snapshot_grid, test_error
from repro.models.base import Model
from repro.network.channel import Channel
from repro.network.events import EventQueue
from repro.optim.projection import IdentityProjection, L2BallProjection
from repro.optim.schedules import InverseSqrtRate
from repro.optim.sgd import SGD
from repro.privacy.budget import split_budget
from repro.simulation.config import SimulationConfig
from repro.simulation.trace import CommunicationStats, RunTrace
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RngFactory


class _DeviceActor:
    """A device plus its sample arrivals and network endpoints.

    In ``per_sample`` mode, ``stream`` lazily yields one (features, label)
    pair per scheduled sample event.  In ``batch`` mode the arrival plan is
    precomputed instead: ``arrival_times[k]`` is the exact event time the
    legacy scheduler would have assigned to the k-th arrival,
    ``arrival_order[k]`` the dataset row it delivers, and ``arrival_limit``
    the number of arrivals that happen before the device's churn leave
    time.  ``next_arrival`` tracks how far the device has been advanced.
    """

    def __init__(
        self,
        device: Device,
        dataset: Dataset,
        request_channel: Channel,
        checkout_channel: Channel,
        checkin_channel: Channel,
        start_offset: float,
    ):
        self.device = device
        self.dataset = dataset
        self.request_channel = request_channel
        self.checkout_channel = checkout_channel
        self.checkin_channel = checkin_channel
        self.start_offset = start_offset
        self.exhausted = False
        # per_sample mode
        self.stream: Optional[Iterator[tuple[np.ndarray, int]]] = None
        # batch mode
        self.arrival_times: Optional[np.ndarray] = None
        self.arrival_order: Optional[np.ndarray] = None
        self.arrival_limit = 0
        self.next_arrival = 0
        self.trigger_index = 0


class CrowdSimulator:
    """Simulates one full Crowd-ML run.

    Parameters
    ----------
    model:
        Task definition (shared by server and devices).
    device_datasets:
        One local dataset per device (length = M).
    test_dataset:
        Clean evaluation set for the error curve.
    config:
        All simulation knobs.
    seed:
        Root seed; every random stream (delays, noise, shuffles, offsets)
        derives from it.

    Examples
    --------
    >>> from repro.data import make_mnist_like, iid_partition
    >>> from repro.models import MulticlassLogisticRegression
    >>> import numpy as np
    >>> train, test = make_mnist_like(num_train=200, num_test=100)
    >>> parts = iid_partition(train, 10, np.random.default_rng(0))
    >>> model = MulticlassLogisticRegression(50, 10)
    >>> sim = CrowdSimulator(model, parts, test,
    ...                      SimulationConfig(num_devices=10), seed=0)
    >>> trace = sim.run()
    >>> trace.total_samples_consumed > 0
    True
    """

    def __init__(
        self,
        model: Model,
        device_datasets: List[Dataset],
        test_dataset: Dataset,
        config: SimulationConfig,
        seed: int = 0,
    ):
        if len(device_datasets) != config.num_devices:
            raise ConfigurationError(
                f"got {len(device_datasets)} device datasets for "
                f"{config.num_devices} devices"
            )
        self._model = model
        self._device_datasets = device_datasets
        self._test_dataset = test_dataset
        self._config = config
        self._rng_factory = RngFactory(seed)
        self._queue = EventQueue()

        projection = (
            L2BallProjection(config.projection_radius)
            if config.projection_radius is not None
            else IdentityProjection()
        )
        optimizer = SGD(
            model.init_parameters(),
            schedule=InverseSqrtRate(config.learning_rate_constant),
            projection=projection,
        )
        total_samples = sum(len(ds) for ds in device_datasets) * config.num_passes
        max_iterations = config.max_iterations
        if max_iterations is None:
            # Every check-in applies >= 1 sample, so a cap one beyond the
            # total sample count can never bind before the data runs out.
            max_iterations = total_samples + 1
        server_config = ServerConfig(
            max_iterations=max_iterations, target_error=config.target_error
        )
        self._server = CrowdMLServer(model, optimizer, server_config)
        self._total_samples = total_samples
        self._batch_arrivals = config.arrival_mode == "batch"

        self._actors = [self._build_actor(m) for m in range(config.num_devices)]

        self._grid = snapshot_grid(max(total_samples, 1), config.num_snapshots)
        self._grid_pos = 0
        self._snapshot_iters: list[int] = []
        self._snapshot_errors: list[float] = []
        self._online_errors: list[np.ndarray] = []
        self._samples_consumed = 0
        self._comm = CommunicationStats()
        self._staleness: list[int] = []
        self._stopped_reason: Optional[str] = None

    @property
    def server(self) -> CrowdMLServer:
        return self._server

    @property
    def config(self) -> SimulationConfig:
        return self._config

    @property
    def events_fired(self) -> int:
        """Heap events executed so far (the throughput benchmark's y axis)."""
        return self._queue.fired

    def _build_actor(self, device_index: int) -> _DeviceActor:
        config = self._config
        budget = split_budget(config.epsilon, self._model.num_classes)
        device_config = DeviceConfig(
            batch_size=config.batch_size,
            buffer_capacity=config.batch_size * config.buffer_factor,
            budget=budget,
            holdout_fraction=config.holdout_fraction,
        )
        device_rng = self._rng_factory.generator("device", device_index)
        token = self._server.register_device(device_index)
        batch_policy = (
            config.batch_policy_factory()
            if config.batch_policy_factory is not None
            else None
        )
        device = Device(
            device_index, self._model, device_config, token, device_rng,
            batch_policy=batch_policy,
        )

        network_rng = self._rng_factory.generator("network", device_index)
        delays = config.link_delays
        request_channel = Channel(
            self._queue, delays.request, config.outage, network_rng,
            name=f"request-{device_index}",
        )
        checkout_channel = Channel(
            self._queue, delays.checkout, config.outage, network_rng,
            name=f"checkout-{device_index}",
        )
        checkin_channel = Channel(
            self._queue, delays.checkin, config.outage, network_rng,
            name=f"checkin-{device_index}",
        )
        offset_rng = self._rng_factory.generator("offset", device_index)
        # Stagger device start times over one full minibatch period: real
        # devices join a task at arbitrary times, so their check-in phases
        # are desynchronized.  (With a common start, all M devices fill
        # their minibatches simultaneously and every round delivers M
        # synchronized check-ins — inflating gradient staleness to ~M/2
        # independent of the network delay.)
        start_offset = float(
            offset_rng.uniform(0.0, config.batch_size / config.sampling_rate)
        )
        actor = _DeviceActor(
            device, self._device_datasets[device_index],
            request_channel, checkout_channel, checkin_channel, start_offset,
        )
        if self._batch_arrivals:
            self._plan_arrivals(actor, device_index)
        else:
            actor.stream = self._sample_stream(device_index)
        return actor

    def _sample_stream(self, device_index: int) -> Iterator[tuple[np.ndarray, int]]:
        """The device's local data, reshuffled each pass."""
        dataset = self._device_datasets[device_index]
        shuffle_rng = self._rng_factory.generator("shuffle", device_index)
        for _ in range(self._config.num_passes):
            if len(dataset) == 0:
                return
            order = shuffle_rng.permutation(len(dataset))
            for index in order:
                yield dataset.features[index], int(dataset.labels[index])

    def _plan_arrivals(self, actor: _DeviceActor, device_index: int) -> None:
        """Precompute the device's deterministic arrival grid.

        Arrival k of the legacy scheduler fires at the float obtained by
        adding ``1/F_s`` to the previous arrival time, starting from
        ``start_offset (+ join time)`` — ``np.add.accumulate`` performs
        exactly that left-to-right IEEE-754 accumulation, so the grid is
        bit-identical to the per-sample event times.  Per-pass shuffles
        draw from the same dedicated "shuffle" stream in the same order
        as the legacy generator, and arrivals at or past the churn leave
        time are cut off exactly as the legacy leave check would.
        """
        config = self._config
        dataset = actor.dataset
        shuffle_rng = self._rng_factory.generator("shuffle", device_index)
        per_pass = len(dataset)
        if per_pass == 0:
            actor.arrival_times = np.empty(0, dtype=np.float64)
            actor.arrival_order = np.empty(0, dtype=np.int64)
            actor.arrival_limit = 0
            return
        actor.arrival_order = np.concatenate(
            [shuffle_rng.permutation(per_pass) for _ in range(config.num_passes)]
        )
        total = actor.arrival_order.shape[0]
        first = actor.start_offset
        if config.churn is not None:
            first = first + float(config.churn.join_times[device_index])
        steps = np.empty(total, dtype=np.float64)
        steps[0] = 0.0 + first
        steps[1:] = 1.0 / config.sampling_rate
        actor.arrival_times = np.add.accumulate(steps)
        actor.arrival_limit = total
        if config.churn is not None:
            # The legacy scheduler silences the device at the first sample
            # event with now >= leave; only arrivals strictly before the
            # leave time are observed.
            actor.arrival_limit = int(
                np.searchsorted(
                    actor.arrival_times,
                    float(config.churn.leave_times[device_index]),
                    side="left",
                )
            )

    # ------------------------------------------------------------------ #
    # Event handlers — legacy per-sample arrivals                        #
    # ------------------------------------------------------------------ #

    def _schedule_next_sample(self, actor: _DeviceActor, first: bool = False) -> None:
        if self._stopped_reason is not None:
            return
        delay = actor.start_offset if first else 1.0 / self._config.sampling_rate
        if first and self._config.churn is not None:
            # Devices join the task at their scheduled time (Fig. 2).
            delay += float(self._config.churn.join_times[actor.device.device_id])
        self._queue.schedule_after(delay, self._on_sample, tag="sample", args=(actor,))

    def _on_sample(self, actor: _DeviceActor) -> None:
        if self._stopped_reason is not None:
            return
        churn = self._config.churn
        if churn is not None and self._queue.now >= float(
            churn.leave_times[actor.device.device_id]
        ):
            # The device left the task: it goes silent (no more samples,
            # requests, or check-ins) but the rest of the crowd continues.
            actor.exhausted = True
            return
        try:
            features, label = next(actor.stream)
        except StopIteration:
            actor.exhausted = True
            return
        wants_checkout = actor.device.observe(features, label)
        if wants_checkout:
            self._send_checkout_request(actor)
        self._schedule_next_sample(actor)

    # ------------------------------------------------------------------ #
    # Event handlers — batch arrivals (the fast path)                    #
    # ------------------------------------------------------------------ #
    #
    # Invariant: an active device has exactly one pending progress event —
    # either a trigger (the arrival that fills its minibatch) or an
    # in-flight check-out round trip.  Arrivals between progress events
    # are advanced lazily in one vectorized step, so the heap sees
    # O(check-ins) events instead of O(total samples).

    def _advance_arrivals(self, actor: _DeviceActor, end: int) -> None:
        """Deliver arrivals ``[next_arrival, end)`` to the device at once."""
        end = min(end, actor.arrival_limit)
        if end <= actor.next_arrival:
            return
        rows = actor.arrival_order[actor.next_arrival:end]
        dataset = actor.dataset
        actor.device.observe_rows(dataset.features, dataset.labels, rows)
        actor.next_arrival = end

    def _advance_arrivals_until(self, actor: _DeviceActor, time: float) -> None:
        """Deliver every arrival strictly before ``time``.

        Matches the legacy event order for continuous or zero delay
        distributions, where a sample arriving at *exactly* a delivery's
        timestamp has probability zero (see ``SimulationConfig.arrival_mode``).
        """
        end = int(np.searchsorted(actor.arrival_times, time, side="left"))
        self._advance_arrivals(actor, end)

    def _schedule_trigger(self, actor: _DeviceActor) -> None:
        """Schedule the arrival that completes the device's next minibatch.

        From a quiescent device state (no request in flight), the next
        check-out trigger is deterministic: the legacy scheduler would fire
        it at the arrival that lifts the buffer to the current batch size
        (or at the very next arrival, when a failed check-out left the
        buffer already full).  Exhausted or churned-out devices schedule
        nothing and go silent exactly like a dead sample chain.
        """
        if self._stopped_reason is not None:
            return
        device = actor.device
        needed = max(device.current_batch_size - device.buffer_size, 1)
        index = actor.next_arrival + needed - 1
        if index >= actor.arrival_limit:
            actor.exhausted = True
            return
        actor.trigger_index = index
        self._queue.schedule(
            float(actor.arrival_times[index]), self._on_trigger,
            tag="trigger", args=(actor,),
        )

    def _on_trigger(self, actor: _DeviceActor) -> None:
        if self._stopped_reason is not None:
            return
        self._advance_arrivals(actor, actor.trigger_index + 1)
        delivered = self._send_checkout_request(actor)
        if not delivered:
            # Remark 1: the request was lost in an outage; the buffer is
            # intact and the very next arrival re-triggers.
            self._schedule_trigger(actor)

    # ------------------------------------------------------------------ #
    # Event handlers — the check-out/check-in round trip (both modes)    #
    # ------------------------------------------------------------------ #

    def _send_checkout_request(self, actor: _DeviceActor) -> bool:
        actor.device.mark_checkout_requested()
        request = CheckoutRequest(
            device_id=actor.device.device_id,
            token=actor.device.token,
            request_time=self._queue.now,
        )
        self._comm.checkout_requests += 1
        return actor.request_channel.send(
            deliver=lambda: self._on_request_arrival(actor, request),
            payload_floats=request.payload_floats,
            on_drop=actor.device.on_checkout_failed,
        )

    def _on_request_arrival(self, actor: _DeviceActor, request: CheckoutRequest) -> None:
        if self._stopped_reason is not None or self._server.stopped:
            actor.device.on_checkout_failed()
            self._resume_after_failed_checkout(actor)
            return
        response = self._server.handle_checkout(request)
        self._comm.downlink_floats += response.payload_floats
        delivered = actor.checkout_channel.send(
            deliver=lambda: self._on_checkout_arrival(actor, response),
            payload_floats=response.payload_floats,
            on_drop=actor.device.on_checkout_failed,
        )
        if not delivered:
            self._resume_after_failed_checkout(actor)

    def _resume_after_failed_checkout(self, actor: _DeviceActor) -> None:
        """Batch mode: restart the trigger chain after a lost check-out.

        The legacy scheduler needs no equivalent — its sample events keep
        firing and the next one re-triggers.  Here the arrivals buffered
        while the request was in flight are advanced first (they drew
        their holdout randomness before the failure in the legacy order),
        then the next arrival re-triggers.
        """
        if not self._batch_arrivals or self._stopped_reason is not None:
            return
        self._advance_arrivals_until(actor, self._queue.now)
        self._schedule_trigger(actor)

    def _on_checkout_arrival(self, actor: _DeviceActor, response: CheckoutResponse) -> None:
        if self._stopped_reason is not None:
            return
        self._comm.checkouts_delivered += 1
        if self._batch_arrivals:
            # Samples that arrived while the check-out was in flight were
            # buffered (and consumed holdout randomness) before this
            # delivery fired in the legacy order.
            self._advance_arrivals_until(actor, self._queue.now)
        if actor.device.buffer_size == 0:
            # Buffer was consumed by a racing check-out; nothing to do.
            actor.device.on_checkout_failed()
            if self._batch_arrivals:
                self._schedule_trigger(actor)
            return
        result = actor.device.complete_checkout(
            response.parameters, response.server_iteration
        )
        self._online_errors.append(result.per_sample_errors)
        message = result.message
        self._comm.uplink_floats += message.payload_floats
        actor.checkin_channel.send(
            deliver=lambda: self._on_checkin_arrival(actor, message),
            payload_floats=message.payload_floats,
        )
        if self._batch_arrivals:
            # The buffer is empty again (and an adaptive policy may have
            # just changed b): the next trigger is deterministic from here.
            self._schedule_trigger(actor)

    def _on_checkin_arrival(self, actor: _DeviceActor, message: CheckinMessage) -> None:
        if self._stopped_reason is not None or self._server.stopped:
            return
        self._staleness.append(self._server.iteration - message.checkout_iteration)
        self._server.handle_checkin(message)
        self._comm.checkins_delivered += 1
        self._samples_consumed += message.num_samples
        self._maybe_snapshot()
        decision = self._server.stopping_decision()
        if decision.stopped:
            self._stopped_reason = decision.reason.value

    def _maybe_snapshot(self) -> None:
        while (
            self._grid_pos < self._grid.shape[0]
            and self._samples_consumed >= self._grid[self._grid_pos]
        ):
            self._snapshot_iters.append(self._samples_consumed)
            self._snapshot_errors.append(
                test_error(self._model, self._server.parameters, self._test_dataset)
            )
            self._grid_pos += 1

    # ------------------------------------------------------------------ #
    # Run                                                                #
    # ------------------------------------------------------------------ #

    def run(self) -> RunTrace:
        """Execute the simulation to completion and return its trace."""
        for actor in self._actors:
            if self._batch_arrivals:
                self._schedule_trigger(actor)
            else:
                self._schedule_next_sample(actor, first=True)
        while self._queue.step():
            pass

        if self._stopped_reason is None:
            self._stopped_reason = "data_exhausted"

        if not self._snapshot_iters or self._snapshot_iters[-1] != self._samples_consumed:
            if self._samples_consumed > 0:
                self._snapshot_iters.append(self._samples_consumed)
                self._snapshot_errors.append(
                    test_error(self._model, self._server.parameters, self._test_dataset)
                )

        iters = np.asarray(self._snapshot_iters, dtype=np.int64)
        errors = np.asarray(self._snapshot_errors, dtype=np.float64)
        if iters.size:
            _, first_idx = np.unique(iters, return_index=True)
            curve = ErrorCurve(iters[first_idx], errors[first_idx])
        else:
            curve = ErrorCurve(
                np.array([1], dtype=np.int64),
                np.array(
                    [test_error(self._model, self._server.parameters, self._test_dataset)]
                ),
            )

        online = (
            np.concatenate(self._online_errors)
            if self._online_errors
            else np.zeros(0, dtype=bool)
        )
        per_sample_epsilon = max(
            (actor.device.accountant.spend().per_sample_epsilon for actor in self._actors),
            default=0.0,
        )
        self._comm.messages_dropped = sum(
            actor.request_channel.stats.messages_dropped
            + actor.checkout_channel.stats.messages_dropped
            + actor.checkin_channel.stats.messages_dropped
            for actor in self._actors
        )
        return RunTrace(
            curve=curve,
            online_errors=online,
            final_parameters=self._server.parameters,
            total_samples_consumed=self._samples_consumed,
            server_iterations=self._server.iteration,
            communication=self._comm,
            per_sample_epsilon=per_sample_epsilon,
            stop_reason=self._stopped_reason,
            staleness=np.asarray(self._staleness, dtype=np.int64),
        )
