"""Simulated crowd environment: config, event-driven simulator, trial runner."""

from repro.simulation.churn import ChurnSchedule
from repro.simulation.config import SimulationConfig
from repro.simulation.runner import TrialSetReport, run_crowd_trials
from repro.simulation.selection import SelectionResult, select_hyperparameters
from repro.simulation.simulator import CrowdSimulator
from repro.simulation.trace import CommunicationStats, RunTrace

__all__ = [
    "ChurnSchedule",
    "CommunicationStats",
    "CrowdSimulator",
    "RunTrace",
    "SelectionResult",
    "SimulationConfig",
    "TrialSetReport",
    "run_crowd_trials",
    "select_hyperparameters",
]
