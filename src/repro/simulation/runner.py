"""Multi-trial experiment runner (Section V-C: "averaged ... from 10 trials").

Each trial re-randomizes the sample-to-device assignment, device order,
perturbation noise, and delays (exactly the paper's list) by deriving every
stream from the trial seed.  Curves are averaged on a common grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.data.partition import iid_partition
from repro.evaluation.curves import ErrorCurve, average_curves
from repro.models.base import Model
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import CrowdSimulator
from repro.simulation.trace import RunTrace
from repro.utils.rng import RngFactory

PartitionFn = Callable[[Dataset, int, np.random.Generator], List[Dataset]]


@dataclass(frozen=True)
class TrialSetReport:
    """Aggregated output of several independent trials."""

    mean_curve: ErrorCurve
    traces: tuple[RunTrace, ...]

    @property
    def num_trials(self) -> int:
        return len(self.traces)

    @property
    def final_error(self) -> float:
        return self.mean_curve.final_error

    def tail_error(self, fraction: float = 0.2) -> float:
        """Mean tail error of the averaged curve."""
        return self.mean_curve.tail_error(fraction)


def run_crowd_trials(
    model_factory: Callable[[], Model],
    train: Dataset,
    test: Dataset,
    config: SimulationConfig,
    num_trials: int = 10,
    base_seed: int = 0,
    partition: Optional[PartitionFn] = None,
) -> TrialSetReport:
    """Run ``num_trials`` independent Crowd-ML simulations and average.

    ``model_factory`` builds a fresh model per trial (models are stateless,
    but a factory keeps trials fully isolated).  ``partition`` defaults to
    the paper's i.i.d. random assignment.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    partition = partition if partition is not None else iid_partition
    factory = RngFactory(base_seed)
    traces: list[RunTrace] = []
    for trial in range(num_trials):
        assignment_rng = factory.generator("assignment", trial)
        device_datasets = partition(train, config.num_devices, assignment_rng)
        simulator = CrowdSimulator(
            model_factory(),
            device_datasets,
            test,
            config,
            seed=factory.seed("simulator", trial),
        )
        traces.append(simulator.run())
    mean_curve = average_curves([trace.curve for trace in traces])
    return TrialSetReport(mean_curve=mean_curve, traces=tuple(traces))
