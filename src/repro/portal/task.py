"""Crowd-learning task descriptors for the Web portal (Section V-A).

The prototype's portal lets users *browse ongoing crowd-learning tasks and
join them*, and — "to enhance transparency" — explains each task's
objective, the sensory data and labels collected, the learning algorithm,
and the privacy mechanism.  :class:`TaskDescriptor` is that transparency
record, rendered by :meth:`TaskDescriptor.describe`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.privacy.budget import PrivacyBudget
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class TaskDescriptor:
    """Public description of one crowd-learning task.

    Attributes
    ----------
    task_id:
        Stable identifier shown in the portal URL.
    name, objective:
        Human-readable title and goal ("recognize user activity ...").
    sensors:
        Sensory inputs collected (e.g. ``("accelerometer",)``).
    labels:
        The label vocabulary (e.g. Still / On Foot / In Vehicle).
    algorithm:
        Learning-algorithm description ("3-class logistic regression").
    batch_size:
        Device minibatch size b.
    budget:
        Per-sample privacy levels disclosed to participants.
    """

    task_id: str
    name: str
    objective: str
    sensors: tuple[str, ...]
    labels: tuple[str, ...]
    algorithm: str
    batch_size: int
    budget: PrivacyBudget

    def __post_init__(self):
        if not self.task_id:
            raise ConfigurationError("task_id must be non-empty")
        if not self.labels:
            raise ConfigurationError("labels must be non-empty")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if len(self.labels) != self.budget.num_classes:
            raise ConfigurationError(
                f"labels ({len(self.labels)}) must match budget classes "
                f"({self.budget.num_classes})"
            )

    @property
    def privacy_summary(self) -> str:
        """One-line ε disclosure."""
        total = self.budget.total_epsilon
        if math.isinf(total):
            return "no differential-privacy noise (epsilon = inf)"
        return (
            f"per-sample epsilon = {total:.4g} "
            f"(gradient {self.budget.epsilon_gradient:.4g}, "
            f"error count {self.budget.epsilon_error:.4g}, "
            f"each label count {self.budget.epsilon_label:.4g})"
        )

    def describe(self) -> str:
        """The portal's transparency page, as plain text."""
        lines = [
            f"Task: {self.name}  [{self.task_id}]",
            f"Objective: {self.objective}",
            f"Sensors collected: {', '.join(self.sensors) if self.sensors else 'none'}",
            f"Labels collected: {', '.join(self.labels)}",
            f"Learning algorithm: {self.algorithm}",
            f"Device minibatch size: {self.batch_size}",
            f"Privacy mechanism: local differential privacy — {self.privacy_summary}",
        ]
        return "\n".join(lines)
