"""The portal's statistics dashboard (Section V-A).

The prototype "displays timely statistics about crowd-learning applications
such as error rates and activity label distributions, which are
differentially private".  Everything rendered here comes from the server's
:class:`~repro.core.monitor.ProgressMonitor` — i.e. exclusively from the
DP-sanitized counts, never from raw data — so publishing the dashboard is
pure post-processing and consumes no extra privacy budget.

Rendering is dependency-free text (the prototype used Matplotlib; an ASCII
bar chart carries the same information here).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.monitor import ProgressMonitor


def ascii_bar_chart(
    values: Sequence[float],
    labels: Sequence[str],
    width: int = 40,
    fill: str = "#",
) -> str:
    """Horizontal ASCII bar chart of non-negative values.

    >>> print(ascii_bar_chart([0.5, 1.0], ["a", "b"], width=4))
    a |##   0.5
    b |#### 1
    """
    if len(values) != len(labels):
        raise ValueError("values and labels must have equal length")
    if width < 1:
        raise ValueError("width must be >= 1")
    values = [max(float(v), 0.0) for v in values]
    peak = max(values) if values else 0.0
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        bar_len = int(round(width * value / peak)) if peak > 0 else 0
        lines.append(
            f"{label:<{label_width}} |{fill * bar_len}{' ' * (width - bar_len)} "
            f"{value:g}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend rendering, e.g. for the error-rate history.

    >>> sparkline([1.0, 0.5, 0.0])
    '█▅▁'
    """
    blocks = "▁▂▃▄▅▆▇█"
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    low, high = float(values.min()), float(values.max())
    if high == low:
        return blocks[0] * values.size
    scaled = (values - low) / (high - low) * (len(blocks) - 1)
    return "".join(blocks[int(round(v))] for v in scaled)


class Dashboard:
    """Renders DP statistics for one running task.

    Parameters
    ----------
    monitor:
        The server's progress monitor (the only data source).
    label_names:
        Display names for the C classes.
    """

    def __init__(self, monitor: ProgressMonitor, label_names: Sequence[str]):
        if len(label_names) != monitor.num_classes:
            raise ValueError(
                f"need {monitor.num_classes} label names, got {len(label_names)}"
            )
        self._monitor = monitor
        self._label_names = list(label_names)
        self._error_history: list[float] = []

    @property
    def error_history(self) -> list[float]:
        """Snapshots taken so far (copy)."""
        return list(self._error_history)

    def snapshot(self) -> float:
        """Record the current DP error estimate into the trend history."""
        estimate = self._monitor.error_estimate()
        self._error_history.append(estimate)
        return estimate

    def render(self) -> str:
        """The full dashboard as plain text."""
        monitor = self._monitor
        lines = [
            "=== Crowd-ML task statistics (differentially private) ===",
            f"devices seen     : {monitor.num_devices_seen}",
            f"check-ins        : {monitor.num_checkins}",
            f"samples counted  : {monitor.total_samples}",
            f"error estimate   : {monitor.error_estimate():.3f}",
        ]
        if self._error_history:
            lines.append(f"error trend      : {sparkline(self._error_history)}")
        lines.append("label distribution estimate:")
        lines.append(
            ascii_bar_chart(monitor.prior_estimate().tolist(), self._label_names)
        )
        return "\n".join(lines)
