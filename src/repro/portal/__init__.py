"""The Web-portal substrate of the prototype (Section V-A).

Users browse ongoing crowd-learning tasks, read each task's transparency
record (objective, data collected, algorithm, privacy mechanism), join
with their devices, and view differentially private progress statistics.
"""

from repro.portal.dashboard import Dashboard, ascii_bar_chart, sparkline
from repro.portal.portal import Enrollment, Portal
from repro.portal.task import TaskDescriptor

__all__ = [
    "Dashboard",
    "Enrollment",
    "Portal",
    "TaskDescriptor",
    "ascii_bar_chart",
    "sparkline",
]
