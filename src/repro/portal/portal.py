"""The Web-portal facade (Section V-A): browse tasks, join, view stats.

Binds task descriptors to running :class:`~repro.core.server.CrowdMLServer`
instances.  Joining a task registers the device with the server's
authentication registry and hands back everything a device app needs: the
token and the :class:`~repro.core.config.DeviceConfig` (minibatch size,
buffer cap, privacy budget) matching the task's public description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.config import DeviceConfig
from repro.core.server import CrowdMLServer
from repro.portal.dashboard import Dashboard
from repro.portal.task import TaskDescriptor
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class Enrollment:
    """What a device receives when it joins a task."""

    task_id: str
    device_id: int
    token: str
    device_config: DeviceConfig


class Portal:
    """Registry of ongoing crowd-learning tasks.

    Examples
    --------
    >>> import math
    >>> from repro.core import CrowdMLServer, ServerConfig
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.privacy import split_budget
    >>> model = MulticlassLogisticRegression(4, 2)
    >>> server = CrowdMLServer(model, config=ServerConfig(max_iterations=10))
    >>> task = TaskDescriptor(
    ...     task_id="demo", name="Demo", objective="demo",
    ...     sensors=("accelerometer",), labels=("a", "b"),
    ...     algorithm="logistic regression", batch_size=1,
    ...     budget=split_budget(math.inf, 2))
    >>> portal = Portal()
    >>> portal.publish(task, server)
    >>> enrollment = portal.join("demo")
    >>> enrollment.device_id
    0
    """

    def __init__(self):
        self._tasks: Dict[str, TaskDescriptor] = {}
        self._servers: Dict[str, CrowdMLServer] = {}
        self._dashboards: Dict[str, Dashboard] = {}
        self._next_device_id: Dict[str, int] = {}

    def publish(
        self,
        task: TaskDescriptor,
        server: CrowdMLServer,
        *,
        buffer_factor: int = 10,
    ) -> None:
        """Make a task browsable and joinable."""
        if task.task_id in self._tasks:
            raise ConfigurationError(f"task {task.task_id!r} already published")
        if server.model.num_classes != task.budget.num_classes:
            raise ConfigurationError(
                "server model and task budget disagree on num_classes"
            )
        self._tasks[task.task_id] = task
        self._servers[task.task_id] = server
        self._dashboards[task.task_id] = Dashboard(server.monitor, task.labels)
        self._next_device_id[task.task_id] = 0
        self._buffer_factor = buffer_factor

    def tasks(self) -> list[TaskDescriptor]:
        """All published tasks (browse view)."""
        return list(self._tasks.values())

    def get_task(self, task_id: str) -> TaskDescriptor:
        if task_id not in self._tasks:
            raise ConfigurationError(f"unknown task {task_id!r}")
        return self._tasks[task_id]

    def server_for(self, task_id: str) -> CrowdMLServer:
        """The running server behind a task."""
        self.get_task(task_id)
        return self._servers[task_id]

    def join(self, task_id: str) -> Enrollment:
        """Enroll a new device in a task ("downloading the app")."""
        task = self.get_task(task_id)
        server = self._servers[task_id]
        device_id = self._next_device_id[task_id]
        self._next_device_id[task_id] = device_id + 1
        token = server.register_device(device_id)
        device_config = DeviceConfig(
            batch_size=task.batch_size,
            buffer_capacity=task.batch_size * self._buffer_factor,
            budget=task.budget,
        )
        return Enrollment(
            task_id=task_id,
            device_id=device_id,
            token=token,
            device_config=device_config,
        )

    def leave(self, task_id: str, device_id: int) -> None:
        """Revoke a device's access (devices may leave at any time)."""
        self.server_for(task_id).registry.revoke(device_id)

    def dashboard(self, task_id: str) -> Dashboard:
        """DP statistics dashboard for one task."""
        self.get_task(task_id)
        return self._dashboards[task_id]

    def render_index(self) -> str:
        """The portal landing page as plain text."""
        if not self._tasks:
            return "No crowd-learning tasks are currently running."
        sections = []
        for task in self._tasks.values():
            server = self._servers[task.task_id]
            status = "stopped" if server.stopped else "running"
            sections.append(
                f"[{status}] {task.name} ({task.task_id}) — "
                f"{server.registry.num_registered} devices enrolled, "
                f"iteration {server.iteration}"
            )
        return "\n".join(sections)
