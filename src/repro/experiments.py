"""Experiment definitions for every figure in the paper (DESIGN.md §4).

Each ``run_figN_experiment`` function reproduces one figure's arms and
returns a :class:`FigureResult` mapping arm labels to averaged error curves
(plus scalar reference lines for the batch baselines).  The benchmark
harness (``benchmarks/``) and the standalone regenerator scripts both call
these functions; scale is controlled by :class:`ExperimentScale` so the
same code runs the paper-size experiment or a CI-size smoke version.

Paper-scale settings (Section V-C): M = 1000 devices, 60 000/50 000 train
samples, 10 000 test samples, 10 trials, up to five passes.  The default
:meth:`ExperimentScale.benchmark` uses a proportionally reduced crowd that
preserves every qualitative relationship (samples-per-device, ε, b, Δ are
unchanged or scale-free).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.baselines import (
    CentralizedBatchTrainer,
    CentralizedSGDTrainer,
    DecentralizedTrainer,
)
from repro.data import (
    NUM_ACTIVITIES,
    make_activity_stream,
    make_cifar_like,
    make_mnist_like,
)
from repro.data.dataset import Dataset
from repro.evaluation.curves import ErrorCurve
from repro.models import MulticlassLogisticRegression
from repro.network import LinkDelays
from repro.optim import InverseSqrtRate
from repro.privacy import CentralizedBudget
from repro.simulation import CrowdSimulator, SimulationConfig, run_crowd_trials

#: Hyperparameters selected (per Section V-C's model-selection protocol) on
#: held-out trials for the synthetic datasets.
LEARNING_RATE_CONSTANT = 30.0
L2_REGULARIZATION = 1e-4
#: Fig. 5/6/8/9 privacy level: ε⁻¹ = 0.1.
FIG5_EPSILON = 10.0


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs for one experiment run.

    ``paper()`` reproduces the published sizes; ``benchmark()`` is the
    reduced configuration used by the bench harness (same samples-per-
    device ratio: 60 per device); ``smoke()`` is for fast tests.
    """

    num_train: int
    num_test: int
    num_devices: int
    num_trials: int
    num_passes: int

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(num_train=60_000, num_test=10_000, num_devices=1000,
                   num_trials=10, num_passes=5)

    @classmethod
    def benchmark(cls) -> "ExperimentScale":
        return cls(num_train=9_000, num_test=2_000, num_devices=150,
                   num_trials=2, num_passes=4)

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        return cls(num_train=1_500, num_test=500, num_devices=25,
                   num_trials=1, num_passes=2)


@dataclass
class FigureResult:
    """Curves and reference lines reproducing one figure."""

    figure: str
    curves: Dict[str, ErrorCurve] = field(default_factory=dict)
    reference_lines: Dict[str, float] = field(default_factory=dict)

    def tail_errors(self, fraction: float = 0.2) -> Dict[str, float]:
        """Asymptotic (tail-mean) error per arm."""
        return {name: curve.tail_error(fraction) for name, curve in self.curves.items()}

    def format_table(self) -> str:
        """Human-readable summary: one row per arm."""
        lines = [f"=== {self.figure} ===",
                 f"{'arm':<34} {'final':>8} {'tail':>8}"]
        for name, curve in sorted(self.curves.items()):
            lines.append(
                f"{name:<34} {curve.final_error:>8.3f} {curve.tail_error():>8.3f}"
            )
        for name, value in sorted(self.reference_lines.items()):
            lines.append(f"{name:<34} {value:>8.3f} {'(const)':>8}")
        return "\n".join(lines)


DatasetMaker = Callable[..., tuple[Dataset, Dataset]]


def _logistic_factory(num_features: int):
    return lambda: MulticlassLogisticRegression(
        num_features, 10, l2_regularization=L2_REGULARIZATION
    )


def _crowd_curve(
    train: Dataset,
    test: Dataset,
    scale: ExperimentScale,
    *,
    batch_size: int = 1,
    epsilon: float = math.inf,
    delay_multiples: float = 0.0,
    base_seed: int = 0,
) -> ErrorCurve:
    """One Crowd-ML arm: averaged curve over the scale's trials."""
    probe = SimulationConfig(num_devices=scale.num_devices)
    tau = probe.delay_in_sample_units(delay_multiples) if delay_multiples else 0.0
    config = SimulationConfig(
        num_devices=scale.num_devices,
        batch_size=batch_size,
        epsilon=epsilon,
        learning_rate_constant=LEARNING_RATE_CONSTANT,
        l2_regularization=L2_REGULARIZATION,
        link_delays=LinkDelays.uniform(tau) if tau > 0 else LinkDelays.zero(),
        num_passes=scale.num_passes,
    )
    report = run_crowd_trials(
        _logistic_factory(train.num_features),
        train,
        test,
        config,
        num_trials=scale.num_trials,
        base_seed=base_seed,
    )
    return report.mean_curve


def _approaches_figure(
    figure: str, maker: DatasetMaker, scale: ExperimentScale, seed: int = 0
) -> FigureResult:
    """Figs. 4/7: Central (batch) vs Crowd-ML vs Decentralized, no privacy
    or delay (ε⁻¹ = 0, b = 1, τ = 0)."""
    train, test = maker(num_train=scale.num_train, num_test=scale.num_test, seed=seed)
    result = FigureResult(figure)

    batch_trainer = CentralizedBatchTrainer(_logistic_factory(train.num_features)())
    result.reference_lines["Central (batch)"] = batch_trainer.evaluate(
        train, test, np.random.default_rng(seed)
    )

    result.curves["Crowd-ML (SGD)"] = _crowd_curve(train, test, scale)

    model = _logistic_factory(train.num_features)()
    decentralized = DecentralizedTrainer(
        model, InverseSqrtRate(LEARNING_RATE_CONSTANT), evaluation_devices=10
    )
    from repro.data import iid_partition

    parts = iid_partition(train, scale.num_devices, np.random.default_rng(seed + 1))
    result.curves["Decentral (SGD)"] = decentralized.fit(
        parts, test, np.random.default_rng(seed + 2), num_passes=scale.num_passes
    ).curve
    return result


def _privacy_figure(
    figure: str, maker: DatasetMaker, scale: ExperimentScale, seed: int = 0
) -> FigureResult:
    """Figs. 5/8: ε⁻¹ = 0.1, b ∈ {1, 10, 20}, Crowd-ML vs input-perturbed
    Central SGD vs input-perturbed Central batch."""
    train, test = maker(num_train=scale.num_train, num_test=scale.num_test, seed=seed)
    result = FigureResult(figure)
    budget = CentralizedBudget.even_split(FIG5_EPSILON)

    private_batch = CentralizedBatchTrainer(
        _logistic_factory(train.num_features)(), budget=budget
    )
    result.reference_lines["Central (batch)"] = private_batch.evaluate(
        train, test, np.random.default_rng(seed)
    )

    for b in (1, 10, 20):
        result.curves[f"Crowd-ML (SGD,b={b})"] = _crowd_curve(
            train, test, scale, batch_size=b, epsilon=FIG5_EPSILON,
            base_seed=seed + b,
        )
        sgd_trainer = CentralizedSGDTrainer(
            _logistic_factory(train.num_features)(),
            InverseSqrtRate(LEARNING_RATE_CONSTANT),
            batch_size=b,
            budget=budget,
        )
        result.curves[f"Central (SGD,b={b})"] = sgd_trainer.fit(
            train, test, np.random.default_rng(seed + 100 + b),
            num_passes=scale.num_passes,
        ).curve
    return result


def _delay_figure(
    figure: str, maker: DatasetMaker, scale: ExperimentScale, seed: int = 0
) -> FigureResult:
    """Figs. 6/9: ε⁻¹ = 0.1, b ∈ {1, 20}, delays ∈ {1, 10, 100, 1000}·Δ."""
    train, test = maker(num_train=scale.num_train, num_test=scale.num_test, seed=seed)
    result = FigureResult(figure)

    private_batch = CentralizedBatchTrainer(
        _logistic_factory(train.num_features)(),
        budget=CentralizedBudget.even_split(FIG5_EPSILON),
    )
    result.reference_lines["Central (batch)"] = private_batch.evaluate(
        train, test, np.random.default_rng(seed)
    )

    for b in (1, 20):
        for delay in (1, 10, 100, 1000):
            label = f"Crowd-ML (b={b},{delay}D)"
            result.curves[label] = _crowd_curve(
                train, test, scale, batch_size=b, epsilon=FIG5_EPSILON,
                delay_multiples=delay, base_seed=seed + 1000 * b + delay,
            )
    return result


def run_fig3_experiment(
    num_devices: int = 7,
    samples_per_device: int = 45,
    learning_rates: tuple[float, ...] = (1e-2, 1e0, 1e2, 1e4),
    seed: int = 0,
) -> FigureResult:
    """Fig. 3: activity recognition on 7 devices, time-averaged error.

    The paper's setting: 3-class logistic regression, λ = 0, b = 1,
    ε⁻¹ = 0, a sweep of learning-rate constants c; the error shown is the
    online time-averaged prediction error over the first ~300 samples
    (7 devices × ~43 samples each).

    Note on the c grid: the paper sweeps c ∈ {1e-6, ..., 1e0} on raw FFT
    magnitudes.  Our pipeline L1-normalizes features (so the privacy
    sensitivity bounds hold uniformly), which shrinks gradient scales by
    roughly two orders of magnitude; the default grid here is shifted
    accordingly and spans the same four decades.
    """
    streams = [
        make_activity_stream(samples_per_device, np.random.default_rng(seed + d))
        for d in range(num_devices)
    ]
    test = make_activity_stream(150, np.random.default_rng(seed + 900))
    result = FigureResult("Fig. 3 (activity recognition)")
    for c in learning_rates:
        model = MulticlassLogisticRegression(64, NUM_ACTIVITIES)
        config = SimulationConfig(
            num_devices=num_devices,
            batch_size=1,
            learning_rate_constant=c,
            l2_regularization=0.0,
        )
        trace = CrowdSimulator(model, streams, test, config, seed=seed).run()
        averaged = trace.time_averaged_error()
        iters = np.arange(1, averaged.shape[0] + 1)
        result.curves[f"c={c:g}"] = ErrorCurve(iters, averaged)
    return result


def run_fig4_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0
                        ) -> FigureResult:
    """Fig. 4: MNIST-like, centralized vs crowd vs decentralized."""
    scale = scale if scale is not None else ExperimentScale.benchmark()
    return _approaches_figure("Fig. 4 (MNIST, approaches)", make_mnist_like, scale, seed)


def run_fig5_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0
                        ) -> FigureResult:
    """Fig. 5: MNIST-like, privacy ε⁻¹ = 0.1, minibatch sweep."""
    scale = scale if scale is not None else ExperimentScale.benchmark()
    return _privacy_figure("Fig. 5 (MNIST, privacy)", make_mnist_like, scale, seed)


def run_fig6_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0
                        ) -> FigureResult:
    """Fig. 6: MNIST-like, privacy + delay sweep."""
    scale = scale if scale is not None else ExperimentScale.benchmark()
    return _delay_figure("Fig. 6 (MNIST, delays)", make_mnist_like, scale, seed)


def run_fig7_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0
                        ) -> FigureResult:
    """Fig. 7: CIFAR-like analogue of Fig. 4 (Appendix D)."""
    scale = scale if scale is not None else ExperimentScale.benchmark()
    return _approaches_figure("Fig. 7 (CIFAR, approaches)", make_cifar_like, scale, seed)


def run_fig8_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0
                        ) -> FigureResult:
    """Fig. 8: CIFAR-like analogue of Fig. 5 (Appendix D)."""
    scale = scale if scale is not None else ExperimentScale.benchmark()
    return _privacy_figure("Fig. 8 (CIFAR, privacy)", make_cifar_like, scale, seed)


def run_fig9_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0
                        ) -> FigureResult:
    """Fig. 9: CIFAR-like analogue of Fig. 6 (Appendix D)."""
    scale = scale if scale is not None else ExperimentScale.benchmark()
    return _delay_figure("Fig. 9 (CIFAR, delays)", make_cifar_like, scale, seed)
