"""Experiment size knobs (Section V-C crowd/sample/trial counts)."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs for one experiment run.

    ``paper()`` reproduces the published sizes; ``benchmark()`` is the
    reduced configuration used by the bench harness (same samples-per-
    device ratio: 60 per device); ``smoke()`` is for fast tests.
    """

    num_train: int
    num_test: int
    num_devices: int
    num_trials: int
    num_passes: int

    @classmethod
    def paper(cls) -> "ExperimentScale":
        return cls(num_train=60_000, num_test=10_000, num_devices=1000,
                   num_trials=10, num_passes=5)

    @classmethod
    def benchmark(cls) -> "ExperimentScale":
        return cls(num_train=9_000, num_test=2_000, num_devices=150,
                   num_trials=2, num_passes=4)

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        return cls(num_train=1_500, num_test=500, num_devices=25,
                   num_trials=1, num_passes=2)

    @classmethod
    def named(cls, name: str) -> "ExperimentScale":
        """Look up one of the three canonical scales by name."""
        try:
            return {"paper": cls.paper, "benchmark": cls.benchmark,
                    "smoke": cls.smoke}[name]()
        except KeyError:
            raise ValueError(
                f"unknown scale '{name}' (expected paper/benchmark/smoke)"
            ) from None

    def to_dict(self) -> dict[str, int]:
        """Plain-dict form for JSON serialization."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentScale":
        """Inverse of :meth:`to_dict`."""
        return cls(**{k: int(data[k]) for k in
                      ("num_train", "num_test", "num_devices",
                       "num_trials", "num_passes")})
