"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the *data* form of one figure (or any custom
sweep): a named list of :class:`ArmSpec`\\ s plus a default dataset and an
:class:`~repro.experiments.scale.ExperimentScale`.  Every component an arm
needs — model, dataset maker, partitioner, schedule — is referenced by its
:mod:`repro.registry` name with a kwargs dict, so specs serialize losslessly
to JSON and back: figure definitions become data, and new sweeps need no
code changes.

Specs carry no randomness: the run seed is supplied to
:meth:`repro.experiments.session.ExperimentSession.run`, and each arm's
``seed_offset`` decorrelates arms within one run exactly as the original
hand-written figure code did.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Optional

from repro.experiments.scale import ExperimentScale
from repro.utils.exceptions import ConfigurationError

#: Arm kinds understood by the session (see ``session.py`` for execution).
ARM_KINDS = ("crowd", "central_batch", "central_sgd", "decentralized",
             "activity_online")


def _decode_float(value: Any) -> float:
    """Accept JSON numbers plus the strings ``"inf"``/``"-inf"``."""
    return float(value)


@dataclass(frozen=True)
class ArmSpec:
    """One arm of an experiment, declared entirely by registry names + data.

    Attributes
    ----------
    label:
        Key of this arm in the resulting :class:`FigureResult`.
    kind:
        One of :data:`ARM_KINDS` — which executor runs the arm:
        ``crowd`` (the event-driven Crowd-ML simulator, averaged over the
        scale's trials), ``central_batch`` (scalar reference line),
        ``central_sgd`` / ``decentralized`` (baseline curves), or
        ``activity_online`` (Fig. 3's per-device streaming setup).
    model / model_kwargs:
        :data:`repro.registry.MODELS` name and constructor kwargs.
        ``num_features``/``num_classes`` default to the dataset's shape.
    dataset / dataset_kwargs:
        Optional per-arm override of the experiment's default dataset.
    partition / partition_kwargs:
        :data:`repro.registry.PARTITIONERS` name (crowd/decentralized arms).
    schedule / schedule_kwargs:
        :data:`repro.registry.SCHEDULES` name; for ``crowd`` arms only
        ``inverse_sqrt`` is supported (the server optimizer of Eq. 5) and
        ``schedule_kwargs["constant"]`` supplies c.
    batch_size / epsilon / delay_multiples / l2_regularization:
        The paper's b, per-sample ε (``inf`` = non-private), delay in Δ
        units, and λ.
    num_passes:
        Overrides the scale's pass count when not ``None``.
    seed_offset:
        Added to the run seed so arms draw decorrelated streams.
    seed_override:
        When not ``None``, this arm's stream seed is pinned to exactly
        this value, independent of the run seed (the dataset still follows
        the run seed).  Figs. 4/7 use it to keep the historical behavior
        of their Crowd-ML arm, whose trials were always seeded from 0.
    trainer_kwargs:
        Extra kwargs for baseline trainer constructors (e.g.
        ``evaluation_devices`` for ``decentralized``).
    gateway:
        Optional two-tier gateway topology for ``crowd`` arms, in the
        JSON form of :meth:`repro.gateway.topology.TwoTierTopology.from_dict`
        (``num_gateways``, ``assignment``, ``flush_size``, per-hop
        ``device_delay``/``server_delay`` in Δ multiples, ...).  Delays
        then live *in* the gateway profile, so combine with
        ``delay_multiples=0``.
    """

    label: str
    kind: str = "crowd"
    model: str = "logistic"
    model_kwargs: Mapping[str, Any] = field(default_factory=dict)
    dataset: Optional[str] = None
    dataset_kwargs: Mapping[str, Any] = field(default_factory=dict)
    partition: str = "iid"
    partition_kwargs: Mapping[str, Any] = field(default_factory=dict)
    schedule: str = "inverse_sqrt"
    schedule_kwargs: Mapping[str, Any] = field(default_factory=dict)
    batch_size: int = 1
    epsilon: float = math.inf
    delay_multiples: float = 0.0
    l2_regularization: float = 0.0
    num_passes: Optional[int] = None
    seed_offset: int = 0
    seed_override: Optional[int] = None
    trainer_kwargs: Mapping[str, Any] = field(default_factory=dict)
    gateway: Optional[Mapping[str, Any]] = None

    def __post_init__(self):
        if self.kind not in ARM_KINDS:
            raise ConfigurationError(
                f"unknown arm kind '{self.kind}' (expected one of {ARM_KINDS})"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.delay_multiples < 0:
            raise ConfigurationError("delay_multiples must be non-negative")
        # Copy the kwarg mappings so a spec never aliases caller state.
        for name in ("model_kwargs", "dataset_kwargs", "partition_kwargs",
                     "schedule_kwargs", "trainer_kwargs"):
            object.__setattr__(self, name, dict(getattr(self, name)))
        if self.gateway is not None:
            if self.kind != "crowd":
                raise ConfigurationError(
                    f"gateway topologies apply to crowd arms only, "
                    f"not '{self.kind}'"
                )
            object.__setattr__(self, "gateway", dict(self.gateway))
            # Validate the topology dict eagerly (lazy import keeps the
            # spec layer free of a hard gateway dependency).
            from repro.gateway.topology import TwoTierTopology
            TwoTierTopology.from_dict(self.gateway)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; only non-default fields are emitted."""
        out: dict[str, Any] = {"label": self.label, "kind": self.kind}
        defaults = {f.name: f.default for f in fields(self)}
        for f in fields(self):
            if f.name in ("label", "kind"):
                continue
            value = getattr(self, f.name)
            if f.name.endswith("_kwargs"):
                if value:
                    out[f.name] = dict(value)
            elif f.name == "gateway":
                if value is not None:
                    out[f.name] = dict(value)
            elif f.name == "epsilon":
                # The default (inf = non-private) is omitted; finite ε
                # emits as a plain JSON number.
                if not math.isinf(value):
                    out[f.name] = float(value)
            elif value != defaults[f.name]:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArmSpec":
        """Inverse of :meth:`to_dict` (unknown keys are an error)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ArmSpec fields: {sorted(unknown)}"
            )
        payload = dict(data)
        if "epsilon" in payload:
            payload["epsilon"] = _decode_float(payload["epsilon"])
        return cls(**payload)


@dataclass(frozen=True)
class ExperimentSpec:
    """A full experiment: name, arms, reference arms, dataset, and scale.

    ``arms`` produce :class:`FigureResult` curves; ``reference_arms``
    (typically ``central_batch``) produce the scalar reference lines.
    ``dataset``/``dataset_kwargs`` are the default maker for arms that do
    not override it; ``num_train``/``num_test``/``seed`` are filled in from
    the scale and run seed at execution time.
    """

    name: str
    arms: tuple[ArmSpec, ...]
    scale: Optional[ExperimentScale] = None
    reference_arms: tuple[ArmSpec, ...] = ()
    dataset: Optional[str] = None
    dataset_kwargs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "arms", tuple(self.arms))
        object.__setattr__(self, "reference_arms", tuple(self.reference_arms))
        object.__setattr__(self, "dataset_kwargs", dict(self.dataset_kwargs))
        labels = [arm.label for arm in self.arms + self.reference_arms]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                f"duplicate arm labels in experiment '{self.name}'"
            )
        # Arms produce curves; reference arms produce scalar lines.  A
        # central_batch arm yields a single float, so it can only live in
        # reference_arms — catch the mismatch before anything executes.
        for arm in self.arms:
            if arm.kind == "central_batch":
                raise ConfigurationError(
                    f"arm '{arm.label}' is central_batch (a scalar "
                    "reference line); declare it in reference_arms"
                )
        for arm in self.reference_arms:
            if arm.kind != "central_batch":
                raise ConfigurationError(
                    f"reference arm '{arm.label}' must be "
                    f"kind='central_batch', got '{arm.kind}'"
                )

    def with_scale(self, scale: ExperimentScale) -> "ExperimentSpec":
        """A copy of this spec at a different scale."""
        return ExperimentSpec(
            name=self.name, arms=self.arms, scale=scale,
            reference_arms=self.reference_arms, dataset=self.dataset,
            dataset_kwargs=self.dataset_kwargs,
        )

    # ------------------------------------------------------------------ #
    # Serialization                                                      #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON serialization."""
        out: dict[str, Any] = {
            "name": self.name,
            "arms": [arm.to_dict() for arm in self.arms],
        }
        if self.scale is not None:
            out["scale"] = self.scale.to_dict()
        if self.reference_arms:
            out["reference_arms"] = [a.to_dict() for a in self.reference_arms]
        if self.dataset is not None:
            out["dataset"] = self.dataset
        if self.dataset_kwargs:
            out["dataset_kwargs"] = dict(self.dataset_kwargs)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`."""
        known = {"name", "arms", "scale", "reference_arms", "dataset",
                 "dataset_kwargs"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ExperimentSpec fields: {sorted(unknown)}"
            )
        return cls(
            name=data["name"],
            arms=tuple(ArmSpec.from_dict(a) for a in data.get("arms", ())),
            scale=(ExperimentScale.from_dict(data["scale"])
                   if "scale" in data else None),
            reference_arms=tuple(
                ArmSpec.from_dict(a) for a in data.get("reference_arms", ())
            ),
            dataset=data.get("dataset"),
            dataset_kwargs=data.get("dataset_kwargs", {}),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON string.

        The default ``inf`` ε (non-private) is simply omitted, so the
        output is standard JSON with no ``Infinity`` literals.
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output.

        Hand-authored JSON may also write ``"epsilon": "inf"`` explicitly.
        """
        return cls.from_dict(json.loads(text))
