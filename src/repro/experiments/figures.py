"""The paper's figures, declared as :class:`ExperimentSpec` data.

Each ``figN_spec`` builder returns the declarative form of one figure;
each ``run_figN_experiment`` wrapper (the stable public API used by the
benchmark harness and the regenerator scripts) builds that spec and hands
it to an :class:`~repro.experiments.session.ExperimentSession`.  Because a
spec is pure data, every figure is also expressible as JSON
(``figN_spec(...).to_json()``) and re-runnable from it without any of the
code in this module.

Paper-scale settings (Section V-C): M = 1000 devices, 60 000/50 000 train
samples, 10 000 test samples, 10 trials, up to five passes.  The default
:meth:`ExperimentScale.benchmark` uses a proportionally reduced crowd that
preserves every qualitative relationship (samples-per-device, ε, b, Δ are
unchanged or scale-free).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.experiments.results import FigureResult
from repro.experiments.scale import ExperimentScale
from repro.experiments.session import ExperimentSession
from repro.experiments.specs import ArmSpec, ExperimentSpec

#: Hyperparameters selected (per Section V-C's model-selection protocol) on
#: held-out trials for the synthetic datasets.
LEARNING_RATE_CONSTANT = 30.0
L2_REGULARIZATION = 1e-4
#: Fig. 5/6/8/9 privacy level: ε⁻¹ = 0.1.
FIG5_EPSILON = 10.0

_SCHEDULE = {"constant": LEARNING_RATE_CONSTANT}


def _batch_reference(epsilon: float) -> ArmSpec:
    return ArmSpec(
        label="Central (batch)", kind="central_batch", epsilon=epsilon,
        l2_regularization=L2_REGULARIZATION,
    )


def approaches_spec(
    name: str, dataset: str, scale: ExperimentScale
) -> ExperimentSpec:
    """Figs. 4/7: Central (batch) vs Crowd-ML vs Decentralized, no privacy
    or delay (ε⁻¹ = 0, b = 1, τ = 0)."""
    return ExperimentSpec(
        name=name,
        dataset=dataset,
        scale=scale,
        reference_arms=(_batch_reference(float("inf")),),
        arms=(
            ArmSpec(
                label="Crowd-ML (SGD)", kind="crowd",
                schedule_kwargs=_SCHEDULE,
                l2_regularization=L2_REGULARIZATION,
                # Historical behavior: the Figs. 4/7 crowd arm has always
                # seeded its trials from 0, independent of the figure seed.
                seed_override=0,
            ),
            ArmSpec(
                label="Decentral (SGD)", kind="decentralized",
                schedule_kwargs=_SCHEDULE,
                l2_regularization=L2_REGULARIZATION,
                seed_offset=1,
                trainer_kwargs={"evaluation_devices": 10},
            ),
        ),
    )


def privacy_spec(
    name: str, dataset: str, scale: ExperimentScale,
    epsilon: float = FIG5_EPSILON, batch_sizes: tuple[int, ...] = (1, 10, 20),
) -> ExperimentSpec:
    """Figs. 5/8: ε⁻¹ = 0.1, b ∈ {1, 10, 20}, Crowd-ML vs input-perturbed
    Central SGD vs input-perturbed Central batch."""
    arms = []
    for b in batch_sizes:
        arms.append(ArmSpec(
            label=f"Crowd-ML (SGD,b={b})", kind="crowd",
            batch_size=b, epsilon=epsilon,
            schedule_kwargs=_SCHEDULE, l2_regularization=L2_REGULARIZATION,
            seed_offset=b,
        ))
        arms.append(ArmSpec(
            label=f"Central (SGD,b={b})", kind="central_sgd",
            batch_size=b, epsilon=epsilon,
            schedule_kwargs=_SCHEDULE, l2_regularization=L2_REGULARIZATION,
            seed_offset=100 + b,
        ))
    return ExperimentSpec(
        name=name, dataset=dataset, scale=scale,
        reference_arms=(_batch_reference(epsilon),),
        arms=tuple(arms),
    )


def delay_spec(
    name: str, dataset: str, scale: ExperimentScale,
    epsilon: float = FIG5_EPSILON, batch_sizes: tuple[int, ...] = (1, 20),
    delays: tuple[int, ...] = (1, 10, 100, 1000),
) -> ExperimentSpec:
    """Figs. 6/9: ε⁻¹ = 0.1, b ∈ {1, 20}, delays ∈ {1, 10, 100, 1000}·Δ."""
    arms = tuple(
        ArmSpec(
            label=f"Crowd-ML (b={b},{delay}D)", kind="crowd",
            batch_size=b, epsilon=epsilon, delay_multiples=delay,
            schedule_kwargs=_SCHEDULE, l2_regularization=L2_REGULARIZATION,
            seed_offset=1000 * b + delay,
        )
        for b in batch_sizes
        for delay in delays
    )
    return ExperimentSpec(
        name=name, dataset=dataset, scale=scale,
        reference_arms=(_batch_reference(epsilon),),
        arms=arms,
    )


def fig3_spec(
    num_devices: int = 7,
    samples_per_device: int = 45,
    learning_rates: tuple[float, ...] = (1e-2, 1e0, 1e2, 1e4),
) -> ExperimentSpec:
    """Fig. 3: activity recognition, a sweep of learning-rate constants."""
    from repro.data import NUM_ACTIVITIES

    arms = tuple(
        ArmSpec(
            label=f"c={c:g}", kind="activity_online",
            schedule_kwargs={"constant": float(c)},
            model_kwargs={"num_features": 64, "num_classes": NUM_ACTIVITIES},
        )
        for c in learning_rates
    )
    return ExperimentSpec(
        name="Fig. 3 (activity recognition)",
        dataset="activity_stream",
        dataset_kwargs={
            "num_devices": num_devices,
            "samples_per_device": samples_per_device,
            "test_samples": 150,
        },
        arms=arms,
    )


def fig4_spec(scale: ExperimentScale) -> ExperimentSpec:
    return approaches_spec("Fig. 4 (MNIST, approaches)", "mnist_like", scale)


def fig5_spec(scale: ExperimentScale) -> ExperimentSpec:
    return privacy_spec("Fig. 5 (MNIST, privacy)", "mnist_like", scale)


def fig6_spec(scale: ExperimentScale) -> ExperimentSpec:
    return delay_spec("Fig. 6 (MNIST, delays)", "mnist_like", scale)


def fig7_spec(scale: ExperimentScale) -> ExperimentSpec:
    return approaches_spec("Fig. 7 (CIFAR, approaches)", "cifar_like", scale)


def fig8_spec(scale: ExperimentScale) -> ExperimentSpec:
    return privacy_spec("Fig. 8 (CIFAR, privacy)", "cifar_like", scale)


def fig9_spec(scale: ExperimentScale) -> ExperimentSpec:
    return delay_spec("Fig. 9 (CIFAR, delays)", "cifar_like", scale)


#: Scale-parameterized spec builders for Figs. 4-9 (Fig. 3 has its own
#: signature — see :func:`fig3_spec`).
FIGURE_SPEC_BUILDERS: Dict[str, Callable[[ExperimentScale], ExperimentSpec]] = {
    "4": fig4_spec, "5": fig5_spec, "6": fig6_spec,
    "7": fig7_spec, "8": fig8_spec, "9": fig9_spec,
}


# --------------------------------------------------------------------- #
# Stable public wrappers (signatures and semantics match the original   #
# hand-written experiment module)                                       #
# --------------------------------------------------------------------- #


def _run(spec: ExperimentSpec, seed: int,
         session: Optional[ExperimentSession]) -> FigureResult:
    session = session if session is not None else ExperimentSession()
    return session.run(spec, seed=seed)


def run_fig3_experiment(
    num_devices: int = 7,
    samples_per_device: int = 45,
    learning_rates: tuple[float, ...] = (1e-2, 1e0, 1e2, 1e4),
    seed: int = 0,
    session: Optional[ExperimentSession] = None,
) -> FigureResult:
    """Fig. 3: activity recognition on 7 devices, time-averaged error.

    The paper's setting: 3-class logistic regression, λ = 0, b = 1,
    ε⁻¹ = 0, a sweep of learning-rate constants c; the error shown is the
    online time-averaged prediction error over the first ~300 samples
    (7 devices × ~43 samples each).

    Note on the c grid: the paper sweeps c ∈ {1e-6, ..., 1e0} on raw FFT
    magnitudes.  Our pipeline L1-normalizes features (so the privacy
    sensitivity bounds hold uniformly), which shrinks gradient scales by
    roughly two orders of magnitude; the default grid here is shifted
    accordingly and spans the same four decades.
    """
    spec = fig3_spec(num_devices, samples_per_device, learning_rates)
    return _run(spec, seed, session)


def _scaled(scale: Optional[ExperimentScale]) -> ExperimentScale:
    return scale if scale is not None else ExperimentScale.benchmark()


def run_fig4_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0,
                        session: Optional[ExperimentSession] = None
                        ) -> FigureResult:
    """Fig. 4: MNIST-like, centralized vs crowd vs decentralized."""
    return _run(fig4_spec(_scaled(scale)), seed, session)


def run_fig5_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0,
                        session: Optional[ExperimentSession] = None
                        ) -> FigureResult:
    """Fig. 5: MNIST-like, privacy ε⁻¹ = 0.1, minibatch sweep."""
    return _run(fig5_spec(_scaled(scale)), seed, session)


def run_fig6_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0,
                        session: Optional[ExperimentSession] = None
                        ) -> FigureResult:
    """Fig. 6: MNIST-like, privacy + delay sweep."""
    return _run(fig6_spec(_scaled(scale)), seed, session)


def run_fig7_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0,
                        session: Optional[ExperimentSession] = None
                        ) -> FigureResult:
    """Fig. 7: CIFAR-like analogue of Fig. 4 (Appendix D)."""
    return _run(fig7_spec(_scaled(scale)), seed, session)


def run_fig8_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0,
                        session: Optional[ExperimentSession] = None
                        ) -> FigureResult:
    """Fig. 8: CIFAR-like analogue of Fig. 5 (Appendix D)."""
    return _run(fig8_spec(_scaled(scale)), seed, session)


def run_fig9_experiment(scale: Optional[ExperimentScale] = None, seed: int = 0,
                        session: Optional[ExperimentSession] = None
                        ) -> FigureResult:
    """Fig. 9: CIFAR-like analogue of Fig. 6 (Appendix D)."""
    return _run(fig9_spec(_scaled(scale)), seed, session)
