"""Sweep runner: execute an :class:`ExperimentSpec` across arms × trials.

:class:`ExperimentSession` turns a declarative spec into a
:class:`~repro.experiments.results.FigureResult`.  Work is decomposed into
one *task* per baseline arm and one task per (crowd arm, trial), so a
multi-arm, multi-trial figure saturates a
:class:`concurrent.futures.ProcessPoolExecutor` when ``max_workers > 1``.
Every task rebuilds its components from :mod:`repro.registry` names and
derives its random streams exactly as the serial code does (per-trial seeds
via :class:`~repro.utils.rng.RngFactory`, per-arm offsets via
``ArmSpec.seed_offset``), so parallel results are bit-identical to serial
ones regardless of scheduling order.

Datasets are generated once per ``(maker, kwargs)`` through a
:class:`DatasetCache` shared across arms (and across ``run`` calls on the
same session), instead of once per arm as the old hand-written figure code
did.
"""

from __future__ import annotations

import inspect
import json
import math
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.evaluation.curves import ErrorCurve, average_curves
from repro.experiments.results import FigureResult
from repro.experiments.specs import ArmSpec, ExperimentSpec
from repro.network import LinkDelays
from repro.privacy import CentralizedBudget
from repro.registry import DATASETS, MODELS, PARTITIONERS, SCHEDULES
from repro.simulation import CrowdSimulator, SimulationConfig
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RngFactory


class DatasetCache:
    """Memoizes generated datasets across arms and runs.

    Keys are ``(maker, sorted kwargs)`` tuples — for the standard makers
    that is ``(maker, num_train, num_test, seed, ...)`` — so the six figure
    experiments stop regenerating identical synthetic datasets per arm.
    """

    def __init__(self):
        self._store: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Any, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on first use."""
        if key in self._store:
            self.hits += 1
        else:
            self.misses += 1
            self._store[key] = builder()
        return self._store[key]

    def split(self, maker: str, kwargs: Dict[str, Any]) -> Tuple[Dataset, Dataset]:
        """A ``(train, test)`` split from the :data:`~repro.registry.DATASETS`
        registry, cached on ``(maker, kwargs)``."""
        key = (maker, _kwargs_key(kwargs))
        return self.get(key, lambda: DATASETS.create(maker, **kwargs))

    def clear(self) -> None:
        self._store.clear()


def _kwargs_key(kwargs: Dict[str, Any]) -> str:
    """A hashable, order-insensitive cache key for a kwargs dict.

    Canonical JSON rather than ``tuple(sorted(items))`` so JSON-authored
    specs with list/dict-valued kwargs stay cacheable.
    """
    return json.dumps(kwargs, sort_keys=True, default=repr)


# --------------------------------------------------------------------- #
# Task execution (module-level so payloads cross process boundaries)    #
# --------------------------------------------------------------------- #

#: Per-process table of resolved datasets, installed by
#: :func:`_init_task_data` (once per pool worker via the executor
#: initializer, or in-process for serial runs).  Task payloads carry
#: ``*_ref`` keys into this table instead of the datasets themselves, so
#: a figure's multi-MB arrays cross each process boundary once rather
#: than once per (arm, trial) task.
_TASK_DATA: Dict[str, Any] = {}


def _init_task_data(table: Dict[str, Any]) -> None:
    global _TASK_DATA
    _TASK_DATA = table


def _accepts_kwarg(factory: Callable[..., Any], name: str) -> bool:
    """Whether ``factory(**{name}: ...)`` is a valid call."""
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return True
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return True
    return name in params


def _build_model(payload: Dict[str, Any], data: Dataset):
    """Instantiate the arm's model, defaulting shape kwargs from ``data``."""
    name = payload["model"]
    factory = MODELS.get(name)
    kwargs = dict(payload["model_kwargs"])
    if _accepts_kwarg(factory, "num_features"):
        kwargs.setdefault("num_features", data.num_features)
    if _accepts_kwarg(factory, "num_classes"):
        kwargs.setdefault("num_classes", data.num_classes)
    if _accepts_kwarg(factory, "l2_regularization"):
        kwargs.setdefault("l2_regularization", payload["l2_regularization"])
    return factory(**kwargs)


def _budget(payload: Dict[str, Any]) -> Optional[CentralizedBudget]:
    epsilon = payload["epsilon"]
    if math.isinf(epsilon):
        return None
    return CentralizedBudget.even_split(epsilon)


def _simulation_config(payload: Dict[str, Any]) -> SimulationConfig:
    num_devices = payload["num_devices"]
    # τ in time units from a delay expressed in Δ = 1/(M·F_s) multiples
    # (Section V-C), via a probe config so the conversion tracks
    # SimulationConfig's sampling-rate semantics.
    probe = SimulationConfig(num_devices=num_devices)
    tau = probe.delay_in_sample_units(payload["delay_multiples"])
    return SimulationConfig(
        num_devices=num_devices,
        batch_size=payload["batch_size"],
        epsilon=payload["epsilon"],
        learning_rate_constant=payload["learning_rate_constant"],
        l2_regularization=payload["l2_regularization"],
        link_delays=LinkDelays.uniform(tau) if tau > 0 else LinkDelays.zero(),
        num_passes=payload["num_passes"],
    )


def _crowd_rate_constant(payload: Dict[str, Any]) -> float:
    if payload["schedule"] != "inverse_sqrt":
        raise ConfigurationError(
            "crowd arms use the server's c/sqrt(t) optimizer; "
            f"schedule '{payload['schedule']}' is only available for "
            "central_sgd/decentralized arms"
        )
    return float(payload["schedule_kwargs"].get("constant", 1.0))


def _run_crowd_trial(payload: Dict[str, Any]) -> ErrorCurve:
    """One Crowd-ML trial, seeded exactly like ``run_crowd_trials``."""
    train: Dataset = payload["train"]
    trial: int = payload["trial"]
    factory = RngFactory(payload["base_seed"])
    partition = PARTITIONERS.get(payload["partition"])
    assignment_rng = factory.generator("assignment", trial)
    device_datasets = partition(
        train, payload["num_devices"], assignment_rng,
        **payload["partition_kwargs"],
    )
    simulator = CrowdSimulator(
        _build_model(payload, train),
        device_datasets,
        payload["test"],
        _simulation_config(payload),
        seed=factory.seed("simulator", trial),
    )
    return simulator.run().curve


def _run_central_batch(payload: Dict[str, Any]) -> float:
    from repro.baselines import CentralizedBatchTrainer

    train: Dataset = payload["train"]
    trainer = CentralizedBatchTrainer(
        _build_model(payload, train), budget=_budget(payload),
        **payload["trainer_kwargs"],
    )
    rng = np.random.default_rng(payload["seed"])
    return trainer.evaluate(train, payload["test"], rng)


def _run_central_sgd(payload: Dict[str, Any]) -> ErrorCurve:
    from repro.baselines import CentralizedSGDTrainer

    train: Dataset = payload["train"]
    schedule = SCHEDULES.create(payload["schedule"], **payload["schedule_kwargs"])
    trainer = CentralizedSGDTrainer(
        _build_model(payload, train),
        schedule,
        batch_size=payload["batch_size"],
        budget=_budget(payload),
        **payload["trainer_kwargs"],
    )
    rng = np.random.default_rng(payload["seed"])
    return trainer.fit(
        train, payload["test"], rng, num_passes=payload["num_passes"]
    ).curve


def _run_decentralized(payload: Dict[str, Any]) -> ErrorCurve:
    from repro.baselines import DecentralizedTrainer

    train: Dataset = payload["train"]
    schedule = SCHEDULES.create(payload["schedule"], **payload["schedule_kwargs"])
    trainer = DecentralizedTrainer(
        _build_model(payload, train), schedule, **payload["trainer_kwargs"]
    )
    partition = PARTITIONERS.get(payload["partition"])
    parts = partition(
        train, payload["num_devices"], np.random.default_rng(payload["seed"]),
        **payload["partition_kwargs"],
    )
    return trainer.fit(
        parts, payload["test"], np.random.default_rng(payload["seed"] + 1),
        num_passes=payload["num_passes"],
    ).curve


def _run_activity_online(payload: Dict[str, Any]) -> ErrorCurve:
    """Fig. 3's setting: per-device streams, online time-averaged error."""
    streams: List[Dataset] = payload["streams"]
    config = SimulationConfig(
        num_devices=len(streams),
        batch_size=payload["batch_size"],
        learning_rate_constant=_crowd_rate_constant(payload),
        l2_regularization=payload["l2_regularization"],
    )
    simulator = CrowdSimulator(
        _build_model(payload, streams[0]), streams, payload["test"], config,
        seed=payload["seed"],
    )
    averaged = simulator.run().time_averaged_error()
    iterations = np.arange(1, averaged.shape[0] + 1)
    return ErrorCurve(iterations, averaged)


_EXECUTORS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "crowd": _run_crowd_trial,
    "central_batch": _run_central_batch,
    "central_sgd": _run_central_sgd,
    "decentralized": _run_decentralized,
    "activity_online": _run_activity_online,
}


def _execute_task(payload: Dict[str, Any]) -> Any:
    payload = dict(payload)
    for name in ("train", "test", "streams"):
        ref = payload.pop(f"{name}_ref", None)
        if ref is not None:
            payload[name] = _TASK_DATA[ref]
    return _EXECUTORS[payload["kind"]](payload)


# --------------------------------------------------------------------- #
# The session                                                           #
# --------------------------------------------------------------------- #


class ExperimentSession:
    """Executes :class:`ExperimentSpec`\\ s, optionally in parallel.

    Parameters
    ----------
    max_workers:
        ``None``/``0``/``1`` runs every task serially in-process; ``N > 1``
        fans tasks out over a ``ProcessPoolExecutor``.  Results are
        bit-identical either way (seeding is derived per task, and curves
        are averaged in deterministic trial order).
    dataset_cache:
        Optional shared :class:`DatasetCache`; by default each session owns
        one, reused across ``run`` calls.

    Examples
    --------
    >>> import math
    >>> from repro.experiments import ArmSpec, ExperimentScale, ExperimentSpec
    >>> spec = ExperimentSpec(
    ...     name="demo", dataset="mnist_like",
    ...     scale=ExperimentScale(num_train=300, num_test=100, num_devices=5,
    ...                           num_trials=1, num_passes=1),
    ...     arms=(ArmSpec(label="crowd", schedule_kwargs={"constant": 30.0}),))
    >>> result = ExperimentSession().run(spec, seed=0)
    >>> 0.0 <= result.curves["crowd"].final_error <= 1.0
    True
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        dataset_cache: Optional[DatasetCache] = None,
    ):
        if max_workers is not None and max_workers < 0:
            raise ConfigurationError(
                f"max_workers must be >= 0, got {max_workers}"
            )
        self._max_workers = max_workers
        self._cache = dataset_cache if dataset_cache is not None else DatasetCache()

    @property
    def max_workers(self) -> Optional[int]:
        return self._max_workers

    @property
    def dataset_cache(self) -> DatasetCache:
        return self._cache

    # -- dataset resolution ------------------------------------------- #

    def _resolve_split(
        self, spec: ExperimentSpec, arm: ArmSpec, seed: int
    ) -> Tuple[Dataset, Dataset]:
        maker = arm.dataset if arm.dataset is not None else spec.dataset
        if maker is None:
            raise ConfigurationError(
                f"arm '{arm.label}' has no dataset and experiment "
                f"'{spec.name}' declares no default"
            )
        kwargs = {**spec.dataset_kwargs, **arm.dataset_kwargs}
        if spec.scale is not None:
            kwargs.setdefault("num_train", spec.scale.num_train)
            kwargs.setdefault("num_test", spec.scale.num_test)
        kwargs.setdefault("seed", seed)
        return self._cache.split(maker, kwargs)

    def _resolve_streams(
        self, spec: ExperimentSpec, arm: ArmSpec, seed: int
    ) -> Tuple[List[Dataset], Dataset]:
        """Per-device online streams plus a test stream (Fig. 3 layout)."""
        maker = arm.dataset if arm.dataset is not None else spec.dataset
        if maker is None:
            maker = "activity_stream"
        kwargs = {**spec.dataset_kwargs, **arm.dataset_kwargs}
        num_devices = kwargs.pop(
            "num_devices",
            spec.scale.num_devices if spec.scale is not None else None,
        )
        if num_devices is None:
            raise ConfigurationError(
                f"activity_online arm '{arm.label}' needs num_devices "
                "(dataset_kwargs or spec.scale)"
            )
        try:
            samples = kwargs.pop("samples_per_device")
        except KeyError:
            raise ConfigurationError(
                f"activity_online arm '{arm.label}' needs samples_per_device "
                "in dataset_kwargs"
            ) from None
        test_samples = kwargs.pop("test_samples", 150)
        key = (maker, "streams", num_devices, samples, test_samples, seed,
               _kwargs_key(kwargs))

        def build() -> Tuple[List[Dataset], Dataset]:
            streams = [
                DATASETS.create(maker, num_samples=samples,
                                rng=np.random.default_rng(seed + d), **kwargs)
                for d in range(num_devices)
            ]
            test = DATASETS.create(maker, num_samples=test_samples,
                                   rng=np.random.default_rng(seed + 900),
                                   **kwargs)
            return streams, test

        return self._cache.get(key, build)

    # -- payload construction ----------------------------------------- #

    @staticmethod
    def _data_ref(obj: Any, table: Dict[str, Any],
                  ids: Dict[int, str]) -> str:
        """Intern ``obj`` in the run's data table, returning its ref key."""
        if id(obj) not in ids:
            ids[id(obj)] = f"data{len(table)}"
            table[ids[id(obj)]] = obj
        return ids[id(obj)]

    def _arm_payloads(
        self, spec: ExperimentSpec, arm: ArmSpec, seed: int,
        table: Dict[str, Any], ids: Dict[int, str],
    ) -> List[Dict[str, Any]]:
        scale = spec.scale
        arm_seed = (arm.seed_override if arm.seed_override is not None
                    else seed + arm.seed_offset)
        base = {
            "kind": arm.kind,
            "model": arm.model,
            "model_kwargs": dict(arm.model_kwargs),
            "partition": arm.partition,
            "partition_kwargs": dict(arm.partition_kwargs),
            "schedule": arm.schedule,
            "schedule_kwargs": dict(arm.schedule_kwargs),
            "trainer_kwargs": dict(arm.trainer_kwargs),
            "batch_size": arm.batch_size,
            "epsilon": arm.epsilon,
            "delay_multiples": arm.delay_multiples,
            "l2_regularization": arm.l2_regularization,
        }
        if arm.kind == "activity_online":
            streams, test = self._resolve_streams(spec, arm, seed)
            base.update(streams_ref=self._data_ref(streams, table, ids),
                        test_ref=self._data_ref(test, table, ids),
                        seed=arm_seed)
            return [base]

        train, test = self._resolve_split(spec, arm, seed)
        base.update(train_ref=self._data_ref(train, table, ids),
                    test_ref=self._data_ref(test, table, ids))
        num_passes = arm.num_passes
        if num_passes is None:
            num_passes = scale.num_passes if scale is not None else 1
        base["num_passes"] = num_passes

        if arm.kind == "crowd":
            if scale is None:
                raise ConfigurationError(
                    f"crowd arm '{arm.label}' requires spec.scale"
                )
            base.update(
                num_devices=scale.num_devices,
                learning_rate_constant=_crowd_rate_constant(base),
                base_seed=arm_seed,
            )
            return [dict(base, trial=t) for t in range(scale.num_trials)]

        if arm.kind == "decentralized":
            if scale is None:
                raise ConfigurationError(
                    f"decentralized arm '{arm.label}' requires spec.scale"
                )
            base["num_devices"] = scale.num_devices
        base["seed"] = arm_seed
        return [base]

    # -- execution ----------------------------------------------------- #

    def _execute(self, payloads: List[Dict[str, Any]],
                 table: Dict[str, Any]) -> List[Any]:
        workers = self._max_workers
        if workers is not None and workers > 1 and len(payloads) > 1:
            # The data table ships once per worker (via the initializer),
            # not once per task; `map` preserves submission order, so the
            # assembly below is deterministic regardless of scheduling.
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_task_data, initargs=(table,),
            ) as pool:
                return list(pool.map(_execute_task, payloads))
        _init_task_data(table)
        try:
            return [_execute_task(p) for p in payloads]
        finally:
            _init_task_data({})

    def run(self, spec: ExperimentSpec, seed: int = 0) -> FigureResult:
        """Execute every arm of ``spec`` and assemble a :class:`FigureResult`.

        ``seed`` is the run's root seed: the dataset seed and (offset by
        each arm's ``seed_offset``) every arm's stream seed.
        """
        payloads: List[Dict[str, Any]] = []
        plan: List[Tuple[ArmSpec, bool, slice]] = []
        table: Dict[str, Any] = {}
        ids: Dict[int, str] = {}
        for arm, is_reference in (
            [(a, False) for a in spec.arms]
            + [(a, True) for a in spec.reference_arms]
        ):
            arm_payloads = self._arm_payloads(spec, arm, seed, table, ids)
            start = len(payloads)
            payloads.extend(arm_payloads)
            plan.append((arm, is_reference, slice(start, len(payloads))))

        outputs = self._execute(payloads, table)

        result = FigureResult(spec.name)
        for arm, is_reference, where in plan:
            chunk = outputs[where]
            if is_reference:
                if len(chunk) != 1 or not isinstance(chunk[0], float):
                    raise ConfigurationError(
                        f"reference arm '{arm.label}' must produce a single "
                        f"scalar (use kind='central_batch')"
                    )
                result.reference_lines[arm.label] = chunk[0]
            elif arm.kind == "crowd":
                result.curves[arm.label] = average_curves(chunk)
            else:
                result.curves[arm.label] = chunk[0]
        return result
