"""Sweep runner: execute an :class:`ExperimentSpec` across arms × trials.

:class:`ExperimentSession` turns a declarative spec into a
:class:`~repro.experiments.results.FigureResult`.  Work is decomposed into
one *task* per baseline arm and one task per (crowd arm, trial), so a
multi-arm, multi-trial figure saturates a
:class:`concurrent.futures.ProcessPoolExecutor` when ``max_workers > 1``.
Every task rebuilds its components from :mod:`repro.registry` names and
derives its random streams exactly as the serial code does (per-trial seeds
via :class:`~repro.utils.rng.RngFactory`, per-arm offsets via
``ArmSpec.seed_offset``), so parallel results are bit-identical to serial
ones regardless of scheduling order.

Datasets are generated once per ``(maker, kwargs)`` through a
:class:`DatasetCache` shared across arms (and across ``run`` calls on the
same session), instead of once per arm as the old hand-written figure code
did.

Attach a :class:`~repro.store.RunStore` and results also persist *across*
processes: every task is keyed by a content hash of its payload
(:func:`repro.store.keys.task_key`), cached tasks are skipped, fresh ones
are written to the store as they complete (so an interrupted sweep
resumes from disk, bit-identically), and a finished figure is stored
whole so a repeat run executes zero tasks.
"""

from __future__ import annotations

import inspect
import json
import math
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Tuple)

import numpy as np

from repro.data.dataset import Dataset
from repro.evaluation.curves import ErrorCurve, average_curves
from repro.experiments.results import FigureResult
from repro.experiments.specs import ArmSpec, ExperimentSpec
from repro.network import LinkDelays
from repro.privacy import CentralizedBudget
from repro.registry import DATASETS, MODELS, PARTITIONERS, SCHEDULES
from repro.simulation import CrowdSimulator, SimulationConfig
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RngFactory

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.store import RunStore


@dataclass
class StoreStats:
    """Store traffic counters, accumulated across a session's runs."""

    figure_hits: int = 0   #: whole figures served straight from the store
    task_hits: int = 0     #: tasks skipped because their key was stored
    task_misses: int = 0   #: tasks actually executed (and then stored)

    def snapshot(self) -> "StoreStats":
        return StoreStats(self.figure_hits, self.task_hits,
                          self.task_misses)

    def since(self, earlier: "StoreStats") -> "StoreStats":
        """Counter deltas between ``earlier`` and now (for per-run logs)."""
        return StoreStats(
            self.figure_hits - earlier.figure_hits,
            self.task_hits - earlier.task_hits,
            self.task_misses - earlier.task_misses,
        )


class DatasetCache:
    """Memoizes generated datasets across arms and runs.

    Keys are ``(maker, sorted kwargs)`` tuples — for the standard makers
    that is ``(maker, num_train, num_test, seed, ...)`` — so the six figure
    experiments stop regenerating identical synthetic datasets per arm.
    """

    def __init__(self):
        self._store: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: Any, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on first use."""
        if key in self._store:
            self.hits += 1
        else:
            self.misses += 1
            self._store[key] = builder()
        return self._store[key]

    def split(self, maker: str, kwargs: Dict[str, Any]) -> Tuple[Dataset, Dataset]:
        """A ``(train, test)`` split from the :data:`~repro.registry.DATASETS`
        registry, cached on ``(maker, kwargs)``."""
        key = (maker, _kwargs_key(kwargs))
        return self.get(key, lambda: DATASETS.create(maker, **kwargs))

    def clear(self) -> None:
        self._store.clear()


def _kwargs_key(kwargs: Dict[str, Any]) -> str:
    """A hashable, order-insensitive cache key for a kwargs dict.

    Canonical JSON rather than ``tuple(sorted(items))`` so JSON-authored
    specs with list/dict-valued kwargs stay cacheable.
    """
    return json.dumps(kwargs, sort_keys=True, default=repr)


# --------------------------------------------------------------------- #
# Task execution (module-level so payloads cross process boundaries)    #
# --------------------------------------------------------------------- #

#: Per-process table of resolved datasets, installed by
#: :func:`_init_task_data` (once per pool worker via the executor
#: initializer, or in-process for serial runs).  Task payloads carry
#: ``*_ref`` keys into this table instead of the datasets themselves, so
#: a figure's multi-MB arrays cross each process boundary once rather
#: than once per (arm, trial) task.
_TASK_DATA: Dict[str, Any] = {}


def _init_task_data(table: Dict[str, Any]) -> None:
    global _TASK_DATA
    _TASK_DATA = table


def _accepts_kwarg(factory: Callable[..., Any], name: str) -> bool:
    """Whether ``factory(**{name}: ...)`` is a valid call."""
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return True
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return True
    return name in params


def _build_model(payload: Dict[str, Any], data: Dataset):
    """Instantiate the arm's model, defaulting shape kwargs from ``data``."""
    name = payload["model"]
    factory = MODELS.get(name)
    kwargs = dict(payload["model_kwargs"])
    if _accepts_kwarg(factory, "num_features"):
        kwargs.setdefault("num_features", data.num_features)
    if _accepts_kwarg(factory, "num_classes"):
        kwargs.setdefault("num_classes", data.num_classes)
    if _accepts_kwarg(factory, "l2_regularization"):
        kwargs.setdefault("l2_regularization", payload["l2_regularization"])
    return factory(**kwargs)


def _budget(payload: Dict[str, Any]) -> Optional[CentralizedBudget]:
    epsilon = payload["epsilon"]
    if math.isinf(epsilon):
        return None
    return CentralizedBudget.even_split(epsilon)


def _simulation_config(payload: Dict[str, Any]) -> SimulationConfig:
    num_devices = payload["num_devices"]
    # τ in time units from a delay expressed in Δ = 1/(M·F_s) multiples
    # (Section V-C), via a probe config so the conversion tracks
    # SimulationConfig's sampling-rate semantics.
    probe = SimulationConfig(num_devices=num_devices)
    tau = probe.delay_in_sample_units(payload["delay_multiples"])
    gateways = None
    if payload.get("gateway"):
        # Gateway profile delays/deadlines are quoted in Δ multiples in
        # the spec, like delay_multiples; the same probe conversion
        # scales them into simulator time units.
        from repro.gateway.topology import TwoTierTopology
        gateways = TwoTierTopology.from_dict(
            payload["gateway"], delay_scale=probe.delay_in_sample_units(1.0)
        )
    return SimulationConfig(
        num_devices=num_devices,
        batch_size=payload["batch_size"],
        epsilon=payload["epsilon"],
        learning_rate_constant=payload["learning_rate_constant"],
        l2_regularization=payload["l2_regularization"],
        link_delays=LinkDelays.uniform(tau) if tau > 0 else LinkDelays.zero(),
        num_passes=payload["num_passes"],
        gateways=gateways,
    )


def _crowd_rate_constant(payload: Dict[str, Any]) -> float:
    if payload["schedule"] != "inverse_sqrt":
        raise ConfigurationError(
            "crowd arms use the server's c/sqrt(t) optimizer; "
            f"schedule '{payload['schedule']}' is only available for "
            "central_sgd/decentralized arms"
        )
    return float(payload["schedule_kwargs"].get("constant", 1.0))


def _run_crowd_trial(payload: Dict[str, Any]) -> ErrorCurve:
    """One Crowd-ML trial, seeded exactly like ``run_crowd_trials``."""
    train: Dataset = payload["train"]
    trial: int = payload["trial"]
    factory = RngFactory(payload["base_seed"])
    partition = PARTITIONERS.get(payload["partition"])
    assignment_rng = factory.generator("assignment", trial)
    device_datasets = partition(
        train, payload["num_devices"], assignment_rng,
        **payload["partition_kwargs"],
    )
    simulator = CrowdSimulator(
        _build_model(payload, train),
        device_datasets,
        payload["test"],
        _simulation_config(payload),
        seed=factory.seed("simulator", trial),
    )
    return simulator.run().curve


def _run_central_batch(payload: Dict[str, Any]) -> float:
    from repro.baselines import CentralizedBatchTrainer

    train: Dataset = payload["train"]
    trainer = CentralizedBatchTrainer(
        _build_model(payload, train), budget=_budget(payload),
        **payload["trainer_kwargs"],
    )
    rng = np.random.default_rng(payload["seed"])
    return trainer.evaluate(train, payload["test"], rng)


def _run_central_sgd(payload: Dict[str, Any]) -> ErrorCurve:
    from repro.baselines import CentralizedSGDTrainer

    train: Dataset = payload["train"]
    schedule = SCHEDULES.create(payload["schedule"], **payload["schedule_kwargs"])
    trainer = CentralizedSGDTrainer(
        _build_model(payload, train),
        schedule,
        batch_size=payload["batch_size"],
        budget=_budget(payload),
        **payload["trainer_kwargs"],
    )
    rng = np.random.default_rng(payload["seed"])
    return trainer.fit(
        train, payload["test"], rng, num_passes=payload["num_passes"]
    ).curve


def _run_decentralized(payload: Dict[str, Any]) -> ErrorCurve:
    from repro.baselines import DecentralizedTrainer

    train: Dataset = payload["train"]
    schedule = SCHEDULES.create(payload["schedule"], **payload["schedule_kwargs"])
    trainer = DecentralizedTrainer(
        _build_model(payload, train), schedule, **payload["trainer_kwargs"]
    )
    partition = PARTITIONERS.get(payload["partition"])
    parts = partition(
        train, payload["num_devices"], np.random.default_rng(payload["seed"]),
        **payload["partition_kwargs"],
    )
    return trainer.fit(
        parts, payload["test"], np.random.default_rng(payload["seed"] + 1),
        num_passes=payload["num_passes"],
    ).curve


def _run_activity_online(payload: Dict[str, Any]) -> ErrorCurve:
    """Fig. 3's setting: per-device streams, online time-averaged error."""
    streams: List[Dataset] = payload["streams"]
    config = SimulationConfig(
        num_devices=len(streams),
        batch_size=payload["batch_size"],
        learning_rate_constant=_crowd_rate_constant(payload),
        l2_regularization=payload["l2_regularization"],
    )
    simulator = CrowdSimulator(
        _build_model(payload, streams[0]), streams, payload["test"], config,
        seed=payload["seed"],
    )
    averaged = simulator.run().time_averaged_error()
    iterations = np.arange(1, averaged.shape[0] + 1)
    return ErrorCurve(iterations, averaged)


#: Placeholder for task slots not yet filled from cache or execution
#: (results themselves are never ``None``-adjacent sentinels).
_PENDING = object()

_EXECUTORS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "crowd": _run_crowd_trial,
    "central_batch": _run_central_batch,
    "central_sgd": _run_central_sgd,
    "decentralized": _run_decentralized,
    "activity_online": _run_activity_online,
}


def _execute_task(payload: Dict[str, Any]) -> Any:
    payload = dict(payload)
    for name in ("train", "test", "streams"):
        ref = payload.pop(f"{name}_ref", None)
        if ref is not None:
            payload[name] = _TASK_DATA[ref]
    return _EXECUTORS[payload["kind"]](payload)


# --------------------------------------------------------------------- #
# The session                                                           #
# --------------------------------------------------------------------- #


class ExperimentSession:
    """Executes :class:`ExperimentSpec`\\ s, optionally in parallel.

    Parameters
    ----------
    max_workers:
        ``None``/``0``/``1`` runs every task serially in-process; ``N > 1``
        fans tasks out over a ``ProcessPoolExecutor``.  Results are
        bit-identical either way (seeding is derived per task, and curves
        are averaged in deterministic trial order).
    dataset_cache:
        Optional shared :class:`DatasetCache`; by default each session owns
        one, reused across ``run`` calls.
    store:
        Optional :class:`~repro.store.RunStore`.  When given, every task
        and every finished figure is persisted under its content key;
        stored tasks are skipped on later runs (``store_stats`` counts
        the traffic), and results — fresh, cached, or mixed — stay
        bit-identical to a storeless run.
    refresh:
        With a store, ``True`` recomputes everything and overwrites the
        stored entries (the ``--force`` of ``regenerate_figures.py``).

    Examples
    --------
    >>> import math
    >>> from repro.experiments import ArmSpec, ExperimentScale, ExperimentSpec
    >>> spec = ExperimentSpec(
    ...     name="demo", dataset="mnist_like",
    ...     scale=ExperimentScale(num_train=300, num_test=100, num_devices=5,
    ...                           num_trials=1, num_passes=1),
    ...     arms=(ArmSpec(label="crowd", schedule_kwargs={"constant": 30.0}),))
    >>> result = ExperimentSession().run(spec, seed=0)
    >>> 0.0 <= result.curves["crowd"].final_error <= 1.0
    True
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        dataset_cache: Optional[DatasetCache] = None,
        store: Optional["RunStore"] = None,
        refresh: bool = False,
    ):
        if max_workers is not None and max_workers < 0:
            raise ConfigurationError(
                f"max_workers must be >= 0, got {max_workers}"
            )
        self._max_workers = max_workers
        self._cache = dataset_cache if dataset_cache is not None else DatasetCache()
        self._store = store
        self._refresh = refresh
        self._store_stats = StoreStats()

    @property
    def max_workers(self) -> Optional[int]:
        return self._max_workers

    @property
    def dataset_cache(self) -> DatasetCache:
        return self._cache

    @property
    def store(self) -> Optional["RunStore"]:
        return self._store

    @property
    def store_stats(self) -> StoreStats:
        return self._store_stats

    # -- dataset resolution ------------------------------------------- #

    def _split_request(
        self, spec: ExperimentSpec, arm: ArmSpec, seed: int
    ) -> Tuple[str, Dict[str, Any]]:
        """The ``(maker, kwargs)`` identifying an arm's train/test split.

        This request — not the generated arrays — is what enters a
        task's store key as its ``data_desc``.
        """
        maker = arm.dataset if arm.dataset is not None else spec.dataset
        if maker is None:
            raise ConfigurationError(
                f"arm '{arm.label}' has no dataset and experiment "
                f"'{spec.name}' declares no default"
            )
        kwargs = {**spec.dataset_kwargs, **arm.dataset_kwargs}
        if spec.scale is not None:
            kwargs.setdefault("num_train", spec.scale.num_train)
            kwargs.setdefault("num_test", spec.scale.num_test)
        kwargs.setdefault("seed", seed)
        return maker, kwargs

    def _streams_request(
        self, spec: ExperimentSpec, arm: ArmSpec, seed: int
    ) -> Dict[str, Any]:
        """The full recipe for an arm's per-device streams (Fig. 3)."""
        maker = arm.dataset if arm.dataset is not None else spec.dataset
        if maker is None:
            maker = "activity_stream"
        kwargs = {**spec.dataset_kwargs, **arm.dataset_kwargs}
        num_devices = kwargs.pop(
            "num_devices",
            spec.scale.num_devices if spec.scale is not None else None,
        )
        if num_devices is None:
            raise ConfigurationError(
                f"activity_online arm '{arm.label}' needs num_devices "
                "(dataset_kwargs or spec.scale)"
            )
        try:
            samples = kwargs.pop("samples_per_device")
        except KeyError:
            raise ConfigurationError(
                f"activity_online arm '{arm.label}' needs samples_per_device "
                "in dataset_kwargs"
            ) from None
        return {
            "dataset": maker,
            "layout": "streams",
            "num_devices": num_devices,
            "samples_per_device": samples,
            "test_samples": kwargs.pop("test_samples", 150),
            "seed": seed,
            "dataset_kwargs": kwargs,
        }

    def _resolve_streams(
        self, request: Dict[str, Any]
    ) -> Tuple[List[Dataset], Dataset]:
        """Per-device online streams plus a test stream (Fig. 3 layout)."""
        maker = request["dataset"]
        num_devices = request["num_devices"]
        samples = request["samples_per_device"]
        test_samples = request["test_samples"]
        seed = request["seed"]
        kwargs = request["dataset_kwargs"]
        key = (maker, "streams", num_devices, samples, test_samples, seed,
               _kwargs_key(kwargs))

        def build() -> Tuple[List[Dataset], Dataset]:
            streams = [
                DATASETS.create(maker, num_samples=samples,
                                rng=np.random.default_rng(seed + d), **kwargs)
                for d in range(num_devices)
            ]
            test = DATASETS.create(maker, num_samples=test_samples,
                                   rng=np.random.default_rng(seed + 900),
                                   **kwargs)
            return streams, test

        return self._cache.get(key, build)

    # -- payload construction ----------------------------------------- #

    @staticmethod
    def _data_ref(obj: Any, table: Dict[str, Any],
                  ids: Dict[int, str]) -> str:
        """Intern ``obj`` in the run's data table, returning its ref key."""
        if id(obj) not in ids:
            ids[id(obj)] = f"data{len(table)}"
            table[ids[id(obj)]] = obj
        return ids[id(obj)]

    def _arm_payloads(
        self, spec: ExperimentSpec, arm: ArmSpec, seed: int
    ) -> List[Dict[str, Any]]:
        """Build an arm's task payloads — datasets stay *unresolved*.

        Each payload carries a ``data_desc`` (the resolved dataset
        request) instead of data refs; :meth:`_materialize` turns the
        request into arrays later, and only for tasks that actually
        execute — a store-resumed run never regenerates datasets for
        cached tasks.
        """
        scale = spec.scale
        arm_seed = (arm.seed_override if arm.seed_override is not None
                    else seed + arm.seed_offset)
        base = {
            "kind": arm.kind,
            "model": arm.model,
            "model_kwargs": dict(arm.model_kwargs),
            "partition": arm.partition,
            "partition_kwargs": dict(arm.partition_kwargs),
            "schedule": arm.schedule,
            "schedule_kwargs": dict(arm.schedule_kwargs),
            "trainer_kwargs": dict(arm.trainer_kwargs),
            "batch_size": arm.batch_size,
            "epsilon": arm.epsilon,
            "delay_multiples": arm.delay_multiples,
            "l2_regularization": arm.l2_regularization,
            "gateway": dict(arm.gateway) if arm.gateway else None,
        }
        if arm.kind == "activity_online":
            base.update(seed=arm_seed,
                        data_desc=self._streams_request(spec, arm, seed))
            return [base]

        maker, dataset_kwargs = self._split_request(spec, arm, seed)
        base["data_desc"] = {"dataset": maker, "layout": "split",
                             "dataset_kwargs": dataset_kwargs}
        num_passes = arm.num_passes
        if num_passes is None:
            num_passes = scale.num_passes if scale is not None else 1
        base["num_passes"] = num_passes

        if arm.kind == "crowd":
            if scale is None:
                raise ConfigurationError(
                    f"crowd arm '{arm.label}' requires spec.scale"
                )
            base.update(
                num_devices=scale.num_devices,
                learning_rate_constant=_crowd_rate_constant(base),
                base_seed=arm_seed,
            )
            return [dict(base, trial=t) for t in range(scale.num_trials)]

        if arm.kind == "decentralized":
            if scale is None:
                raise ConfigurationError(
                    f"decentralized arm '{arm.label}' requires spec.scale"
                )
            base["num_devices"] = scale.num_devices
        base["seed"] = arm_seed
        return [base]

    # -- execution ----------------------------------------------------- #

    def _materialize(self, payload: Dict[str, Any],
                     table: Dict[str, Any], ids: Dict[int, str]) -> None:
        """Resolve a payload's ``data_desc`` into in-memory data refs.

        Called only for payloads about to execute; the shared
        :class:`DatasetCache` makes repeated requests for one split
        generate it once.
        """
        desc = payload["data_desc"]
        if desc.get("layout") == "streams":
            streams, test = self._resolve_streams(desc)
            payload["streams_ref"] = self._data_ref(streams, table, ids)
        else:
            train, test = self._cache.split(desc["dataset"],
                                            desc["dataset_kwargs"])
            payload["train_ref"] = self._data_ref(train, table, ids)
        payload["test_ref"] = self._data_ref(test, table, ids)

    def _execute(self, payloads: List[Dict[str, Any]],
                 table: Dict[str, Any],
                 on_result: Optional[Callable[[int, Any], None]] = None,
                 ) -> List[Any]:
        workers = self._max_workers
        if workers is not None and workers > 1 and len(payloads) > 1:
            # The data table ships once per worker (via the initializer),
            # not once per task.  Futures are consumed as they complete
            # — ``on_result`` (the store write) fires the moment a task
            # finishes, regardless of submission order, so a killed
            # parallel sweep keeps every completed result — while the
            # returned list is assembled by submission index, keeping
            # downstream averaging deterministic.
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_task_data, initargs=(table,),
            ) as pool:
                futures = {pool.submit(_execute_task, payload): index
                           for index, payload in enumerate(payloads)}
                outputs: List[Any] = [_PENDING] * len(payloads)
                for future in as_completed(futures):
                    index = futures[future]
                    output = future.result()
                    if on_result is not None:
                        on_result(index, output)
                    outputs[index] = output
                return outputs
        _init_task_data(table)
        try:
            outputs = []
            for index, payload in enumerate(payloads):
                output = _execute_task(payload)
                if on_result is not None:
                    on_result(index, output)
                outputs.append(output)
            return outputs
        finally:
            _init_task_data({})

    def _run_payloads(self, payloads: List[Dict[str, Any]],
                      extras: List[Dict[str, Any]]) -> List[Any]:
        """Execute ``payloads``, going through the store when attached.

        Cached tasks come back decoded from disk — without their
        datasets ever being generated; the rest are materialized,
        executed, and stored one by one as their results arrive, so
        whatever finished before an interruption survives it.
        """
        table: Dict[str, Any] = {}
        ids: Dict[int, str] = {}
        if self._store is None:
            for payload in payloads:
                self._materialize(payload, table, ids)
            return self._execute(payloads, table)
        from repro.store.keys import task_key

        store = self._store
        keys = [task_key(p) for p in payloads]
        outputs: List[Any] = [_PENDING] * len(payloads)
        if not self._refresh:
            for index, key in enumerate(keys):
                cached = store.get(key)
                if cached is not None:
                    outputs[index] = cached
                    self._store_stats.task_hits += 1
        pending = [i for i in range(len(payloads))
                   if outputs[i] is _PENDING]
        for index in pending:
            self._materialize(payloads[index], table, ids)

        def persist(position: int, output: Any) -> None:
            index = pending[position]
            outputs[index] = output
            self._store_stats.task_misses += 1
            store.put(keys[index], output, extra=extras[index],
                      overwrite=self._refresh)

        self._execute([payloads[i] for i in pending], table,
                      on_result=persist)
        return outputs

    def run(self, spec: ExperimentSpec, seed: int = 0) -> FigureResult:
        """Execute every arm of ``spec`` and assemble a :class:`FigureResult`.

        ``seed`` is the run's root seed: the dataset seed and (offset by
        each arm's ``seed_offset``) every arm's stream seed.

        With a store attached, tasks whose content key is already stored
        are not executed; fresh tasks are persisted the moment they
        finish (a killed sweep resumes from disk), and the assembled
        figure is stored whole, so repeating a completed run executes
        nothing at all.
        """
        if self._store is not None:
            from repro.store.keys import figure_key

            fig_key = figure_key(spec.to_dict(), seed)
            if not self._refresh:
                cached = self._store.get(fig_key)
                if isinstance(cached, FigureResult):
                    self._store_stats.figure_hits += 1
                    return cached

        payloads: List[Dict[str, Any]] = []
        extras: List[Dict[str, Any]] = []
        plan: List[Tuple[ArmSpec, bool, slice]] = []
        for arm, is_reference in (
            [(a, False) for a in spec.arms]
            + [(a, True) for a in spec.reference_arms]
        ):
            arm_payloads = self._arm_payloads(spec, arm, seed)
            start = len(payloads)
            payloads.extend(arm_payloads)
            extras.extend(
                {"record": "task", "experiment": spec.name,
                 "label": arm.label, "arm_kind": arm.kind,
                 "seed": seed, "trial": p.get("trial")}
                for p in arm_payloads
            )
            plan.append((arm, is_reference, slice(start, len(payloads))))

        outputs = self._run_payloads(payloads, extras)

        result = FigureResult(spec.name)
        for arm, is_reference, where in plan:
            chunk = outputs[where]
            if is_reference:
                if len(chunk) != 1 or not isinstance(chunk[0], float):
                    raise ConfigurationError(
                        f"reference arm '{arm.label}' must produce a single "
                        f"scalar (use kind='central_batch')"
                    )
                result.reference_lines[arm.label] = chunk[0]
            elif arm.kind == "crowd":
                result.curves[arm.label] = average_curves(chunk)
            else:
                result.curves[arm.label] = chunk[0]

        if self._store is not None:
            self._store.put(
                fig_key, result,
                extra={"record": "figure", "experiment": spec.name,
                       "seed": seed, "spec": spec.to_dict()},
                overwrite=self._refresh,
            )
        return result
