"""Result container shared by every figure experiment."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.evaluation.curves import ErrorCurve


@dataclass
class FigureResult:
    """Curves and reference lines reproducing one figure."""

    figure: str
    curves: Dict[str, ErrorCurve] = field(default_factory=dict)
    reference_lines: Dict[str, float] = field(default_factory=dict)

    def tail_errors(self, fraction: float = 0.2) -> Dict[str, float]:
        """Asymptotic (tail-mean) error per arm."""
        return {name: curve.tail_error(fraction) for name, curve in self.curves.items()}

    def format_table(self) -> str:
        """Human-readable summary: one row per arm."""
        lines = [f"=== {self.figure} ===",
                 f"{'arm':<34} {'final':>8} {'tail':>8}"]
        for name, curve in sorted(self.curves.items()):
            lines.append(
                f"{name:<34} {curve.final_error:>8.3f} {curve.tail_error():>8.3f}"
            )
        for name, value in sorted(self.reference_lines.items()):
            lines.append(f"{name:<34} {value:>8.3f} {'(const)':>8}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Serialization                                                      #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; floats round-trip exactly (see ErrorCurve)."""
        return {
            "figure": self.figure,
            "curves": {name: curve.to_dict()
                       for name, curve in self.curves.items()},
            "reference_lines": {name: float(value)
                                for name, value in self.reference_lines.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FigureResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            figure=data["figure"],
            curves={name: ErrorCurve.from_dict(curve)
                    for name, curve in data.get("curves", {}).items()},
            reference_lines={name: float(value) for name, value
                             in data.get("reference_lines", {}).items()},
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FigureResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
