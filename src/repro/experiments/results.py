"""Result container shared by every figure experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.evaluation.curves import ErrorCurve


@dataclass
class FigureResult:
    """Curves and reference lines reproducing one figure."""

    figure: str
    curves: Dict[str, ErrorCurve] = field(default_factory=dict)
    reference_lines: Dict[str, float] = field(default_factory=dict)

    def tail_errors(self, fraction: float = 0.2) -> Dict[str, float]:
        """Asymptotic (tail-mean) error per arm."""
        return {name: curve.tail_error(fraction) for name, curve in self.curves.items()}

    def format_table(self) -> str:
        """Human-readable summary: one row per arm."""
        lines = [f"=== {self.figure} ===",
                 f"{'arm':<34} {'final':>8} {'tail':>8}"]
        for name, curve in sorted(self.curves.items()):
            lines.append(
                f"{name:<34} {curve.final_error:>8.3f} {curve.tail_error():>8.3f}"
            )
        for name, value in sorted(self.reference_lines.items()):
            lines.append(f"{name:<34} {value:>8.3f} {'(const)':>8}")
        return "\n".join(lines)
