"""Declarative experiment layer: specs, sweep runner, and figure wrappers.

Three layers turn the paper's figures into data (DESIGN.md §4):

* :mod:`repro.experiments.specs` — :class:`ArmSpec` / :class:`ExperimentSpec`,
  frozen dataclasses (JSON-serializable) declaring arms by
  :mod:`repro.registry` component names plus kwargs.
* :mod:`repro.experiments.session` — :class:`ExperimentSession`, which runs a
  spec's arms × trials serially or through a process pool (bit-identical
  either way) with a shared :class:`DatasetCache`.
* :mod:`repro.experiments.figures` — the paper's nine figure definitions as
  spec builders, plus the stable ``run_figN_experiment`` wrappers used by
  ``benchmarks/`` and ``examples/``.

Scale is controlled by :class:`ExperimentScale` so the same specs run the
paper-size experiment or a CI-size smoke version.
"""

from typing import Callable, Tuple

from repro.data.dataset import Dataset
from repro.experiments.figures import (
    FIG5_EPSILON,
    FIGURE_SPEC_BUILDERS,
    L2_REGULARIZATION,
    LEARNING_RATE_CONSTANT,
    approaches_spec,
    delay_spec,
    fig3_spec,
    fig4_spec,
    fig5_spec,
    fig6_spec,
    fig7_spec,
    fig8_spec,
    fig9_spec,
    privacy_spec,
    run_fig3_experiment,
    run_fig4_experiment,
    run_fig5_experiment,
    run_fig6_experiment,
    run_fig7_experiment,
    run_fig8_experiment,
    run_fig9_experiment,
)
from repro.experiments.results import FigureResult
from repro.experiments.scale import ExperimentScale
from repro.experiments.session import (
    DatasetCache,
    ExperimentSession,
    StoreStats,
)
from repro.experiments.specs import ARM_KINDS, ArmSpec, ExperimentSpec

#: Signature shared by the registered ``(train, test)`` dataset makers.
DatasetMaker = Callable[..., Tuple[Dataset, Dataset]]

__all__ = [
    "ARM_KINDS",
    "ArmSpec",
    "DatasetCache",
    "DatasetMaker",
    "ExperimentScale",
    "ExperimentSession",
    "ExperimentSpec",
    "FIG5_EPSILON",
    "FIGURE_SPEC_BUILDERS",
    "FigureResult",
    "L2_REGULARIZATION",
    "LEARNING_RATE_CONSTANT",
    "StoreStats",
    "approaches_spec",
    "delay_spec",
    "fig3_spec",
    "fig4_spec",
    "fig5_spec",
    "fig6_spec",
    "fig7_spec",
    "fig8_spec",
    "fig9_spec",
    "privacy_spec",
    "run_fig3_experiment",
    "run_fig4_experiment",
    "run_fig5_experiment",
    "run_fig6_experiment",
    "run_fig7_experiment",
    "run_fig8_experiment",
    "run_fig9_experiment",
]
