"""Delayed, lossy message channel between devices and the server.

A :class:`Channel` wraps the event queue: ``send`` samples a delay from its
:class:`~repro.network.latency.DelayModel`, consults its
:class:`~repro.network.outage.OutageModel`, and schedules the receiver
callback at ``now + delay`` (or drops the message).  Per-channel counters
feed the communication-load accounting of Section IV-B2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.network.events import EventQueue
from repro.network.latency import DelayModel, ZeroDelay
from repro.network.outage import NoOutage, OutageModel


@dataclass
class ChannelStats:
    """Traffic counters for one channel direction."""

    messages_sent: int = 0
    messages_dropped: int = 0
    payload_floats: int = 0
    total_delay: float = 0.0

    @property
    def messages_delivered(self) -> int:
        return self.messages_sent - self.messages_dropped

    @property
    def mean_delay(self) -> float:
        """Mean delay over delivered messages (0 when none delivered)."""
        delivered = self.messages_delivered
        return self.total_delay / delivered if delivered else 0.0


class Channel:
    """One direction of a device-server link.

    Parameters
    ----------
    queue:
        The shared simulation event queue.
    delay_model:
        Distribution of per-message delay.
    outage_model:
        Failure model; dropped messages never fire their callback.
    rng:
        Source of delay/outage randomness.
    name:
        Label used in diagnostics.
    """

    def __init__(
        self,
        queue: EventQueue,
        delay_model: Optional[DelayModel] = None,
        outage_model: Optional[OutageModel] = None,
        rng: Optional[np.random.Generator] = None,
        name: str = "channel",
    ):
        self._queue = queue
        self._delay_model = delay_model if delay_model is not None else ZeroDelay()
        self._outage_model = outage_model if outage_model is not None else NoOutage()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._name = str(name)
        self._stats = ChannelStats()

    @property
    def name(self) -> str:
        return self._name

    @property
    def stats(self) -> ChannelStats:
        """Live traffic counters for this channel."""
        return self._stats

    @property
    def delay_model(self) -> DelayModel:
        return self._delay_model

    def send(
        self,
        deliver: Callable[..., None],
        payload_floats: int = 0,
        on_drop: Optional[Callable[..., None]] = None,
        args: tuple = (),
        drop_args: tuple = (),
    ) -> bool:
        """Send a message; returns False if the outage model dropped it.

        ``payload_floats`` is the number of float64 values carried, used for
        the Section IV-B2 communication-volume accounting.  ``on_drop`` (if
        given) fires immediately when the message is lost, letting senders
        implement Remark 1's retry-later behaviour.

        ``args``/``drop_args`` ride the EventQueue's args slots end to end:
        hot paths pass a bound method plus its arguments instead of
        allocating a closure per message — delivery and outage-retry alike.
        """
        self._stats.messages_sent += 1
        self._stats.payload_floats += int(payload_floats)
        if self._outage_model.attempt_fails(self._rng, self._queue.now):
            self._stats.messages_dropped += 1
            if on_drop is not None:
                on_drop(*drop_args)
            return False
        delay = self._delay_model.sample(self._rng)
        self._stats.total_delay += delay
        self._queue.schedule_after(delay, deliver, tag=self._name, args=args)
        return True
