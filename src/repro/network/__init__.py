"""Simulated network substrate: event queue, delays, outages, transports.

Models Section IV-B3's three delay legs (τ_req, τ_co, τ_ci) with pluggable
delay distributions (uniform by default, per footnote 7) and Remark 1's
non-critical communication failures.  :mod:`repro.network.transport`
abstracts how protocol messages travel: event-driven channels
(:class:`SimulatedTransport`) or synchronous fused rounds
(:class:`DirectTransport`) for zero-delay configurations.
"""

from repro.network.channel import Channel, ChannelStats
from repro.network.events import EventHandle, EventQueue
from repro.network.latency import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LinkDelays,
    LogNormalDelay,
    UniformDelay,
    ZeroDelay,
)
from repro.network.outage import (
    BernoulliOutage,
    BurstyOutage,
    NoOutage,
    OutageModel,
    WindowedOutage,
)
from repro.network.transport import (
    DeviceLink,
    DirectLink,
    DirectTransport,
    SimulatedLink,
    SimulatedTransport,
    Transport,
)

__all__ = [
    "BernoulliOutage",
    "BurstyOutage",
    "Channel",
    "ChannelStats",
    "ConstantDelay",
    "DelayModel",
    "DeviceLink",
    "DirectLink",
    "DirectTransport",
    "EventHandle",
    "EventQueue",
    "ExponentialDelay",
    "LinkDelays",
    "LogNormalDelay",
    "NoOutage",
    "OutageModel",
    "SimulatedLink",
    "SimulatedTransport",
    "Transport",
    "UniformDelay",
    "WindowedOutage",
    "ZeroDelay",
]
