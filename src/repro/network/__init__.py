"""Simulated network substrate: event queue, delays, outages, channels.

Models Section IV-B3's three delay legs (τ_req, τ_co, τ_ci) with pluggable
delay distributions (uniform by default, per footnote 7) and Remark 1's
non-critical communication failures.
"""

from repro.network.channel import Channel, ChannelStats
from repro.network.events import EventHandle, EventQueue
from repro.network.latency import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LinkDelays,
    LogNormalDelay,
    UniformDelay,
    ZeroDelay,
)
from repro.network.outage import (
    BernoulliOutage,
    BurstyOutage,
    NoOutage,
    OutageModel,
    WindowedOutage,
)

__all__ = [
    "BernoulliOutage",
    "BurstyOutage",
    "Channel",
    "ChannelStats",
    "ConstantDelay",
    "DelayModel",
    "EventHandle",
    "EventQueue",
    "ExponentialDelay",
    "LinkDelays",
    "LogNormalDelay",
    "NoOutage",
    "OutageModel",
    "UniformDelay",
    "WindowedOutage",
    "ZeroDelay",
]
