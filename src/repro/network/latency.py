"""Communication-delay models (Section IV-B3 and footnote 7).

The evaluation samples each of the three delays — request (τ_req),
check-out (τ_co), and check-in (τ_ci) — uniformly from ``[0, τ]`` per
communication instance.  Footnote 7 notes any other distribution works too,
so :class:`DelayModel` is an interface with uniform, constant, exponential,
and shifted-lognormal implementations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive


class DelayModel(ABC):
    """Distribution of a one-way message delay."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one non-negative delay."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected delay (for analysis and reporting)."""

    @property
    def is_zero(self) -> bool:
        """True when every sample is exactly 0.0 **and** draws no RNG.

        Zero-delay links are what make the synchronous
        :class:`~repro.network.transport.DirectTransport` equivalent to
        event-driven delivery, so the default is conservative: only
        models that guarantee both properties override this.
        """
        return False


class ZeroDelay(DelayModel):
    """No delay — the τ = 0 arms of Figs. 4-5."""

    def sample(self, rng: np.random.Generator) -> float:
        return 0.0

    @property
    def mean(self) -> float:
        return 0.0

    @property
    def is_zero(self) -> bool:
        return True


class ConstantDelay(DelayModel):
    """Deterministic delay of fixed size."""

    def __init__(self, delay: float):
        self._delay = check_non_negative(delay, "delay")

    def sample(self, rng: np.random.Generator) -> float:
        return self._delay

    @property
    def mean(self) -> float:
        return self._delay

    @property
    def is_zero(self) -> bool:
        return self._delay == 0.0


class UniformDelay(DelayModel):
    """Uniform on ``[0, maximum]`` — the paper's default (Section V-C).

    >>> import numpy as np
    >>> model = UniformDelay(2.0)
    >>> 0.0 <= model.sample(np.random.default_rng(0)) <= 2.0
    True
    """

    def __init__(self, maximum: float):
        self._maximum = check_non_negative(maximum, "maximum")

    @property
    def maximum(self) -> float:
        """The maximum delay τ."""
        return self._maximum

    def sample(self, rng: np.random.Generator) -> float:
        if self._maximum == 0.0:
            return 0.0
        return float(rng.uniform(0.0, self._maximum))

    @property
    def mean(self) -> float:
        return self._maximum / 2.0

    @property
    def is_zero(self) -> bool:
        # sample() short-circuits before touching the RNG at τ = 0.
        return self._maximum == 0.0


class ExponentialDelay(DelayModel):
    """Exponential delay with given mean (footnote 7 alternative)."""

    def __init__(self, mean: float):
        self._mean = check_positive(mean, "mean")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    @property
    def mean(self) -> float:
        return self._mean


class LogNormalDelay(DelayModel):
    """Shifted lognormal delay: heavy-tailed mobile-network-like latency.

    Parameterized by the median and a shape sigma; ``offset`` adds a
    deterministic propagation floor.
    """

    def __init__(self, median: float, sigma: float = 0.5, offset: float = 0.0):
        self._median = check_positive(median, "median")
        self._sigma = check_positive(sigma, "sigma")
        self._offset = check_non_negative(offset, "offset")

    def sample(self, rng: np.random.Generator) -> float:
        return self._offset + float(
            rng.lognormal(mean=np.log(self._median), sigma=self._sigma)
        )

    @property
    def mean(self) -> float:
        return self._offset + self._median * float(np.exp(self._sigma**2 / 2.0))


@dataclass(frozen=True)
class LinkDelays:
    """The three delay legs of one check-out/check-in round trip.

    Attributes map to Section IV-B3's τ_req, τ_co, τ_ci.
    """

    request: DelayModel
    checkout: DelayModel
    checkin: DelayModel

    @classmethod
    def uniform(cls, tau: float) -> "LinkDelays":
        """The paper's setting τ = τ_req = τ_co = τ_ci, each ~ U[0, τ]."""
        return cls(UniformDelay(tau), UniformDelay(tau), UniformDelay(tau))

    @classmethod
    def zero(cls) -> "LinkDelays":
        """No delays anywhere (Figs. 4-5)."""
        return cls(ZeroDelay(), ZeroDelay(), ZeroDelay())

    @property
    def mean_round_trip(self) -> float:
        """Expected τ_req + τ_co + τ_ci."""
        return self.request.mean + self.checkout.mean + self.checkin.mean

    @property
    def is_zero(self) -> bool:
        """True when all three legs are exactly zero (RNG-free)."""
        return self.request.is_zero and self.checkout.is_zero and self.checkin.is_zero
