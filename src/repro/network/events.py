"""Deterministic discrete-event scheduler.

The simulated crowd (Section V-C) is driven by a single global event queue:
sample arrivals, message deliveries, and timer expirations are all events
with a floating-point timestamp.  Ties are broken by insertion order, which
keeps runs byte-for-byte reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.utils.exceptions import ConfigurationError

EventCallback = Callable[..., None]


class _ScheduledEvent:
    """One queue entry.  Heap ordering lives in the ``(time, sequence)``
    tuple pushed alongside it, so events themselves never compare — tuple
    comparison stays entirely in C on the hot path."""

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "fired", "tag")

    def __init__(self, time: float, sequence: int, callback: EventCallback,
                 args: tuple = (), tag: str = ""):
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.tag = tag


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent, queue: "EventQueue"):
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if self._event.fired or self._event.cancelled:
            return
        self._event.cancelled = True
        self._queue._pending -= 1


class EventQueue:
    """Min-heap event queue with a monotonically advancing clock.

    Examples
    --------
    >>> queue = EventQueue()
    >>> fired = []
    >>> _ = queue.schedule(1.0, lambda: fired.append("a"))
    >>> _ = queue.schedule(0.5, lambda: fired.append("b"))
    >>> queue.run()
    2
    >>> fired
    ['b', 'a']
    """

    def __init__(self):
        # Entries are (time, sequence, event) — sequence breaks ties by
        # insertion order and guarantees comparison never reaches the event.
        self._heap: list[tuple[float, int, _ScheduledEvent]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._fired = 0
        self._pending = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._pending

    @property
    def fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    def schedule(self, time: float, callback: EventCallback, tag: str = "",
                 args: tuple = ()) -> EventHandle:
        """Schedule ``callback`` at absolute ``time`` (≥ current time).

        ``args`` are passed through to ``callback`` when the event fires —
        hot paths schedule a bound method plus an args slot instead of
        allocating a fresh closure per event.
        """
        time = float(time)
        if time < self._now:
            raise ConfigurationError(
                f"cannot schedule event in the past: time={time} < now={self._now}"
            )
        sequence = next(self._counter)
        event = _ScheduledEvent(time, sequence, callback, args, tag)
        heapq.heappush(self._heap, (time, sequence, event))
        self._pending += 1
        return EventHandle(event, self)

    def schedule_after(self, delay: float, callback: EventCallback, tag: str = "",
                       args: tuple = ()) -> EventHandle:
        """Schedule ``callback`` after a relative non-negative ``delay``."""
        delay = float(delay)
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, tag, args)

    def take_matching(self, callback: EventCallback) -> Optional[tuple]:
        """Consume the head event iff it is due *now* through ``callback``.

        Returns the head event's ``args`` — marking it fired without
        dispatching it — when the next live event is scheduled at exactly
        the current time and carries ``callback``; returns ``None``
        otherwise (later timestamp, different callback, or empty queue).

        This lets a handler drain a **contiguous** run of same-timestamp
        deliveries in one dispatch (e.g. batching simultaneous check-in
        arrivals): only events that would have fired immediately next are
        taken, so the observable firing order is exactly preserved.
        """
        heap = self._heap
        while heap:
            time, _, event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if time != self._now or event.callback is not callback:
                return None
            heapq.heappop(heap)
            event.fired = True
            self._pending -= 1
            self._fired += 1
            return event.args
        return None

    def step(self) -> bool:
        """Fire the next event; return False when the queue is empty."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.fired = True
            self._pending -= 1
            self._now = time
            self._fired += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until exhaustion, a time horizon, or an event budget.

        Returns the number of events fired by this call.  Events scheduled
        exactly at ``until`` still fire.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            head_time, _, head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head_time > until:
                break
            self.step()
            fired += 1
        if until is not None and (not self._heap or self._heap[0][0] > until):
            self._now = max(self._now, until)
        return fired
