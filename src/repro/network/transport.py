"""Transports: how protocol messages travel between devices and server.

The device↔server boundary is transport-agnostic: the protocol core
(:class:`~repro.core.server_core.ServerCore`) and the device runtime never
schedule events or open sockets themselves.  A :class:`Transport` decides
how each leg of the Fig. 2 round trip — request (τ_req), check-out
(τ_co), check-in (τ_ci) — reaches the other side, and hands back one
:class:`DeviceLink` per device carrying the three legs plus their traffic
counters.

Two implementations:

* :class:`SimulatedTransport` — the event-driven network of Section V-C:
  each leg is a delayed, possibly lossy
  :class:`~repro.network.channel.Channel` on a shared
  :class:`~repro.network.events.EventQueue`.  Delivery callbacks travel
  as ``(callback, args)`` pairs end to end, so no closure is allocated
  per message.
* :class:`DirectTransport` — the zero-delay fast path: every leg is
  reliable and instantaneous, so a whole round trip executes as one
  synchronous call chain (see ``ServerCore.serve_round``) with **no**
  event-queue traffic at all.  It refuses construction with non-zero
  delays or a lossy outage model, because synchronous execution is only
  equivalent to the event-driven schedule when nothing can interleave
  within a round trip.  Per-leg counters are still maintained, so
  communication accounting is identical to the simulated network.

A third implementation, :class:`~repro.serve.remote.HttpTransport`,
lives in the serve layer: same synchronous round-trip contract as
:class:`DirectTransport` (its links subclass :class:`DirectLink`), but
the server side is a live :class:`~repro.serve.service.CrowdService`
reached over HTTP.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.network.channel import Channel, ChannelStats
from repro.network.events import EventQueue
from repro.network.latency import LinkDelays
from repro.network.outage import NoOutage, OutageModel
from repro.utils.exceptions import ConfigurationError


class DeviceLink(ABC):
    """One device's three transport legs plus their traffic counters."""

    __slots__ = ()

    @property
    @abstractmethod
    def messages_dropped(self) -> int:
        """Messages lost across all three legs."""


class SimulatedLink(DeviceLink):
    """Three event-queue channels: request, check-out, check-in."""

    __slots__ = ("request", "checkout", "checkin")

    def __init__(self, request: Channel, checkout: Channel, checkin: Channel):
        self.request = request
        self.checkout = checkout
        self.checkin = checkin

    @property
    def messages_dropped(self) -> int:
        return (
            self.request.stats.messages_dropped
            + self.checkout.stats.messages_dropped
            + self.checkin.stats.messages_dropped
        )


class DirectLink(DeviceLink):
    """Reliable, instantaneous legs — counters only, no scheduling.

    ``note_request``/``note_checkout``/``note_checkin`` record one sent
    message on the corresponding leg; delivery is the caller running the
    receiver's code synchronously.
    """

    __slots__ = ("request_stats", "checkout_stats", "checkin_stats")

    def __init__(self):
        self.request_stats = ChannelStats()
        self.checkout_stats = ChannelStats()
        self.checkin_stats = ChannelStats()

    def _note(self, stats: ChannelStats, payload_floats: int) -> None:
        stats.messages_sent += 1
        stats.payload_floats += payload_floats

    def note_request(self, payload_floats: int = 0) -> None:
        self._note(self.request_stats, payload_floats)

    def note_checkout(self, payload_floats: int = 0) -> None:
        self._note(self.checkout_stats, payload_floats)

    def note_checkin(self, payload_floats: int = 0) -> None:
        self._note(self.checkin_stats, payload_floats)

    @property
    def messages_dropped(self) -> int:
        """Always 0: direct legs are reliable by construction."""
        return 0


class Transport(ABC):
    """Factory for per-device links with a declared execution style.

    ``synchronous`` tells the driver whether a round trip completes
    inside the send call (fused path) or via scheduled deliveries.
    """

    #: Whether round trips execute synchronously (no event scheduling).
    synchronous: bool = False

    @abstractmethod
    def connect(
        self, device_id: int, rng: Optional[np.random.Generator] = None
    ) -> DeviceLink:
        """Create the three transport legs for one device."""


class SimulatedTransport(Transport):
    """Event-driven delivery over per-device delayed, lossy channels.

    Parameters
    ----------
    queue:
        The shared simulation event queue.
    delays:
        The τ_req/τ_co/τ_ci distributions applied to every link.
    outage:
        Failure model shared by all legs (reliable by default).
    """

    synchronous = False

    def __init__(
        self,
        queue: EventQueue,
        delays: Optional[LinkDelays] = None,
        outage: Optional[OutageModel] = None,
    ):
        self._queue = queue
        self._delays = delays if delays is not None else LinkDelays.zero()
        self._outage = outage if outage is not None else NoOutage()

    @property
    def queue(self) -> EventQueue:
        return self._queue

    @property
    def delays(self) -> LinkDelays:
        return self._delays

    def connect(
        self, device_id: int, rng: Optional[np.random.Generator] = None
    ) -> SimulatedLink:
        return SimulatedLink(
            Channel(self._queue, self._delays.request, self._outage, rng,
                    name=f"request-{device_id}"),
            Channel(self._queue, self._delays.checkout, self._outage, rng,
                    name=f"checkout-{device_id}"),
            Channel(self._queue, self._delays.checkin, self._outage, rng,
                    name=f"checkin-{device_id}"),
        )


class DirectTransport(Transport):
    """Synchronous fused-round execution for zero-delay, reliable links.

    Raises :class:`~repro.utils.exceptions.ConfigurationError` when asked
    to carry delayed or lossy traffic — those need the event queue.
    """

    synchronous = True

    def __init__(
        self,
        delays: Optional[LinkDelays] = None,
        outage: Optional[OutageModel] = None,
    ):
        if delays is not None and not delays.is_zero:
            raise ConfigurationError(
                "DirectTransport requires zero link delays; use "
                "SimulatedTransport for delayed networks"
            )
        if outage is not None and not isinstance(outage, NoOutage):
            raise ConfigurationError(
                "DirectTransport requires a reliable network (NoOutage); "
                "use SimulatedTransport for lossy links"
            )

    def connect(
        self, device_id: int, rng: Optional[np.random.Generator] = None
    ) -> DirectLink:
        return DirectLink()
