"""Network-outage models (Remark 1 of Algorithm 1).

A device's check-out or check-in can fail — a prolonged outage leaves the
device's parameters stale but is non-critical for overall learning.  An
:class:`OutageModel` decides, per communication attempt, whether the message
is lost.  Devices keep buffering and retry on the next minibatch boundary,
exactly as Remark 1 prescribes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_fraction, check_non_negative, check_positive


class OutageModel(ABC):
    """Decides whether a given communication attempt fails."""

    @abstractmethod
    def attempt_fails(self, rng: np.random.Generator, time: float) -> bool:
        """Return True when the message at simulation ``time`` is lost."""


class NoOutage(OutageModel):
    """Reliable network — every message is delivered."""

    def attempt_fails(self, rng: np.random.Generator, time: float) -> bool:
        return False


class BernoulliOutage(OutageModel):
    """Each attempt independently fails with probability ``drop_probability``.

    >>> import numpy as np
    >>> model = BernoulliOutage(0.0)
    >>> model.attempt_fails(np.random.default_rng(0), 0.0)
    False
    """

    def __init__(self, drop_probability: float):
        self._drop_probability = check_fraction(drop_probability, "drop_probability")

    @property
    def drop_probability(self) -> float:
        return self._drop_probability

    def attempt_fails(self, rng: np.random.Generator, time: float) -> bool:
        if self._drop_probability == 0.0:
            return False
        return bool(rng.random() < self._drop_probability)


class WindowedOutage(OutageModel):
    """Deterministic blackout windows: fails iff ``time`` falls inside one.

    Models the "prolonged period of network outage" of Remark 1; windows
    are half-open intervals ``[start, end)``.
    """

    def __init__(self, windows: list[tuple[float, float]]):
        cleaned = []
        for start, end in windows:
            start = check_non_negative(float(start), "window start")
            end = check_non_negative(float(end), "window end")
            if end <= start:
                raise ValueError(f"window end must exceed start, got [{start}, {end})")
            cleaned.append((start, end))
        self._windows = sorted(cleaned)

    @property
    def windows(self) -> list[tuple[float, float]]:
        return list(self._windows)

    def attempt_fails(self, rng: np.random.Generator, time: float) -> bool:
        return any(start <= time < end for start, end in self._windows)


class BurstyOutage(OutageModel):
    """Two-state Gilbert-Elliott-style loss: alternating good/bad periods.

    The channel is "bad" (all messages lost) for ``bad_duration`` after each
    exponentially distributed good period of mean ``good_mean``.  State is
    derived deterministically from ``time`` via a seeded schedule so that
    repeated queries at the same time agree.
    """

    def __init__(self, good_mean: float, bad_duration: float, seed: int = 0,
                 horizon: float = 1e7):
        self._good_mean = check_positive(good_mean, "good_mean")
        self._bad_duration = check_positive(bad_duration, "bad_duration")
        rng = np.random.default_rng(seed)
        # Pre-compute the blackout schedule up to the horizon.
        windows = []
        clock = float(rng.exponential(self._good_mean))
        while clock < horizon:
            windows.append((clock, clock + self._bad_duration))
            clock += self._bad_duration + float(rng.exponential(self._good_mean))
        self._schedule = WindowedOutage(windows) if windows else NoOutage()

    def attempt_fails(self, rng: np.random.Generator, time: float) -> bool:
        return self._schedule.attempt_fails(rng, time)
