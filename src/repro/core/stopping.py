"""Stopping criteria of Algorithm 2.

The procedure ends when the iteration count reaches T_max or the
DP-monitored global error falls to the desired level ρ:

    t ≥ T_max   or   Σ_m N_e^m / Σ_m N_s^m ≤ ρ
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.config import ServerConfig
from repro.core.monitor import ProgressMonitor


class StopReason(Enum):
    """Why (or whether) the server has stopped."""

    RUNNING = "running"
    MAX_ITERATIONS = "max_iterations"
    TARGET_ERROR = "target_error"


@dataclass(frozen=True)
class StopDecision:
    """Outcome of one stopping-criteria evaluation."""

    stopped: bool
    reason: StopReason

    @classmethod
    def running(cls) -> "StopDecision":
        return _RUNNING


#: Shared immutable "still running" decision — stopping is evaluated on
#: every protocol message, so the common outcome is allocation-free.
_RUNNING = StopDecision(False, StopReason.RUNNING)


def evaluate_stopping(
    config: ServerConfig, iteration: int, monitor: ProgressMonitor
) -> StopDecision:
    """Evaluate Algorithm 2's stopping criteria.

    The ρ-based stop additionally requires a minimum number of counted
    samples so that early DP-noise fluctuations cannot end the task.

    >>> from repro.core.config import ServerConfig
    >>> from repro.core.monitor import ProgressMonitor
    >>> cfg = ServerConfig(max_iterations=10)
    >>> evaluate_stopping(cfg, 10, ProgressMonitor(2)).reason.value
    'max_iterations'
    """
    if iteration >= config.max_iterations:
        return StopDecision(True, StopReason.MAX_ITERATIONS)
    if (
        config.target_error is not None
        and monitor.total_samples >= config.min_samples_for_error_stop
        and monitor.error_estimate() <= config.target_error
    ):
        return StopDecision(True, StopReason.TARGET_ERROR)
    return StopDecision.running()
