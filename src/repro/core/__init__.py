"""The Crowd-ML framework core: device and server runtimes (Algorithms 1-2).

Workflow (Fig. 2): a :class:`~repro.core.device.Device` buffers samples and,
once a minibatch is full, checks out the current ``w`` from the
:class:`~repro.core.server.CrowdMLServer`, computes and sanitizes the
averaged gradient, and checks the statistics back in; the server applies
the asynchronous SGD update.  All privacy happens on-device
(:class:`~repro.core.sanitizer.CheckinSanitizer`), so nothing unsanitized
ever crosses the :mod:`repro.network` channels.
"""

from repro.core.adaptive import BatchPolicy, FixedBatch, StalenessAdaptiveBatch
from repro.core.auth import DeviceRegistry
from repro.core.codec import (
    decode_from_json,
    decode_message,
    encode_message,
    encode_to_json,
)
from repro.core.config import DeviceConfig, ServerConfig
from repro.core.device import CheckinResult, Device
from repro.core.monitor import ProgressMonitor
from repro.core.protocol import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
)
from repro.core.sanitizer import CheckinSanitizer, SanitizedCheckin
from repro.core.server import CrowdMLServer
from repro.core.server_core import RoundOutcome, ServerCore
from repro.core.stopping import StopDecision, StopReason, evaluate_stopping

__all__ = [
    "BatchPolicy",
    "CheckinAck",
    "FixedBatch",
    "StalenessAdaptiveBatch",
    "decode_from_json",
    "decode_message",
    "encode_message",
    "encode_to_json",
    "CheckinMessage",
    "CheckinResult",
    "CheckinSanitizer",
    "CheckoutRequest",
    "CheckoutResponse",
    "CrowdMLServer",
    "Device",
    "DeviceConfig",
    "DeviceRegistry",
    "ProgressMonitor",
    "RoundOutcome",
    "SanitizedCheckin",
    "ServerConfig",
    "ServerCore",
    "StopDecision",
    "StopReason",
    "evaluate_stopping",
]
