"""Transport-agnostic protocol core — Algorithm 2 as a state machine.

:class:`ServerCore` owns the model parameters, the device registry, and
the Eq. 14 progress monitor, and exposes the server side of the Fig. 2
workflow as **batch-native endpoints**:

* :meth:`ServerCore.handle_checkout` / :meth:`ServerCore.handle_checkin`
  — the single-message wire semantics (reject by raising), unchanged from
  the original :class:`~repro.core.server.CrowdMLServer` routines;
* :meth:`ServerCore.handle_checkins` — apply a whole batch of check-ins,
  amortizing the stopping rule once per batch and returning ``None`` in
  place of an ack for each rejected message.  State transitions are
  bit-identical to the equivalent sequence of single calls (with
  rejections caught), whatever the batch size or device interleaving;
* :meth:`ServerCore.serve_round` — the fused checkout→compute→check-in
  round used by zero-delay transports: each request is authenticated,
  answered, handed to the caller's ``complete`` callback (the device
  side), and the resulting check-in applied, all in one synchronous pass
  with no per-message closures or event-queue traffic.

The core never touches a network: transports
(:mod:`repro.network.transport`) decide how messages travel, and
:class:`~repro.core.server.CrowdMLServer` remains as a thin single-message
shim for existing callers.

The stopping decision is cached between state changes — protocol
endpoints evaluate it per message, but it can only change when an update
is applied, so repeated evaluations are allocation-free hits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.core.auth import DeviceRegistry
from repro.core.config import ServerConfig
from repro.core.monitor import ProgressMonitor
from repro.core.protocol import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
)
from repro.core.stopping import StopDecision, evaluate_stopping
from repro.models.base import Model
from repro.obs.metrics import NULL_REGISTRY, default_size_buckets
from repro.optim.sgd import SGD, Optimizer
from repro.privacy.accountant import PrivacyAccountant
from repro.utils.exceptions import ProtocolError


class RoundOutcome(NamedTuple):
    """Result of one fused :meth:`ServerCore.serve_round` call.

    Position ``i`` of each tuple corresponds to request ``i``:
    ``responses[i]``/``messages[i]``/``acks[i]`` are ``None`` when that
    stage rejected or skipped the device (failed authentication, stopped
    task, or a ``complete`` callback that returned no check-in).
    ``stop`` is the stopping decision after the whole round.
    """

    responses: Tuple[Optional[CheckoutResponse], ...]
    messages: Tuple[Optional[CheckinMessage], ...]
    acks: Tuple[Optional[CheckinAck], ...]
    stop: StopDecision


class ServerCore:
    """The central coordinator of the crowd-learning task.

    Parameters
    ----------
    model:
        Task definition shared with the devices.
    optimizer:
        Update rule; owns the parameter vector.  Defaults to projected SGD
        with the paper's c/√t schedule if ``None``.
    config:
        T_max and the ρ stopping criterion.
    registry:
        Authentication registry.  A fresh one is created when omitted;
        devices are registered through :meth:`register_device`.
    accountant:
        Optional server-side :class:`~repro.privacy.PrivacyAccountant`;
        when given, every applied check-in's release records are charged
        (via the run-length aggregated path), giving the server its own
        view of the privacy spend the devices report.
    monitor:
        Optional pre-populated :class:`ProgressMonitor` — the snapshot
        restore seam (:mod:`repro.persist`).  Must match the model's
        class count; a fresh monitor is created when omitted.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.core.config import ServerConfig
    >>> from repro.core.protocol import CheckoutRequest
    >>> model = MulticlassLogisticRegression(num_features=2, num_classes=2)
    >>> core = ServerCore(model, config=ServerConfig(max_iterations=100))
    >>> token = core.register_device(0)
    >>> core.handle_checkout(
    ...     CheckoutRequest(device_id=0, token=token, request_time=0.0)
    ... ).parameters.shape
    (4,)
    """

    def __init__(
        self,
        model: Model,
        optimizer: Optional[Optimizer] = None,
        config: Optional[ServerConfig] = None,
        registry: Optional[DeviceRegistry] = None,
        accountant: Optional[PrivacyAccountant] = None,
        monitor: Optional[ProgressMonitor] = None,
    ):
        self._model = model
        if optimizer is None:
            optimizer = SGD(model.init_parameters())
        if optimizer.parameters.shape[0] != model.num_parameters:
            raise ProtocolError(
                f"optimizer parameter length {optimizer.parameters.shape[0]} != "
                f"model num_parameters {model.num_parameters}"
            )
        self._optimizer = optimizer
        self._config = config if config is not None else ServerConfig(max_iterations=10**9)
        self._registry = registry if registry is not None else DeviceRegistry()
        self._accountant = accountant
        if monitor is not None and monitor.num_classes != model.num_classes:
            raise ProtocolError(
                f"monitor tracks {monitor.num_classes} classes but the model "
                f"has {model.num_classes}"
            )
        self._monitor = monitor if monitor is not None else ProgressMonitor(model.num_classes)
        self._checkouts_served = 0
        self._rejected_messages = 0
        self._duplicates_suppressed = 0
        # Idempotent re-submission (Remark 1): per device, the highest
        # applied checkin_seq and the server iteration its ack carried.
        self._applied_seqs: Dict[int, Tuple[int, int]] = {}
        self._stop_cache: Optional[StopDecision] = None
        self.attach_metrics(None)

    def attach_metrics(self, metrics=None) -> None:
        """(Re)bind observability instruments (:mod:`repro.obs`).

        Called with ``None`` (the default state, and what ``__init__``
        does) every instrument is a shared no-op singleton, so the
        instrumented sites cost one no-op method call.  The serve layer
        re-binds after construction — including after a snapshot restore,
        which builds the core internally — so metrics never enter
        snapshots.  Instrumented sites sit off the per-message hot path:
        once per batch, per suppressed duplicate, per round.
        """
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._metrics = registry
        self._m_batches = registry.counter("core_checkin_batches_total")
        self._m_batch_size = registry.histogram(
            "core_checkin_batch_size", buckets=default_size_buckets()
        )
        self._m_duplicates = registry.counter("core_duplicates_suppressed_total")
        self._m_stopped = registry.gauge("core_stopped")

    # -- state views ---------------------------------------------------- #

    @property
    def model(self) -> Model:
        return self._model

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def monitor(self) -> ProgressMonitor:
        """The Eq. 14 DP progress estimates."""
        return self._monitor

    @property
    def registry(self) -> DeviceRegistry:
        return self._registry

    @property
    def accountant(self) -> Optional[PrivacyAccountant]:
        """The server-side release ledger, if one was attached."""
        return self._accountant

    @property
    def optimizer(self):
        """The update rule (owns w and t) — exposed for snapshotting."""
        return self._optimizer

    @property
    def parameters(self) -> np.ndarray:
        """Current model parameters w (copy)."""
        return self._optimizer.parameters

    @property
    def iteration(self) -> int:
        """t — number of applied updates."""
        return self._optimizer.iteration

    @property
    def checkouts_served(self) -> int:
        return self._checkouts_served

    @property
    def rejected_messages(self) -> int:
        """Messages refused by authentication or the stopping state."""
        return self._rejected_messages

    @property
    def duplicates_suppressed(self) -> int:
        """Replayed check-ins recognized by sequence number and not re-applied."""
        return self._duplicates_suppressed

    def applied_checkin_seq(self, device_id: int) -> int:
        """Highest applied checkin_seq for a device (``-1`` if none tracked).

        Rejoining clients seed their sequence counter from this so a
        resumed server never mistakes their fresh traffic for replays.
        """
        entry = self._applied_seqs.get(int(device_id))
        return -1 if entry is None else entry[0]

    def counters_state(self) -> Dict[str, object]:
        """Serializable bookkeeping state (the snapshot codec's slice)."""
        return {
            "checkouts_served": self._checkouts_served,
            "rejected_messages": self._rejected_messages,
            "duplicates_suppressed": self._duplicates_suppressed,
            "applied_seqs": {
                str(device_id): [seq, iteration]
                for device_id, (seq, iteration) in sorted(self._applied_seqs.items())
            },
        }

    def restore_counters(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`counters_state` (snapshot restore seam)."""
        self._checkouts_served = int(state["checkouts_served"])
        self._rejected_messages = int(state["rejected_messages"])
        self._duplicates_suppressed = int(state.get("duplicates_suppressed", 0))
        self._applied_seqs = {
            int(device_id): (int(entry[0]), int(entry[1]))
            for device_id, entry in dict(state.get("applied_seqs", {})).items()
        }
        self._stop_cache = None

    def register_device(self, device_id: int) -> str:
        """Enroll a device (Web-portal join flow); returns its token."""
        return self._registry.register(device_id)

    def stopping_decision(self) -> StopDecision:
        """Algorithm 2's stopping criteria for the current state.

        Cached between updates: the decision can only change when a
        check-in is applied, so per-message re-evaluations are free.
        """
        decision = self._stop_cache
        if decision is None:
            decision = evaluate_stopping(self._config, self.iteration, self._monitor)
            self._stop_cache = decision
        return decision

    @property
    def stopped(self) -> bool:
        return self.stopping_decision().stopped

    # -- single-message endpoints (wire semantics: reject by raising) --- #

    def handle_checkout(self, request: CheckoutRequest) -> CheckoutResponse:
        """Server Routine 1: authenticate and send current parameters.

        Raises :class:`~repro.utils.exceptions.AuthenticationError` for
        unknown devices and :class:`ProtocolError` once stopped.
        """
        try:
            self._registry.authenticate(request.device_id, request.token)
        except Exception:
            self._rejected_messages += 1
            raise
        if self.stopped:
            self._rejected_messages += 1
            raise ProtocolError("task has stopped; no further check-outs")
        self._checkouts_served += 1
        return CheckoutResponse(
            device_id=request.device_id,
            parameters=self._optimizer.parameters,
            server_iteration=self.iteration,
            issued_time=request.request_time,
        )

    def handle_checkin(self, message: CheckinMessage) -> CheckinAck:
        """Server Routine 2: authenticate, accumulate stats, apply update.

        The update ``w ← Π_W[w − η(t)·ĝ]`` uses whatever optimizer the
        server was built with; gradient staleness (asynchrony) is inherent
        — the gradient may have been computed against an older w.
        """
        try:
            self._registry.authenticate(message.device_id, message.token)
        except Exception:
            self._rejected_messages += 1
            raise
        if message.gradient.shape[0] != self._model.num_parameters:
            self._rejected_messages += 1
            raise ProtocolError(
                f"gradient length {message.gradient.shape[0]} != "
                f"model num_parameters {self._model.num_parameters}"
            )
        replay = self._replay_ack(message)
        if replay is not None:
            return replay
        if self.stopped:
            self._rejected_messages += 1
            raise ProtocolError("task has stopped; no further check-ins")
        return self._apply(message)

    # -- batch endpoints ------------------------------------------------ #

    def handle_checkins(
        self, messages: Sequence[CheckinMessage]
    ) -> List[Optional[CheckinAck]]:
        """Apply a batch of check-ins in order; ``None`` marks a rejection.

        Bit-identical in final state (parameters, monitor, rejection
        counters, attached accountant) to calling :meth:`handle_checkin`
        once per message and catching the rejections.  The stopping rule
        is amortized: without a ρ target the remaining iteration budget is
        computed once for the whole batch; with one, the cached decision
        makes the per-message re-check allocation-free.
        """
        acks: List[Optional[CheckinAck]] = []
        self._m_batches.inc()
        self._m_batch_size.observe(len(messages))
        num_parameters = self._model.num_parameters
        # Closed-form iteration budget: each accepted message advances t
        # by exactly one, so without a target-error rule the stop point
        # inside the batch is known up front.
        track_error = self._config.target_error is not None
        remaining = self._config.max_iterations - self.iteration
        for message in messages:
            try:
                self._registry.authenticate(message.device_id, message.token)
            except Exception:
                self._rejected_messages += 1
                acks.append(None)
                continue
            if message.gradient.shape[0] != num_parameters:
                self._rejected_messages += 1
                acks.append(None)
                continue
            replay = self._replay_ack(message)
            if replay is not None:
                # A suppressed replay applies no update, so it does not
                # consume the batch's iteration budget.
                acks.append(replay)
                continue
            if remaining <= 0 or (track_error and self.stopped):
                self._rejected_messages += 1
                acks.append(None)
                continue
            acks.append(self._apply(message))
            remaining -= 1
        decision = self._stop_cache
        if decision is not None:
            self._m_stopped.set(1.0 if decision.stopped else 0.0)
        return acks

    def serve_round(
        self,
        requests: Sequence[CheckoutRequest],
        complete: Callable[..., Optional[CheckinMessage]],
        complete_args: tuple = (),
    ) -> RoundOutcome:
        """Fused Fig. 2 round: checkout, device compute, check-in — batched.

        For each request (in order): authenticate and serve the check-out,
        call ``complete(response, *complete_args)`` — the device side,
        which returns the sanitized :class:`CheckinMessage` to upload (or
        ``None`` to skip) — and apply that check-in before the next
        request is served.  Zero-delay transports use this to run a whole
        round trip synchronously with no event-queue traffic; state
        transitions are identical to the message-at-a-time path.

        Requests that fail authentication, arrive after the task stopped,
        or whose check-in is rejected yield ``None`` in the corresponding
        outcome slot (no exception), mirroring :meth:`handle_checkins`.
        """
        responses: List[Optional[CheckoutResponse]] = []
        messages: List[Optional[CheckinMessage]] = []
        acks: List[Optional[CheckinAck]] = []
        optimizer = self._optimizer
        for request in requests:
            try:
                self._registry.authenticate(request.device_id, request.token)
            except Exception:
                self._rejected_messages += 1
                responses.append(None)
                messages.append(None)
                acks.append(None)
                continue
            if self.stopped:
                self._rejected_messages += 1
                responses.append(None)
                messages.append(None)
                acks.append(None)
                continue
            self._checkouts_served += 1
            # parameters_view: steps rebind rather than mutate, so the
            # response's array is stable without a per-round copy.
            response = CheckoutResponse(
                device_id=request.device_id,
                parameters=optimizer.parameters_view,
                server_iteration=optimizer.iteration,
                issued_time=request.request_time,
            )
            responses.append(response)
            message = complete(response, *complete_args)
            messages.append(message)
            if message is None:
                acks.append(None)
                continue
            if message.gradient.shape[0] != self._model.num_parameters:
                self._rejected_messages += 1
                acks.append(None)
                continue
            replay = self._replay_ack(message)
            if replay is not None:
                acks.append(replay)
                continue
            acks.append(self._apply(message))
        decision = self.stopping_decision()
        self._m_stopped.set(1.0 if decision.stopped else 0.0)
        return RoundOutcome(
            tuple(responses), tuple(messages), tuple(acks), decision
        )

    # -- internals ------------------------------------------------------ #

    def _replay_ack(self, message: CheckinMessage) -> Optional[CheckinAck]:
        """Recognize a re-submitted, already-applied check-in (Remark 1).

        Only sequence-numbered messages participate; the answer echoes
        the iteration recorded when the device's newest check-in was
        applied, so an immediate retry of the last message reproduces its
        original ack bit for bit.
        """
        seq = message.checkin_seq
        if seq < 0:
            return None
        entry = self._applied_seqs.get(message.device_id)
        if entry is None or seq > entry[0]:
            return None
        self._duplicates_suppressed += 1
        self._m_duplicates.inc()
        return CheckinAck(
            device_id=message.device_id,
            server_iteration=entry[1],
            checkin_seq=seq,
            duplicate=True,
        )

    def _apply(self, message: CheckinMessage) -> CheckinAck:
        """Fold one accepted check-in into the server state."""
        self._monitor.record(
            device_id=message.device_id,
            num_samples=message.num_samples,
            noisy_error_count=message.noisy_error_count,
            noisy_label_counts=message.noisy_label_counts,
        )
        self._optimizer.step(message.gradient)
        if self._accountant is not None and message.releases:
            # The raw tuple goes straight to the accountant: it run-length
            # encodes internally, and devices reuse one memoized releases
            # tuple across check-ins, so the accountant's identity memo
            # hits — pre-aggregating here would allocate per message.
            self._accountant.charge_checkin(message.releases)
        self._stop_cache = None
        iteration = self.iteration
        if message.checkin_seq >= 0:
            self._applied_seqs[message.device_id] = (message.checkin_seq, iteration)
            return CheckinAck(
                device_id=message.device_id,
                server_iteration=iteration,
                checkin_seq=message.checkin_seq,
            )
        return CheckinAck(device_id=message.device_id, server_iteration=iteration)
