"""Shard math: stable device→shard hashing and cross-shard merges.

The sharded serving tier (:mod:`repro.shard`) partitions devices across
N worker processes, each hosting an independent
:class:`~repro.core.server_core.ServerCore`.  This module holds the
transport-free arithmetic that tier is built on:

* :func:`stable_device_hash` — the deterministic 32-bit scramble used by
  the default routing policy.  Stable across processes and Python
  versions (no ``PYTHONHASHSEED`` dependence), so a respawned worker, a
  restarted front end, and an offline reference computation all agree on
  which shard owns a device.
* :func:`merge_counters` — combine per-shard
  :meth:`~repro.core.server_core.ServerCore.counters_state` dicts into
  one crowd-wide view (plain sums; the dedupe ledgers are disjoint by
  construction, so a key collision is a routing bug and raises).
* :func:`merge_status_counts` — the same merge for the ``/v1/status``
  counter fields the front end aggregates across workers.

Shards are *independent* Crowd-ML tasks over disjoint device subsets:
each worker runs its own iteration counter and parameter vector, so the
merged ``iteration`` is a sum (total applied updates across the crowd)
and a merged parameter vector is deliberately **not** defined here —
per-shard parameters are the unit of bit-exactness the failover tests
gate on.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping

from repro.utils.exceptions import ReproError

#: Knuth's multiplicative constant (2^32 / phi), shared with the
#: ``hash`` gateway-assignment policy: deterministic, cheap, and
#: scrambles sequential device ids across shards.
_KNUTH = 2654435761


class ShardMergeError(ReproError):
    """Per-shard states that cannot be merged (overlapping ledgers)."""


def stable_device_hash(device_id: int) -> int:
    """Deterministic 32-bit scramble of a device id.

    Pure integer math — identical in every process, interpreter, and
    run, unlike :func:`hash` (which is salted per process for strings
    and must never decide routing).
    """
    return (int(device_id) * _KNUTH) & 0xFFFFFFFF


def merge_counters(states: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Combine per-shard ``counters_state()`` dicts into one crowd view.

    Integer counters sum; the per-device dedupe ledgers
    (``applied_seqs``) union.  Shards own disjoint device sets, so the
    same device appearing in two ledgers means traffic was routed to the
    wrong worker — that raises :class:`ShardMergeError` rather than
    silently picking a winner.
    """
    merged: Dict[str, Any] = {
        "checkouts_served": 0,
        "rejected_messages": 0,
        "duplicates_suppressed": 0,
        "applied_seqs": {},
    }
    for state in states:
        merged["checkouts_served"] += int(state["checkouts_served"])
        merged["rejected_messages"] += int(state["rejected_messages"])
        merged["duplicates_suppressed"] += int(state.get("duplicates_suppressed", 0))
        for device_id, entry in dict(state.get("applied_seqs", {})).items():
            key = str(device_id)
            if key in merged["applied_seqs"]:
                raise ShardMergeError(
                    f"device {key} appears in more than one shard's dedupe "
                    f"ledger; shards must own disjoint device sets"
                )
            merged["applied_seqs"][key] = [int(entry[0]), int(entry[1])]
    merged["applied_seqs"] = dict(sorted(merged["applied_seqs"].items()))
    return merged


#: ``/v1/status`` counter fields that sum across shards.
_SUMMED_STATUS_FIELDS = (
    "iteration",
    "checkouts_served",
    "rejected_messages",
    "registered_devices",
    "duplicates_suppressed",
)


def merge_status_counts(statuses: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate per-shard status counter dicts for ``/v1/status``.

    Input dicts carry the wire status fields (``iteration``,
    ``checkouts_served``, ``rejected_messages``, ``registered_devices``,
    ``duplicates_suppressed``, ``stopped``, ``stop_reason``,
    ``num_parameters``).  Counters sum; the merged task counts as
    ``stopped`` only when **every** shard has stopped (a crowd with one
    live shard still accepts that shard's traffic), and the reported
    reason is the first stopped shard's.  ``num_parameters`` must agree
    across shards (one model shape per deployment) or the merge raises.
    """
    statuses = list(statuses)
    if not statuses:
        raise ShardMergeError("cannot merge an empty status list")
    merged: Dict[str, Any] = {field: 0 for field in _SUMMED_STATUS_FIELDS}
    num_parameters = None
    stopped_reason = None
    all_stopped = True
    for status in statuses:
        for field in _SUMMED_STATUS_FIELDS:
            merged[field] += int(status[field])
        shape = int(status["num_parameters"])
        if num_parameters is None:
            num_parameters = shape
        elif shape != num_parameters:
            raise ShardMergeError(
                f"shards disagree on num_parameters "
                f"({num_parameters} vs {shape}); one model shape per tier"
            )
        if bool(status["stopped"]):
            if stopped_reason is None:
                stopped_reason = str(status["stop_reason"])
        else:
            all_stopped = False
    merged["num_parameters"] = int(num_parameters)
    merged["stopped"] = all_stopped
    merged["stop_reason"] = (
        stopped_reason if all_stopped and stopped_reason is not None else "running"
    )
    return merged


__all__ = [
    "ShardMergeError",
    "merge_counters",
    "merge_status_counts",
    "stable_device_hash",
]
