"""Device Routine 3: sanitize check-in statistics before they leave.

Bundles the three mechanisms of Eqs. (10)-(12): Laplace noise on the
averaged gradient calibrated to the model's minibatch sensitivity, and
discrete Laplace noise on the misclassification count and each label count.
The sanitizer is constructed once per device from its
:class:`~repro.privacy.budget.PrivacyBudget` and re-calibrates the gradient
mechanism per check-in, because the realized minibatch size ``n_s`` (≥ b)
sets the sensitivity ``S = 4/n_s``.

Footnote 1's (ε, δ) variant is available by constructing the sanitizer
with ``gradient_noise="gaussian"``: the gradient mechanism becomes the
analytic Gaussian mechanism, calibrated with the same 4/n_s bound (valid
for L2 since ‖·‖₂ ≤ ‖·‖₁).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.models.base import Model
from repro.privacy.budget import PrivacyBudget
from repro.privacy.discrete_laplace import DiscreteLaplaceMechanism
from repro.privacy.gaussian import GaussianMechanism
from repro.privacy.laplace import LaplaceMechanism
from repro.privacy.mechanism import ReleaseRecord
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class SanitizedCheckin:
    """The outputs of Device Routine 3 plus accounting records."""

    gradient: np.ndarray
    error_count: int
    label_counts: np.ndarray
    releases: Tuple[ReleaseRecord, ...]


class CheckinSanitizer:
    """Applies Eqs. (10)-(12) to one device's check-in statistics.

    Parameters
    ----------
    model:
        Supplies the gradient-sensitivity oracle (4/b for logistic).
    budget:
        The per-sample ε split (ε_g, ε_e, ε_yk).
    rng:
        Device-local noise source.
    """

    def __init__(
        self,
        model: Model,
        budget: PrivacyBudget,
        rng: np.random.Generator,
        *,
        gradient_noise: str = "laplace",
        gaussian_delta: float = 1e-6,
    ):
        if gradient_noise not in ("laplace", "gaussian"):
            raise ConfigurationError(
                f"gradient_noise must be 'laplace' or 'gaussian', got "
                f"{gradient_noise!r}"
            )
        self._model = model
        self._budget = budget
        self._rng = rng
        self._gradient_noise = gradient_noise
        self._gaussian_delta = float(gaussian_delta)
        self._error_mechanism = DiscreteLaplaceMechanism(budget.epsilon_error, rng)
        self._label_mechanism = DiscreteLaplaceMechanism(budget.epsilon_label, rng)
        # Count-release records never vary (fixed ε, sensitivity 1): build
        # them once instead of C + 1 dataclass allocations per check-in.
        self._error_release = self._error_mechanism.record(1.0)
        self._label_release = self._label_mechanism.record(1.0)

    @property
    def budget(self) -> PrivacyBudget:
        return self._budget

    @property
    def gradient_noise(self) -> str:
        """Which mechanism sanitizes gradients: "laplace" or "gaussian"."""
        return self._gradient_noise

    def gradient_mechanism(
        self, num_samples: int
    ) -> Union[LaplaceMechanism, GaussianMechanism]:
        """Noise mechanism calibrated to this minibatch's sensitivity."""
        sensitivity = self._model.gradient_sensitivity(num_samples)
        if self._gradient_noise == "gaussian":
            return GaussianMechanism(
                self._budget.epsilon_gradient,
                self._gaussian_delta,
                sensitivity_l2=sensitivity,
                rng=self._rng,
            )
        return LaplaceMechanism(self._budget.epsilon_gradient, sensitivity, self._rng)

    def sanitize(
        self,
        averaged_gradient: np.ndarray,
        error_count: int,
        label_counts: np.ndarray,
        num_samples: int,
    ) -> SanitizedCheckin:
        """Apply all three mechanisms and collect accounting records."""
        gradient_mech = self.gradient_mechanism(num_samples)
        noisy_gradient = gradient_mech.release(averaged_gradient)
        noisy_error = self._error_mechanism.release(int(error_count))
        noisy_labels = self._label_mechanism.release(
            np.asarray(label_counts, dtype=np.int64)
        )
        gradient_sensitivity = getattr(
            gradient_mech, "sensitivity", None
        ) or getattr(gradient_mech, "sensitivity_l2", 0.0)
        releases = (
            gradient_mech.record(gradient_sensitivity),
            self._error_release,
        ) + (self._label_release,) * label_counts.shape[0]
        return SanitizedCheckin(
            gradient=noisy_gradient,
            error_count=noisy_error,
            label_counts=np.asarray(noisy_labels, dtype=np.int64),
            releases=releases,
        )
