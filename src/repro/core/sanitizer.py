"""Device Routine 3: sanitize check-in statistics before they leave.

Bundles the three mechanisms of Eqs. (10)-(12): Laplace noise on the
averaged gradient calibrated to the model's minibatch sensitivity, and
discrete Laplace noise on the misclassification count and each label count.
The sanitizer is constructed once per device from its
:class:`~repro.privacy.budget.PrivacyBudget` and calibrates the gradient
mechanism to the realized minibatch size ``n_s`` (≥ b), which sets the
sensitivity ``S = 4/n_s``.  Calibrated mechanisms (and their accounting
records) are memoized per ``n_s``: check-ins with the same realized batch
size — the overwhelmingly common case, and every check-in of a fused
batch — reuse one mechanism object instead of rebuilding it, drawing from
the same shared RNG stream so the noise sequence is unchanged.

Footnote 1's (ε, δ) variant is available by constructing the sanitizer
with ``gradient_noise="gaussian"``: the gradient mechanism becomes the
analytic Gaussian mechanism, calibrated with the same 4/n_s bound (valid
for L2 since ‖·‖₂ ≤ ‖·‖₁).
"""

from __future__ import annotations

from typing import NamedTuple, Tuple, Union

import numpy as np

from repro.models.base import Model
from repro.privacy.budget import PrivacyBudget
from repro.privacy.discrete_laplace import DiscreteLaplaceMechanism
from repro.privacy.gaussian import GaussianMechanism
from repro.privacy.laplace import LaplaceMechanism
from repro.privacy.mechanism import AggregatedRelease, ReleaseRecord
from repro.utils.exceptions import ConfigurationError


class SanitizedCheckin(NamedTuple):
    """The outputs of Device Routine 3 plus accounting records.

    ``releases`` is the expanded per-release view carried on the wire
    message; ``release_groups`` is the same information run-length encoded
    (gradient, error, C× label) for the accountant's O(1) charge path.
    (A NamedTuple: immutable like the frozen dataclass it replaced, but
    constructed without per-field ``object.__setattr__`` — one is built
    per check-in.)
    """

    gradient: np.ndarray
    error_count: int
    label_counts: np.ndarray
    releases: Tuple[ReleaseRecord, ...]
    release_groups: Tuple[AggregatedRelease, ...]


class CheckinSanitizer:
    """Applies Eqs. (10)-(12) to one device's check-in statistics.

    Parameters
    ----------
    model:
        Supplies the gradient-sensitivity oracle (4/b for logistic).
    budget:
        The per-sample ε split (ε_g, ε_e, ε_yk).
    rng:
        Device-local noise source.
    """

    def __init__(
        self,
        model: Model,
        budget: PrivacyBudget,
        rng: np.random.Generator,
        *,
        gradient_noise: str = "laplace",
        gaussian_delta: float = 1e-6,
    ):
        if gradient_noise not in ("laplace", "gaussian"):
            raise ConfigurationError(
                f"gradient_noise must be 'laplace' or 'gaussian', got "
                f"{gradient_noise!r}"
            )
        self._model = model
        self._budget = budget
        self._rng = rng
        self._gradient_noise = gradient_noise
        self._gaussian_delta = float(gaussian_delta)
        self._error_mechanism = DiscreteLaplaceMechanism(budget.epsilon_error, rng)
        self._label_mechanism = DiscreteLaplaceMechanism(budget.epsilon_label, rng)
        # Count-release records never vary (fixed ε, sensitivity 1): build
        # them once instead of C + 1 dataclass allocations per check-in.
        self._error_release = self._error_mechanism.record(1.0)
        self._label_release = self._label_mechanism.record(1.0)
        # Per-n_s caches: the calibrated gradient mechanism, its release
        # record, and the full release tuples.  All check-ins with the
        # same realized minibatch size share one mechanism object (same
        # rng stream, so the noise sequence is unchanged).
        self._gradient_mechanisms: dict = {}
        self._release_cache: dict = {}

    @property
    def budget(self) -> PrivacyBudget:
        return self._budget

    @property
    def gradient_noise(self) -> str:
        """Which mechanism sanitizes gradients: "laplace" or "gaussian"."""
        return self._gradient_noise

    def gradient_mechanism(
        self, num_samples: int
    ) -> Union[LaplaceMechanism, GaussianMechanism]:
        """Noise mechanism calibrated to this minibatch's sensitivity.

        Memoized per ``num_samples``: the calibration depends only on the
        realized minibatch size, and the mechanism draws from the shared
        device RNG, so reusing the object leaves the noise stream
        bit-identical to rebuilding it per check-in.
        """
        mechanism = self._gradient_mechanisms.get(num_samples)
        if mechanism is None:
            sensitivity = self._model.gradient_sensitivity(num_samples)
            if self._gradient_noise == "gaussian":
                mechanism = GaussianMechanism(
                    self._budget.epsilon_gradient,
                    self._gaussian_delta,
                    sensitivity_l2=sensitivity,
                    rng=self._rng,
                )
            else:
                mechanism = LaplaceMechanism(
                    self._budget.epsilon_gradient, sensitivity, self._rng
                )
            self._gradient_mechanisms[num_samples] = mechanism
        return mechanism

    def _releases_for(
        self, mechanism, num_samples: int, num_labels: int
    ) -> Tuple[Tuple[ReleaseRecord, ...], Tuple[AggregatedRelease, ...]]:
        """The (expanded, run-length) accounting tuples for one check-in.

        Fully determined by ``(num_samples, num_labels)``, so both views
        are built once and reused — no per-check-in record allocations.
        """
        key = (num_samples, num_labels)
        cached = self._release_cache.get(key)
        if cached is None:
            gradient_sensitivity = getattr(
                mechanism, "sensitivity", None
            ) or getattr(mechanism, "sensitivity_l2", 0.0)
            gradient_release = mechanism.record(gradient_sensitivity)
            expanded = (
                gradient_release,
                self._error_release,
            ) + (self._label_release,) * num_labels
            groups = (
                AggregatedRelease(gradient_release, 1),
                AggregatedRelease(self._error_release, 1),
            )
            if num_labels:
                groups += (AggregatedRelease(self._label_release, num_labels),)
            cached = (expanded, groups)
            self._release_cache[key] = cached
        return cached

    def sanitize(
        self,
        averaged_gradient: np.ndarray,
        error_count: int,
        label_counts: np.ndarray,
        num_samples: int,
    ) -> SanitizedCheckin:
        """Apply all three mechanisms and collect accounting records."""
        gradient_mech = self.gradient_mechanism(num_samples)
        noisy_gradient = gradient_mech.release(averaged_gradient)
        noisy_error = self._error_mechanism.release(int(error_count))
        noisy_labels = self._label_mechanism.release(
            np.asarray(label_counts, dtype=np.int64)
        )
        releases, release_groups = self._releases_for(
            gradient_mech, num_samples, label_counts.shape[0]
        )
        return SanitizedCheckin(
            gradient=noisy_gradient,
            error_count=noisy_error,
            label_counts=np.asarray(noisy_labels, dtype=np.int64),
            releases=releases,
            release_groups=release_groups,
        )
