"""Wire codec: serialize protocol messages to/from JSON-compatible dicts.

The prototype ships messages over HTTPS; this codec defines the payload
format a real deployment would use.  Every message carries a ``type``
tag so a single endpoint can dispatch.

Float vectors (gradients, parameters) travel **packed**: base64 of the
raw little-endian float64 buffer.  Packing is bit-exact by construction
(the decoder reconstructs the identical IEEE-754 doubles, NaN payloads
and signed zeros included) and roughly two orders of magnitude cheaper
than JSON float lists — the difference between the serve path being
serialization-bound and request-bound (see the gateway arm of the
serve-throughput benchmark).  Decoders also accept plain JSON lists for
these fields, so clients on platforms without the packed encoder can
still produce valid payloads; small integer vectors (label counts) stay
lists.

Round-trip fidelity is exact for the integer fields and bit-exact for
gradients/parameters; decoding validates shapes through the message
constructors, so a malformed payload raises
:class:`~repro.utils.exceptions.ProtocolError` rather than propagating
garbage into the learning loop.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any, Dict, Union

import numpy as np

from repro.core.protocol import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
)
from repro.utils.exceptions import ProtocolError

Message = Union[CheckoutRequest, CheckoutResponse, CheckinMessage, CheckinAck]

_TYPE_TAGS = {
    CheckoutRequest: "checkout_request",
    CheckoutResponse: "checkout_response",
    CheckinMessage: "checkin",
    CheckinAck: "checkin_ack",
}


def pack_float_array(array: np.ndarray) -> str:
    """Pack a float vector as base64 of its little-endian float64 bytes.

    Bit-exact: every IEEE-754 double (signed zeros, denormals, NaN
    payloads) reconstructs identically through
    :func:`unpack_float_array`.
    """
    buffer = np.ascontiguousarray(array, dtype="<f8").tobytes()
    return base64.b64encode(buffer).decode("ascii")


def unpack_float_array(value: Any) -> np.ndarray:
    """Inverse of :func:`pack_float_array`; also accepts a plain list.

    A string is treated as packed base64; anything else goes through
    ``np.asarray`` (the portable JSON-list form).  Raises
    :class:`ProtocolError` on undecodable base64 or a buffer that is not
    a whole number of float64s.
    """
    if not isinstance(value, str):
        return np.asarray(value, dtype=np.float64)
    try:
        buffer = base64.b64decode(value.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as error:
        raise ProtocolError(f"invalid packed float array: {error}") from error
    if len(buffer) % 8:
        raise ProtocolError(
            f"packed float array is {len(buffer)} bytes, not a multiple of 8"
        )
    return np.frombuffer(buffer, dtype="<f8").astype(np.float64, copy=True)


def encode_message(message: Message) -> Dict[str, Any]:
    """Encode a protocol message as a JSON-compatible dict."""
    tag = _TYPE_TAGS.get(type(message))
    if tag is None:
        raise ProtocolError(f"cannot encode {type(message).__name__}")
    if isinstance(message, CheckoutRequest):
        body = {
            "device_id": message.device_id,
            "token": message.token,
            "request_time": message.request_time,
        }
    elif isinstance(message, CheckoutResponse):
        body = {
            "device_id": message.device_id,
            "parameters": pack_float_array(message.parameters),
            "server_iteration": message.server_iteration,
            "issued_time": message.issued_time,
        }
    elif isinstance(message, CheckinMessage):
        body = {
            "device_id": message.device_id,
            "token": message.token,
            "gradient": pack_float_array(message.gradient),
            "num_samples": message.num_samples,
            "noisy_error_count": message.noisy_error_count,
            "noisy_label_counts": message.noisy_label_counts.tolist(),
            "checkout_iteration": message.checkout_iteration,
        }
        # Untracked messages (the default) keep the pre-seq byte layout.
        if message.checkin_seq >= 0:
            body["checkin_seq"] = message.checkin_seq
    else:  # CheckinAck
        body = {
            "device_id": message.device_id,
            "server_iteration": message.server_iteration,
        }
        if message.checkin_seq >= 0:
            body["checkin_seq"] = message.checkin_seq
        if message.duplicate:
            body["duplicate"] = True
    return {"type": tag, **body}


def decode_message(payload: Dict[str, Any]) -> Message:
    """Decode a dict produced by :func:`encode_message`.

    Raises :class:`ProtocolError` on unknown tags or missing fields.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"payload must be a dict, got {type(payload).__name__}")
    tag = payload.get("type")
    try:
        if tag == "checkout_request":
            return CheckoutRequest(
                device_id=int(payload["device_id"]),
                token=str(payload["token"]),
                request_time=float(payload["request_time"]),
            )
        if tag == "checkout_response":
            return CheckoutResponse(
                device_id=int(payload["device_id"]),
                parameters=unpack_float_array(payload["parameters"]),
                server_iteration=int(payload["server_iteration"]),
                issued_time=float(payload["issued_time"]),
            )
        if tag == "checkin":
            return CheckinMessage(
                device_id=int(payload["device_id"]),
                token=str(payload["token"]),
                gradient=unpack_float_array(payload["gradient"]),
                num_samples=int(payload["num_samples"]),
                noisy_error_count=int(payload["noisy_error_count"]),
                noisy_label_counts=np.asarray(
                    payload["noisy_label_counts"], dtype=np.int64
                ),
                checkout_iteration=int(payload["checkout_iteration"]),
                checkin_seq=int(payload.get("checkin_seq", -1)),
            )
        if tag == "checkin_ack":
            return CheckinAck(
                device_id=int(payload["device_id"]),
                server_iteration=int(payload["server_iteration"]),
                checkin_seq=int(payload.get("checkin_seq", -1)),
                duplicate=bool(payload.get("duplicate", False)),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed {tag!r} payload: {error}") from error
    raise ProtocolError(f"unknown message type {tag!r}")


def encode_to_json(message: Message) -> str:
    """Encode straight to a JSON string (the HTTPS body)."""
    return json.dumps(encode_message(message), separators=(",", ":"))


def decode_from_json(text: str) -> Message:
    """Decode a JSON string produced by :func:`encode_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON: {error}") from error
    return decode_message(payload)
