"""Wire codec: serialize protocol messages to/from JSON-compatible dicts.

The prototype ships messages over HTTPS; this codec defines the payload
format a real deployment would use.  Numeric arrays travel as plain lists
(clients on any platform can produce them); every message carries a
``type`` tag so a single endpoint can dispatch.

Round-trip fidelity is exact for the integer fields and float64-precise
for gradients/parameters; decoding validates shapes through the message
constructors, so a malformed payload raises
:class:`~repro.utils.exceptions.ProtocolError` rather than propagating
garbage into the learning loop.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

import numpy as np

from repro.core.protocol import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
)
from repro.utils.exceptions import ProtocolError

Message = Union[CheckoutRequest, CheckoutResponse, CheckinMessage, CheckinAck]

_TYPE_TAGS = {
    CheckoutRequest: "checkout_request",
    CheckoutResponse: "checkout_response",
    CheckinMessage: "checkin",
    CheckinAck: "checkin_ack",
}


def encode_message(message: Message) -> Dict[str, Any]:
    """Encode a protocol message as a JSON-compatible dict."""
    tag = _TYPE_TAGS.get(type(message))
    if tag is None:
        raise ProtocolError(f"cannot encode {type(message).__name__}")
    if isinstance(message, CheckoutRequest):
        body = {
            "device_id": message.device_id,
            "token": message.token,
            "request_time": message.request_time,
        }
    elif isinstance(message, CheckoutResponse):
        body = {
            "device_id": message.device_id,
            "parameters": message.parameters.tolist(),
            "server_iteration": message.server_iteration,
            "issued_time": message.issued_time,
        }
    elif isinstance(message, CheckinMessage):
        body = {
            "device_id": message.device_id,
            "token": message.token,
            "gradient": message.gradient.tolist(),
            "num_samples": message.num_samples,
            "noisy_error_count": message.noisy_error_count,
            "noisy_label_counts": message.noisy_label_counts.tolist(),
            "checkout_iteration": message.checkout_iteration,
        }
    else:  # CheckinAck
        body = {
            "device_id": message.device_id,
            "server_iteration": message.server_iteration,
        }
    return {"type": tag, **body}


def decode_message(payload: Dict[str, Any]) -> Message:
    """Decode a dict produced by :func:`encode_message`.

    Raises :class:`ProtocolError` on unknown tags or missing fields.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(f"payload must be a dict, got {type(payload).__name__}")
    tag = payload.get("type")
    try:
        if tag == "checkout_request":
            return CheckoutRequest(
                device_id=int(payload["device_id"]),
                token=str(payload["token"]),
                request_time=float(payload["request_time"]),
            )
        if tag == "checkout_response":
            return CheckoutResponse(
                device_id=int(payload["device_id"]),
                parameters=np.asarray(payload["parameters"], dtype=np.float64),
                server_iteration=int(payload["server_iteration"]),
                issued_time=float(payload["issued_time"]),
            )
        if tag == "checkin":
            return CheckinMessage(
                device_id=int(payload["device_id"]),
                token=str(payload["token"]),
                gradient=np.asarray(payload["gradient"], dtype=np.float64),
                num_samples=int(payload["num_samples"]),
                noisy_error_count=int(payload["noisy_error_count"]),
                noisy_label_counts=np.asarray(
                    payload["noisy_label_counts"], dtype=np.int64
                ),
                checkout_iteration=int(payload["checkout_iteration"]),
            )
        if tag == "checkin_ack":
            return CheckinAck(
                device_id=int(payload["device_id"]),
                server_iteration=int(payload["server_iteration"]),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed {tag!r} payload: {error}") from error
    raise ProtocolError(f"unknown message type {tag!r}")


def encode_to_json(message: Message) -> str:
    """Encode straight to a JSON string (the HTTPS body)."""
    return json.dumps(encode_message(message), separators=(",", ":"))


def decode_from_json(text: str) -> Message:
    """Decode a JSON string produced by :func:`encode_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON: {error}") from error
    return decode_message(payload)
