"""Device authentication (Algorithm 2: "Authenticate device").

The prototype authenticates devices over HTTPS with per-device credentials.
We model that with a registry of per-device shared-secret tokens derived
from a server key: registering a device mints its token; every check-out
and check-in must present a matching token or the server rejects it with
:class:`~repro.utils.exceptions.AuthenticationError`.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any, Dict

from repro.utils.exceptions import AuthenticationError


class DeviceRegistry:
    """Mints and verifies per-device authentication tokens.

    Examples
    --------
    >>> registry = DeviceRegistry(server_key="secret")
    >>> token = registry.register(7)
    >>> registry.authenticate(7, token)
    >>> registry.authenticate(7, "bogus")
    Traceback (most recent call last):
        ...
    repro.utils.exceptions.AuthenticationError: invalid token for device 7
    """

    def __init__(self, server_key: str = "crowd-ml-server-key"):
        self._server_key = str(server_key).encode("utf-8")
        self._tokens: Dict[int, str] = {}
        self._revoked: set[int] = set()

    def _mint(self, device_id: int) -> str:
        digest = hmac.new(
            self._server_key, f"device:{device_id}".encode("utf-8"), hashlib.sha256
        )
        return digest.hexdigest()

    def register(self, device_id: int) -> str:
        """Enroll a device and return its token (idempotent)."""
        device_id = int(device_id)
        self._revoked.discard(device_id)
        token = self._mint(device_id)
        self._tokens[device_id] = token
        return token

    def revoke(self, device_id: int) -> None:
        """Revoke a device's access (a device leaving the task)."""
        self._revoked.add(int(device_id))

    @property
    def num_registered(self) -> int:
        """Number of currently registered, non-revoked devices."""
        return len([d for d in self._tokens if d not in self._revoked])

    def is_registered(self, device_id: int) -> bool:
        return int(device_id) in self._tokens and int(device_id) not in self._revoked

    def authenticate(self, device_id: int, token: str) -> None:
        """Raise :class:`AuthenticationError` unless the token is valid."""
        device_id = int(device_id)
        if device_id in self._revoked:
            raise AuthenticationError(f"device {device_id} has been revoked")
        expected = self._tokens.get(device_id)
        if expected is None:
            raise AuthenticationError(f"unknown device {device_id}")
        if not hmac.compare_digest(expected, str(token)):
            raise AuthenticationError(f"invalid token for device {device_id}")

    def state_dict(self) -> Dict[str, Any]:
        """Serializable registry state (enrollments + revocations).

        The server key travels too: a restored registry must keep minting
        the same tokens, or re-joining devices would be locked out.
        """
        return {
            "server_key": self._server_key.decode("utf-8"),
            "tokens": {str(device_id): token
                       for device_id, token in sorted(self._tokens.items())},
            "revoked": sorted(self._revoked),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "DeviceRegistry":
        """Inverse of :meth:`state_dict`."""
        registry = cls(server_key=str(state["server_key"]))
        registry._tokens = {
            int(device_id): str(token)
            for device_id, token in dict(state["tokens"]).items()
        }
        registry._revoked = {int(device_id) for device_id in state["revoked"]}
        return registry
