"""Server runtime — Algorithm 2 (Routines 1 and 2).

:class:`CrowdMLServer` is the single-message facade over the
batch-native :class:`~repro.core.server_core.ServerCore` state machine:
``handle_checkout``/``handle_checkin`` keep their original wire semantics
(authenticate, serve, reject by raising) and delegate one-element work to
the core.  New transports and batch callers should talk to
:attr:`CrowdMLServer.core` (or construct a :class:`ServerCore` directly);
this class remains for existing single-message integrations such as the
Web portal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.auth import DeviceRegistry
from repro.core.config import ServerConfig
from repro.core.monitor import ProgressMonitor
from repro.core.protocol import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
)
from repro.core.server_core import ServerCore
from repro.core.stopping import StopDecision
from repro.models.base import Model
from repro.optim.sgd import Optimizer


class CrowdMLServer:
    """The central coordinator of the crowd-learning task.

    Parameters
    ----------
    model:
        Task definition shared with the devices.
    optimizer:
        Update rule; owns the parameter vector.  Defaults to projected SGD
        with the paper's c/√t schedule if ``None``.
    config:
        T_max and the ρ stopping criterion.
    registry:
        Authentication registry.  A fresh one is created when omitted;
        devices are registered through :meth:`register_device`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.core.config import ServerConfig
    >>> model = MulticlassLogisticRegression(num_features=2, num_classes=2)
    >>> server = CrowdMLServer(model, config=ServerConfig(max_iterations=100))
    >>> token = server.register_device(0)
    >>> response = server.handle_checkout(
    ...     CheckoutRequest(device_id=0, token=token, request_time=0.0))
    >>> response.parameters.shape
    (4,)
    """

    def __init__(
        self,
        model: Model,
        optimizer: Optional[Optimizer] = None,
        config: Optional[ServerConfig] = None,
        registry: Optional[DeviceRegistry] = None,
    ):
        self._core = ServerCore(model, optimizer, config, registry)

    @property
    def core(self) -> ServerCore:
        """The underlying batch-native protocol state machine."""
        return self._core

    @property
    def model(self) -> Model:
        return self._core.model

    @property
    def config(self) -> ServerConfig:
        return self._core.config

    @property
    def monitor(self) -> ProgressMonitor:
        """The Eq. 14 DP progress estimates."""
        return self._core.monitor

    @property
    def registry(self) -> DeviceRegistry:
        return self._core.registry

    @property
    def parameters(self) -> np.ndarray:
        """Current model parameters w (copy)."""
        return self._core.parameters

    @property
    def iteration(self) -> int:
        """t — number of applied updates."""
        return self._core.iteration

    @property
    def checkouts_served(self) -> int:
        return self._core.checkouts_served

    @property
    def rejected_messages(self) -> int:
        """Messages refused by authentication or the stopping state."""
        return self._core.rejected_messages

    def register_device(self, device_id: int) -> str:
        """Enroll a device (Web-portal join flow); returns its token."""
        return self._core.register_device(device_id)

    def stopping_decision(self) -> StopDecision:
        """Evaluate Algorithm 2's stopping criteria right now."""
        return self._core.stopping_decision()

    @property
    def stopped(self) -> bool:
        return self._core.stopped

    def handle_checkout(self, request: CheckoutRequest) -> CheckoutResponse:
        """Server Routine 1: authenticate and send current parameters.

        Raises :class:`~repro.utils.exceptions.AuthenticationError` for
        unknown devices and :class:`ProtocolError` once stopped.
        """
        return self._core.handle_checkout(request)

    def handle_checkin(self, message: CheckinMessage) -> CheckinAck:
        """Server Routine 2: authenticate, accumulate stats, apply update.

        The update ``w ← Π_W[w − η(t)·ĝ]`` uses whatever optimizer the
        server was built with; gradient staleness (asynchrony) is inherent
        — the gradient may have been computed against an older w.
        """
        return self._core.handle_checkin(message)
