"""Server runtime — Algorithm 2 (Routines 1 and 2).

The :class:`CrowdMLServer` owns the model parameters, authenticates devices
against a :class:`~repro.core.auth.DeviceRegistry`, serves check-outs, and
applies each check-in's sanitized gradient with its
:class:`~repro.optim.sgd.Optimizer` (projected SGD by default — Eq. 3 —
or any Remark-3 alternative, which is pure post-processing and leaves the
privacy guarantee untouched).  A :class:`~repro.core.monitor.ProgressMonitor`
keeps the Eq. 14 DP estimates that drive the ρ stopping criterion.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.auth import DeviceRegistry
from repro.core.config import ServerConfig
from repro.core.monitor import ProgressMonitor
from repro.core.protocol import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
)
from repro.core.stopping import StopDecision, evaluate_stopping
from repro.models.base import Model
from repro.optim.sgd import SGD, Optimizer
from repro.utils.exceptions import ProtocolError


class CrowdMLServer:
    """The central coordinator of the crowd-learning task.

    Parameters
    ----------
    model:
        Task definition shared with the devices.
    optimizer:
        Update rule; owns the parameter vector.  Defaults to projected SGD
        with the paper's c/√t schedule if ``None``.
    config:
        T_max and the ρ stopping criterion.
    registry:
        Authentication registry.  A fresh one is created when omitted;
        devices are registered through :meth:`register_device`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.core.config import ServerConfig
    >>> model = MulticlassLogisticRegression(num_features=2, num_classes=2)
    >>> server = CrowdMLServer(model, config=ServerConfig(max_iterations=100))
    >>> token = server.register_device(0)
    >>> response = server.handle_checkout(
    ...     CheckoutRequest(device_id=0, token=token, request_time=0.0))
    >>> response.parameters.shape
    (4,)
    """

    def __init__(
        self,
        model: Model,
        optimizer: Optional[Optimizer] = None,
        config: Optional[ServerConfig] = None,
        registry: Optional[DeviceRegistry] = None,
    ):
        self._model = model
        if optimizer is None:
            optimizer = SGD(model.init_parameters())
        if optimizer.parameters.shape[0] != model.num_parameters:
            raise ProtocolError(
                f"optimizer parameter length {optimizer.parameters.shape[0]} != "
                f"model num_parameters {model.num_parameters}"
            )
        self._optimizer = optimizer
        self._config = config if config is not None else ServerConfig(max_iterations=10**9)
        self._registry = registry if registry is not None else DeviceRegistry()
        self._monitor = ProgressMonitor(model.num_classes)
        self._checkouts_served = 0
        self._rejected_messages = 0

    @property
    def model(self) -> Model:
        return self._model

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def monitor(self) -> ProgressMonitor:
        """The Eq. 14 DP progress estimates."""
        return self._monitor

    @property
    def registry(self) -> DeviceRegistry:
        return self._registry

    @property
    def parameters(self) -> np.ndarray:
        """Current model parameters w (copy)."""
        return self._optimizer.parameters

    @property
    def iteration(self) -> int:
        """t — number of applied updates."""
        return self._optimizer.iteration

    @property
    def checkouts_served(self) -> int:
        return self._checkouts_served

    @property
    def rejected_messages(self) -> int:
        """Messages refused by authentication or the stopping state."""
        return self._rejected_messages

    def register_device(self, device_id: int) -> str:
        """Enroll a device (Web-portal join flow); returns its token."""
        return self._registry.register(device_id)

    def stopping_decision(self) -> StopDecision:
        """Evaluate Algorithm 2's stopping criteria right now."""
        return evaluate_stopping(self._config, self.iteration, self._monitor)

    @property
    def stopped(self) -> bool:
        return self.stopping_decision().stopped

    def handle_checkout(self, request: CheckoutRequest) -> CheckoutResponse:
        """Server Routine 1: authenticate and send current parameters.

        Raises :class:`~repro.utils.exceptions.AuthenticationError` for
        unknown devices and :class:`ProtocolError` once stopped.
        """
        try:
            self._registry.authenticate(request.device_id, request.token)
        except Exception:
            self._rejected_messages += 1
            raise
        if self.stopped:
            self._rejected_messages += 1
            raise ProtocolError("task has stopped; no further check-outs")
        self._checkouts_served += 1
        return CheckoutResponse(
            device_id=request.device_id,
            parameters=self._optimizer.parameters,
            server_iteration=self.iteration,
            issued_time=request.request_time,
        )

    def handle_checkin(self, message: CheckinMessage) -> CheckinAck:
        """Server Routine 2: authenticate, accumulate stats, apply update.

        The update ``w ← Π_W[w − η(t)·ĝ]`` uses whatever optimizer the
        server was built with; gradient staleness (asynchrony) is inherent
        — the gradient may have been computed against an older w.
        """
        try:
            self._registry.authenticate(message.device_id, message.token)
        except Exception:
            self._rejected_messages += 1
            raise
        if message.gradient.shape[0] != self._model.num_parameters:
            self._rejected_messages += 1
            raise ProtocolError(
                f"gradient length {message.gradient.shape[0]} != "
                f"model num_parameters {self._model.num_parameters}"
            )
        if self.stopped:
            self._rejected_messages += 1
            raise ProtocolError("task has stopped; no further check-ins")
        self._monitor.record(
            device_id=message.device_id,
            num_samples=message.num_samples,
            noisy_error_count=message.noisy_error_count,
            noisy_label_counts=message.noisy_label_counts,
        )
        self._optimizer.step(message.gradient)
        return CheckinAck(device_id=message.device_id, server_iteration=self.iteration)
