"""Device runtime — Algorithm 1 (Routines 1-3).

A :class:`Device` buffers locally generated samples (Routine 1), and when a
minibatch is full it asks for a check-out.  Once the current parameters
arrive, :meth:`Device.complete_checkout` runs Routine 2 — predict, count
errors and labels, compute the averaged regularized gradient — and
Routine 3 — sanitize everything with the device's privacy mechanisms —
returning the :class:`~repro.core.protocol.CheckinMessage` to upload.

The device is transport-agnostic: the simulator (or a real network stack)
decides how requests and messages travel.  Failed check-outs simply leave
the buffer intact and the device retries at the next opportunity
(Remark 1).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.protocol import CheckinMessage
from repro.core.sanitizer import CheckinSanitizer
from repro.privacy.accountant import PrivacyAccountant
from repro.models.base import Model
from repro.utils.exceptions import ConfigurationError, ProtocolError


class CheckinResult(NamedTuple):
    """Output of one completed check-out/check-in cycle.

    Besides the wire message, exposes the *local, non-released* per-sample
    prediction outcomes — what the on-phone UI (and Fig. 3's time-averaged
    error curve) observes.  These never leave the device unsanitized.
    (A NamedTuple: one is built per check-in on the hot path.)
    """

    message: CheckinMessage
    per_sample_errors: np.ndarray  # bool, aligned with consumed samples
    consumed_labels: np.ndarray


class Device:
    """One smart device participating in the crowd-learning task.

    Parameters
    ----------
    device_id:
        Unique integer identity.
    model:
        The classifier family (shared task definition with the server).
    config:
        Algorithm 1 inputs (b, B, privacy levels, holdout fraction).
    token:
        Authentication token from the server's registry.
    rng:
        Device-local randomness (noise, holdout selection).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.core.config import DeviceConfig
    >>> model = MulticlassLogisticRegression(num_features=2, num_classes=2)
    >>> config = DeviceConfig.default(batch_size=2, num_classes=2)
    >>> device = Device(0, model, config, token="t",
    ...                 rng=np.random.default_rng(0))
    >>> device.observe(np.array([0.5, 0.5]), 1)
    False
    >>> device.observe(np.array([0.2, 0.8]), 0)
    True
    >>> result = device.complete_checkout(np.zeros(4), server_iteration=0)
    >>> result.message.num_samples
    2
    """

    def __init__(
        self,
        device_id: int,
        model: Model,
        config: DeviceConfig,
        token: str,
        rng: np.random.Generator,
        accountant: Optional[PrivacyAccountant] = None,
        batch_policy: Optional["BatchPolicy"] = None,
    ):
        if config.budget.num_classes != model.num_classes:
            raise ConfigurationError(
                f"budget num_classes ({config.budget.num_classes}) != "
                f"model num_classes ({model.num_classes})"
            )
        self._device_id = int(device_id)
        self._model = model
        self._config = config
        self._token = str(token)
        self._rng = rng
        self._sanitizer = CheckinSanitizer(
            model, config.budget, rng,
            gradient_noise=config.gradient_noise,
            gaussian_delta=config.gaussian_delta,
        )
        self._accountant = accountant if accountant is not None else PrivacyAccountant()
        self._batch_policy = batch_policy
        self._current_batch_size = config.batch_size
        self._last_checkout_iteration: Optional[int] = None

        # Samples land in ndarray slots instead of growing Python lists
        # (Routine 1 is the hot path of every simulated run, and check-out
        # then needs no np.stack).  Allocation starts at two minibatches —
        # a buffer only exceeds b while a check-out is in flight — and
        # doubles on demand up to the logical capacity B; allocating all of
        # B = buffer_factor × b up front would waste ~B/b× the memory at
        # crowd scale.
        self._capacity = int(config.buffer_capacity)
        self._is_classification = model.num_classes > 1
        self._label_dtype = np.int64 if self._is_classification else np.float64
        allocated = min(2 * int(config.batch_size), self._capacity)
        self._feature_buffer = np.empty((allocated, model.num_features), dtype=np.float64)
        self._label_buffer = np.empty(allocated, dtype=self._label_dtype)
        self._holdout_buffer = np.zeros(allocated, dtype=bool)
        self._buffered = 0
        self._awaiting_checkout = False
        self._failed_checkouts = 0
        self._samples_observed = 0
        self._samples_dropped = 0
        self._checkins_completed = 0

    @property
    def device_id(self) -> int:
        return self._device_id

    @property
    def token(self) -> str:
        return self._token

    @property
    def config(self) -> DeviceConfig:
        return self._config

    @property
    def accountant(self) -> PrivacyAccountant:
        """Privacy-spend ledger for this device's releases."""
        return self._accountant

    @property
    def buffer_size(self) -> int:
        """n_s — samples currently buffered."""
        return self._buffered

    @property
    def samples_observed(self) -> int:
        """Total samples ever offered to Routine 1."""
        return self._samples_observed

    @property
    def samples_dropped(self) -> int:
        """Samples rejected because the buffer hit capacity B."""
        return self._samples_dropped

    @property
    def checkins_completed(self) -> int:
        return self._checkins_completed

    @property
    def awaiting_checkout(self) -> bool:
        """True while a check-out request is in flight."""
        return self._awaiting_checkout

    @property
    def current_batch_size(self) -> int:
        """The b in force right now (fixed unless a batch policy adapts it)."""
        return self._current_batch_size

    def _ensure_allocated(self, needed: int) -> None:
        """Grow the slot arrays geometrically to hold ``needed`` samples.

        Pure reallocation — no values or RNG draws change, so batching
        equivalence is unaffected.  ``needed`` never exceeds capacity B.
        """
        allocated = self._label_buffer.shape[0]
        if needed <= allocated:
            return
        new_size = min(max(needed, 2 * allocated), self._capacity)
        features = np.empty((new_size, self._model.num_features), dtype=np.float64)
        features[:self._buffered] = self._feature_buffer[:self._buffered]
        labels = np.empty(new_size, dtype=self._label_dtype)
        labels[:self._buffered] = self._label_buffer[:self._buffered]
        holdout = np.zeros(new_size, dtype=bool)
        holdout[:self._buffered] = self._holdout_buffer[:self._buffered]
        self._feature_buffer = features
        self._label_buffer = labels
        self._holdout_buffer = holdout

    @property
    def wants_checkout(self) -> bool:
        """Routine 1's trigger: n_s ≥ b and no request already pending."""
        return (
            not self._awaiting_checkout
            and self._buffered >= self._current_batch_size
        )

    def observe(self, features: np.ndarray, label: int) -> bool:
        """Routine 1: buffer one sample; returns True if a check-out is due.

        Samples arriving with a full buffer (n_s ≥ B) are dropped — the
        "stop collection to prevent resource outage" branch.
        """
        self._samples_observed += 1
        if self._buffered >= self._capacity:
            self._samples_dropped += 1
            return self.wants_checkout
        features = np.asarray(features, dtype=np.float64)
        if features.shape != (self._model.num_features,):
            raise ConfigurationError(
                f"sample must have shape ({self._model.num_features},), "
                f"got {features.shape}"
            )
        slot = self._buffered
        self._ensure_allocated(slot + 1)
        self._feature_buffer[slot] = features
        # Classification labels are integer class indices; regression
        # models (num_classes == 1) carry real-valued targets.
        if self._is_classification:
            self._label_buffer[slot] = int(label)
        else:
            self._label_buffer[slot] = float(label)
        self._holdout_buffer[slot] = (
            self._config.holdout_fraction > 0.0
            and float(self._rng.random()) < self._config.holdout_fraction
        )
        self._buffered = slot + 1
        return self.wants_checkout

    def observe_batch(self, features: np.ndarray, labels: np.ndarray) -> bool:
        """Routine 1 over a whole batch of arrivals at once.

        Equivalent — including bit-identical holdout RNG consumption — to
        calling :meth:`observe` once per row: the first ``B − n_s`` rows
        are buffered (one uniform holdout draw each, taken as a single
        ``rng.random(k)`` block), the overflow is dropped, and the return
        value is the final ``wants_checkout``.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._model.num_features:
            raise ConfigurationError(
                f"batch must have shape (n, {self._model.num_features}), "
                f"got {features.shape}"
            )
        labels = np.asarray(labels)
        count = features.shape[0]
        if labels.shape != (count,):
            raise ConfigurationError(
                f"labels must have shape ({count},), got {labels.shape}"
            )
        start, take = self._admit_arrivals(count)
        if take > 0:
            end = start + take
            self._feature_buffer[start:end] = features[:take]
            self._label_buffer[start:end] = labels[:take]
            self._commit_arrivals(start, end, take)
        return self.wants_checkout

    def observe_rows(
        self, features: np.ndarray, labels: np.ndarray, rows: np.ndarray
    ) -> bool:
        """Routine 1 over arrivals given as row indices of a source dataset.

        Equivalent to ``observe_batch(features[rows], labels[rows])`` but
        gathers the kept rows straight into the buffer slots — one copy
        instead of a fancy-index copy followed by a buffer write.  Falls
        back to :meth:`observe_batch` when dtypes don't allow a direct
        ``np.take(..., out=...)`` gather.
        """
        if (features.dtype != np.float64
                or labels.dtype != self._label_dtype
                or features.ndim != 2
                or features.shape[1] != self._model.num_features):
            return self.observe_batch(features[rows], labels[rows])
        start, take = self._admit_arrivals(rows.shape[0])
        if take > 0:
            end = start + take
            if take == 1:
                # b = 1 hot path: a plain row assignment beats the take
                # machinery for a single gather.
                row = rows[0]
                self._feature_buffer[start] = features[row]
                self._label_buffer[start] = labels[row]
            else:
                kept = rows[:take]
                np.take(features, kept, axis=0, out=self._feature_buffer[start:end])
                np.take(labels, kept, out=self._label_buffer[start:end])
            self._commit_arrivals(start, end, take)
        return self.wants_checkout

    def _admit_arrivals(self, count: int) -> tuple[int, int]:
        """Routine 1 admission for ``count`` arrivals: first ``take`` slots
        are buffered, the overflow is dropped.  Returns (start, take)."""
        self._samples_observed += count
        start = self._buffered
        take = min(count, self._capacity - start)
        if take < count:
            self._samples_dropped += count - take
        if take > 0:
            self._ensure_allocated(start + take)
        return start, take

    def _commit_arrivals(self, start: int, end: int, take: int) -> None:
        """Finish admission of slots ``[start, end)``: holdout marks (one
        RNG block, bit-equal to ``take`` sequential scalar draws) and the
        buffer count."""
        if self._config.holdout_fraction > 0.0:
            self._holdout_buffer[start:end] = (
                self._rng.random(take) < self._config.holdout_fraction
            )
        else:
            self._holdout_buffer[start:end] = False
        self._buffered = end

    def mark_checkout_requested(self) -> None:
        """Record that a check-out request left the device."""
        if self._awaiting_checkout:
            raise ProtocolError(f"device {self._device_id} already awaiting check-out")
        self._awaiting_checkout = True

    def on_checkout_failed(self) -> None:
        """Remark 1: the request/response was lost; keep collecting, retry."""
        self._awaiting_checkout = False
        self._failed_checkouts += 1

    @property
    def failed_checkouts(self) -> int:
        return self._failed_checkouts

    def complete_checkout(
        self, parameters: np.ndarray, server_iteration: int
    ) -> CheckinResult:
        """Routines 2 + 3: consume the buffer, return the sanitized check-in.

        ``parameters`` is the checked-out w; ``server_iteration`` tags the
        check-in so delay-aware servers know how stale the gradient is.
        """
        self._awaiting_checkout = False
        if self._batch_policy is not None:
            # The server-iteration counter is public, so adapting b to the
            # observed interleaving costs no privacy (§IV-B3 refinement).
            if self._last_checkout_iteration is not None:
                interleaved = max(
                    int(server_iteration) - self._last_checkout_iteration - 1, 0
                )
                proposed = self._batch_policy.next_batch_size(
                    self._current_batch_size, interleaved
                )
                self._current_batch_size = int(
                    min(max(proposed, 1), self._config.buffer_capacity)
                )
            self._last_checkout_iteration = int(server_iteration)
        if not self._buffered:
            raise ProtocolError(
                f"device {self._device_id} has no buffered samples to process"
            )
        parameters = np.asarray(parameters, dtype=np.float64)
        num_samples = self._buffered
        # Views over the preallocated buffers; labels are copied because
        # they outlive this call inside the returned CheckinResult.
        features = self._feature_buffer[:num_samples]
        is_classification = self._is_classification
        labels = self._label_buffer[:num_samples].copy()
        holdout = self._holdout_buffer[:num_samples]

        # Remark 2: with a holdout, the error statistic comes from held-out
        # samples only, and their gradients stay out of the average.
        # (holdout is identically False when the fraction is 0 — skip the
        # two reductions on that hot path.)
        if (
            self._config.holdout_fraction > 0.0
            and holdout.any() and (~holdout).any()
        ):
            errors = self._model.prediction_errors(parameters, features, labels)
            error_count = int(errors[holdout].sum())
            grad_features = features[~holdout]
            averaged_gradient = self._model.gradient(
                parameters, grad_features, labels[~holdout]
            )
            gradient_samples = grad_features.shape[0]
        else:
            # Same rows feed both oracles: use the fused single-pass form.
            # The buffers were validated sample by sample in Routine 1, so
            # the oracle skips re-validation (trusted fast path).
            errors, averaged_gradient = self._model.errors_and_gradient(
                parameters, features, labels, validate=False
            )
            error_count = int(errors.sum())
            gradient_samples = num_samples
        if is_classification:
            label_counts = np.bincount(
                labels, minlength=self._model.num_classes
            ).astype(np.int64)
        else:
            # Regression has no label histogram; report the sample count in
            # the single "class" slot so monitoring stays well-defined.
            label_counts = np.array([num_samples], dtype=np.int64)

        sanitized = self._sanitizer.sanitize(
            averaged_gradient, error_count, label_counts, gradient_samples
        )
        # Run-length groups: O(1) ledger growth per check-in instead of
        # O(C) record appends (bit-identical spend arithmetic).
        self._accountant.charge_checkin(sanitized.release_groups)

        message = CheckinMessage(
            device_id=self._device_id,
            token=self._token,
            gradient=sanitized.gradient,
            num_samples=num_samples,
            noisy_error_count=sanitized.error_count,
            noisy_label_counts=sanitized.label_counts,
            checkout_iteration=int(server_iteration),
            releases=sanitized.releases,
        )

        # Reset n_s = 0, n_e = 0, n_y^k = 0 (end of Routine 2).
        self._buffered = 0
        self._checkins_completed += 1

        return CheckinResult(
            message=message,
            per_sample_errors=errors,
            consumed_labels=labels,
        )
