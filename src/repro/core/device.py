"""Device runtime — Algorithm 1 (Routines 1-3).

A :class:`Device` buffers locally generated samples (Routine 1), and when a
minibatch is full it asks for a check-out.  Once the current parameters
arrive, :meth:`Device.complete_checkout` runs Routine 2 — predict, count
errors and labels, compute the averaged regularized gradient — and
Routine 3 — sanitize everything with the device's privacy mechanisms —
returning the :class:`~repro.core.protocol.CheckinMessage` to upload.

The device is transport-agnostic: the simulator (or a real network stack)
decides how requests and messages travel.  Failed check-outs simply leave
the buffer intact and the device retries at the next opportunity
(Remark 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import DeviceConfig
from repro.core.protocol import CheckinMessage
from repro.core.sanitizer import CheckinSanitizer
from repro.privacy.accountant import PrivacyAccountant
from repro.models.base import Model
from repro.utils.exceptions import ConfigurationError, ProtocolError


@dataclass(frozen=True)
class CheckinResult:
    """Output of one completed check-out/check-in cycle.

    Besides the wire message, exposes the *local, non-released* per-sample
    prediction outcomes — what the on-phone UI (and Fig. 3's time-averaged
    error curve) observes.  These never leave the device unsanitized.
    """

    message: CheckinMessage
    per_sample_errors: np.ndarray  # bool, aligned with consumed samples
    consumed_labels: np.ndarray


class Device:
    """One smart device participating in the crowd-learning task.

    Parameters
    ----------
    device_id:
        Unique integer identity.
    model:
        The classifier family (shared task definition with the server).
    config:
        Algorithm 1 inputs (b, B, privacy levels, holdout fraction).
    token:
        Authentication token from the server's registry.
    rng:
        Device-local randomness (noise, holdout selection).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.core.config import DeviceConfig
    >>> model = MulticlassLogisticRegression(num_features=2, num_classes=2)
    >>> config = DeviceConfig.default(batch_size=2, num_classes=2)
    >>> device = Device(0, model, config, token="t",
    ...                 rng=np.random.default_rng(0))
    >>> device.observe(np.array([0.5, 0.5]), 1)
    False
    >>> device.observe(np.array([0.2, 0.8]), 0)
    True
    >>> result = device.complete_checkout(np.zeros(4), server_iteration=0)
    >>> result.message.num_samples
    2
    """

    def __init__(
        self,
        device_id: int,
        model: Model,
        config: DeviceConfig,
        token: str,
        rng: np.random.Generator,
        accountant: Optional[PrivacyAccountant] = None,
        batch_policy: Optional["BatchPolicy"] = None,
    ):
        if config.budget.num_classes != model.num_classes:
            raise ConfigurationError(
                f"budget num_classes ({config.budget.num_classes}) != "
                f"model num_classes ({model.num_classes})"
            )
        self._device_id = int(device_id)
        self._model = model
        self._config = config
        self._token = str(token)
        self._rng = rng
        self._sanitizer = CheckinSanitizer(
            model, config.budget, rng,
            gradient_noise=config.gradient_noise,
            gaussian_delta=config.gaussian_delta,
        )
        self._accountant = accountant if accountant is not None else PrivacyAccountant()
        self._batch_policy = batch_policy
        self._current_batch_size = config.batch_size
        self._last_checkout_iteration: Optional[int] = None

        self._features: List[np.ndarray] = []
        self._labels: List[int] = []
        self._holdout_mask: List[bool] = []
        self._awaiting_checkout = False
        self._failed_checkouts = 0
        self._samples_observed = 0
        self._samples_dropped = 0
        self._checkins_completed = 0

    @property
    def device_id(self) -> int:
        return self._device_id

    @property
    def token(self) -> str:
        return self._token

    @property
    def config(self) -> DeviceConfig:
        return self._config

    @property
    def accountant(self) -> PrivacyAccountant:
        """Privacy-spend ledger for this device's releases."""
        return self._accountant

    @property
    def buffer_size(self) -> int:
        """n_s — samples currently buffered."""
        return len(self._features)

    @property
    def samples_observed(self) -> int:
        """Total samples ever offered to Routine 1."""
        return self._samples_observed

    @property
    def samples_dropped(self) -> int:
        """Samples rejected because the buffer hit capacity B."""
        return self._samples_dropped

    @property
    def checkins_completed(self) -> int:
        return self._checkins_completed

    @property
    def awaiting_checkout(self) -> bool:
        """True while a check-out request is in flight."""
        return self._awaiting_checkout

    @property
    def current_batch_size(self) -> int:
        """The b in force right now (fixed unless a batch policy adapts it)."""
        return self._current_batch_size

    @property
    def wants_checkout(self) -> bool:
        """Routine 1's trigger: n_s ≥ b and no request already pending."""
        return (
            not self._awaiting_checkout
            and len(self._features) >= self._current_batch_size
        )

    def observe(self, features: np.ndarray, label: int) -> bool:
        """Routine 1: buffer one sample; returns True if a check-out is due.

        Samples arriving with a full buffer (n_s ≥ B) are dropped — the
        "stop collection to prevent resource outage" branch.
        """
        self._samples_observed += 1
        if len(self._features) >= self._config.buffer_capacity:
            self._samples_dropped += 1
            return self.wants_checkout
        features = np.asarray(features, dtype=np.float64)
        if features.shape != (self._model.num_features,):
            raise ConfigurationError(
                f"sample must have shape ({self._model.num_features},), "
                f"got {features.shape}"
            )
        self._features.append(features)
        # Classification labels are integer class indices; regression
        # models (num_classes == 1) carry real-valued targets.
        if self._model.num_classes > 1:
            self._labels.append(int(label))
        else:
            self._labels.append(float(label))
        is_holdout = (
            self._config.holdout_fraction > 0.0
            and float(self._rng.random()) < self._config.holdout_fraction
        )
        self._holdout_mask.append(is_holdout)
        return self.wants_checkout

    def mark_checkout_requested(self) -> None:
        """Record that a check-out request left the device."""
        if self._awaiting_checkout:
            raise ProtocolError(f"device {self._device_id} already awaiting check-out")
        self._awaiting_checkout = True

    def on_checkout_failed(self) -> None:
        """Remark 1: the request/response was lost; keep collecting, retry."""
        self._awaiting_checkout = False
        self._failed_checkouts += 1

    @property
    def failed_checkouts(self) -> int:
        return self._failed_checkouts

    def complete_checkout(
        self, parameters: np.ndarray, server_iteration: int
    ) -> CheckinResult:
        """Routines 2 + 3: consume the buffer, return the sanitized check-in.

        ``parameters`` is the checked-out w; ``server_iteration`` tags the
        check-in so delay-aware servers know how stale the gradient is.
        """
        self._awaiting_checkout = False
        if self._batch_policy is not None:
            # The server-iteration counter is public, so adapting b to the
            # observed interleaving costs no privacy (§IV-B3 refinement).
            if self._last_checkout_iteration is not None:
                interleaved = max(
                    int(server_iteration) - self._last_checkout_iteration - 1, 0
                )
                proposed = self._batch_policy.next_batch_size(
                    self._current_batch_size, interleaved
                )
                self._current_batch_size = int(
                    min(max(proposed, 1), self._config.buffer_capacity)
                )
            self._last_checkout_iteration = int(server_iteration)
        if not self._features:
            raise ProtocolError(
                f"device {self._device_id} has no buffered samples to process"
            )
        parameters = np.asarray(parameters, dtype=np.float64)
        features = np.stack(self._features)
        is_classification = self._model.num_classes > 1
        label_dtype = np.int64 if is_classification else np.float64
        labels = np.asarray(self._labels, dtype=label_dtype)
        holdout = np.asarray(self._holdout_mask, dtype=bool)
        num_samples = features.shape[0]

        errors = self._model.prediction_errors(parameters, features, labels)

        # Remark 2: with a holdout, the error statistic comes from held-out
        # samples only, and their gradients stay out of the average.
        if holdout.any() and (~holdout).any():
            error_count = int(errors[holdout].sum())
            grad_features, grad_labels = features[~holdout], labels[~holdout]
        else:
            error_count = int(errors.sum())
            grad_features, grad_labels = features, labels

        averaged_gradient = self._model.gradient(parameters, grad_features, grad_labels)
        if is_classification:
            label_counts = np.bincount(
                labels, minlength=self._model.num_classes
            ).astype(np.int64)
        else:
            # Regression has no label histogram; report the sample count in
            # the single "class" slot so monitoring stays well-defined.
            label_counts = np.array([num_samples], dtype=np.int64)

        sanitized = self._sanitizer.sanitize(
            averaged_gradient, error_count, label_counts, grad_features.shape[0]
        )
        self._accountant.charge_checkin(list(sanitized.releases))

        message = CheckinMessage(
            device_id=self._device_id,
            token=self._token,
            gradient=sanitized.gradient,
            num_samples=num_samples,
            noisy_error_count=sanitized.error_count,
            noisy_label_counts=sanitized.label_counts,
            checkout_iteration=int(server_iteration),
            releases=sanitized.releases,
        )

        # Reset n_s = 0, n_e = 0, n_y^k = 0 (end of Routine 2).
        self._features.clear()
        self._labels.clear()
        self._holdout_mask.clear()
        self._checkins_completed += 1

        return CheckinResult(
            message=message,
            per_sample_errors=errors,
            consumed_labels=labels,
        )
