"""Server-side progress monitoring from DP counts (Eq. 14).

Server Routine 2 accumulates, per device m, the sample counts N_s^m, the
noisy misclassification counts N_e^m, and the noisy label counts N_y^{k,m}.
The global error-rate and label-prior estimates are

    Err_est    = Σ_m N_e^m / Σ_m N_s^m
    P_est(y=k) = Σ_m N_y^{k,m} / Σ_m N_s^m               (Eq. 14)

Because the discrete Laplace noise is zero-mean with finite variance, both
estimates converge almost surely to the truth as check-ins accumulate
(Appendix B, Remark 2); estimates are clipped into their valid ranges for
presentation but the raw sums are kept for the convergence analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.utils.validation import check_positive_int


@dataclass
class DeviceProgress:
    """Per-device accumulators of Algorithm 2."""

    samples: int = 0
    noisy_errors: int = 0

    def __post_init__(self):
        self.label_counts: np.ndarray | None = None


class ProgressMonitor:
    """Accumulates DP check-in statistics and exposes the Eq. 14 estimates.

    Examples
    --------
    >>> import numpy as np
    >>> monitor = ProgressMonitor(num_classes=2)
    >>> monitor.record(device_id=0, num_samples=10, noisy_error_count=3,
    ...                noisy_label_counts=np.array([6, 4]))
    >>> monitor.error_estimate()
    0.3
    """

    def __init__(self, num_classes: int):
        self._num_classes = check_positive_int(num_classes, "num_classes")
        self._devices: Dict[int, DeviceProgress] = {}
        self._total_samples = 0
        self._total_noisy_errors = 0
        self._total_label_counts = np.zeros(num_classes, dtype=np.int64)
        self._num_checkins = 0

    @property
    def num_classes(self) -> int:
        return self._num_classes

    @property
    def total_samples(self) -> int:
        """Σ_m N_s^m — exact, since n_s is transmitted in clear."""
        return self._total_samples

    @property
    def num_checkins(self) -> int:
        return self._num_checkins

    @property
    def num_devices_seen(self) -> int:
        return len(self._devices)

    def record(
        self,
        device_id: int,
        num_samples: int,
        noisy_error_count: int,
        noisy_label_counts: np.ndarray,
    ) -> None:
        """Fold one check-in's statistics into the per-device accumulators."""
        progress = self._devices.setdefault(int(device_id), DeviceProgress())
        if progress.label_counts is None:
            progress.label_counts = np.zeros(self._num_classes, dtype=np.int64)
        counts = np.asarray(noisy_label_counts, dtype=np.int64)
        if counts.shape != (self._num_classes,):
            raise ValueError(
                f"label counts must have shape ({self._num_classes},), got {counts.shape}"
            )
        progress.samples += int(num_samples)
        progress.noisy_errors += int(noisy_error_count)
        progress.label_counts += counts
        self._total_samples += int(num_samples)
        self._total_noisy_errors += int(noisy_error_count)
        self._total_label_counts += counts
        self._num_checkins += 1

    def error_estimate(self) -> float:
        """Global DP error-rate estimate, clipped to [0, 1].

        Returns 1.0 before any samples arrive (pessimistic default so the
        ρ-based stop can never fire spuriously).
        """
        if self._total_samples == 0:
            return 1.0
        raw = self._total_noisy_errors / self._total_samples
        return float(np.clip(raw, 0.0, 1.0))

    def raw_error_estimate(self) -> float:
        """Unclipped estimate (may exit [0, 1] due to noise)."""
        if self._total_samples == 0:
            return 1.0
        return self._total_noisy_errors / self._total_samples

    def prior_estimate(self) -> np.ndarray:
        """DP label-prior estimate P_est(y), clipped and renormalized."""
        if self._total_samples == 0:
            return np.full(self._num_classes, 1.0 / self._num_classes)
        raw = np.maximum(self._total_label_counts / self._total_samples, 0.0)
        total = raw.sum()
        if total == 0.0:
            return np.full(self._num_classes, 1.0 / self._num_classes)
        return raw / total

    def device_error_estimate(self, device_id: int) -> float:
        """Per-device DP error estimate (for the Web-portal statistics)."""
        progress = self._devices.get(int(device_id))
        if progress is None or progress.samples == 0:
            return 1.0
        return float(np.clip(progress.noisy_errors / progress.samples, 0.0, 1.0))

    def device_sample_count(self, device_id: int) -> int:
        progress = self._devices.get(int(device_id))
        return progress.samples if progress is not None else 0

    def state_dict(self) -> Dict[str, Any]:
        """Serializable accumulator state (all integers — exact)."""
        return {
            "num_classes": self._num_classes,
            "total_samples": self._total_samples,
            "total_noisy_errors": self._total_noisy_errors,
            "total_label_counts": [int(c) for c in self._total_label_counts],
            "num_checkins": self._num_checkins,
            "devices": {
                str(device_id): {
                    "samples": progress.samples,
                    "noisy_errors": progress.noisy_errors,
                    "label_counts": (
                        None if progress.label_counts is None
                        else [int(c) for c in progress.label_counts]
                    ),
                }
                for device_id, progress in sorted(self._devices.items())
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ProgressMonitor":
        """Inverse of :meth:`state_dict`."""
        monitor = cls(int(state["num_classes"]))
        monitor._total_samples = int(state["total_samples"])
        monitor._total_noisy_errors = int(state["total_noisy_errors"])
        monitor._total_label_counts = np.asarray(
            state["total_label_counts"], dtype=np.int64
        )
        monitor._num_checkins = int(state["num_checkins"])
        for device_id, entry in dict(state["devices"]).items():
            progress = DeviceProgress(
                samples=int(entry["samples"]),
                noisy_errors=int(entry["noisy_errors"]),
            )
            if entry["label_counts"] is not None:
                progress.label_counts = np.asarray(
                    entry["label_counts"], dtype=np.int64
                )
            monitor._devices[int(device_id)] = progress
        return monitor
