"""Adaptive minibatch policies (the Dekel et al. refinement, §IV-B3).

Section IV-B3 observes that the number of stale updates per round trip is
roughly (τ_co + τ_ci)·M·F_s / b, and cites Dekel et al.: delayed
incremental updates scale with M *by adapting the minibatch size*.  The
conclusion lists such refinements as natural extensions of Crowd-ML.

A :class:`BatchPolicy` lets each device adapt its own b from what it can
observe locally and privately: the number of foreign updates interleaved
between its consecutive check-outs (read off the public server-iteration
counters — no extra privacy cost).  High staleness → grow b (fewer,
larger, less-noisy updates); low staleness → shrink toward the configured
minimum so convergence keeps its per-sample pace.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.utils.exceptions import ConfigurationError


class BatchPolicy(ABC):
    """Decides the next minibatch size from observed interleaving."""

    @abstractmethod
    def next_batch_size(self, current: int, interleaved_updates: int) -> int:
        """Return the b to use for the next minibatch.

        ``interleaved_updates`` is the number of *other* devices' updates
        the server applied between this device's two latest check-outs.
        """


class FixedBatch(BatchPolicy):
    """The paper's default: b never changes."""

    def __init__(self, batch_size: int):
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self._batch_size = int(batch_size)

    def next_batch_size(self, current: int, interleaved_updates: int) -> int:
        return self._batch_size


class StalenessAdaptiveBatch(BatchPolicy):
    """Multiplicative-increase / additive-decrease adaptation of b.

    Parameters
    ----------
    target_staleness:
        Desired interleaved-updates level.  Above it b doubles (capped);
        at/below it b decays by one step toward ``min_batch``.
    min_batch, max_batch:
        Clamp range for b.

    Examples
    --------
    >>> policy = StalenessAdaptiveBatch(target_staleness=10, max_batch=32)
    >>> policy.next_batch_size(1, interleaved_updates=50)
    2
    >>> policy.next_batch_size(16, interleaved_updates=0)
    15
    """

    def __init__(
        self,
        target_staleness: float,
        min_batch: int = 1,
        max_batch: int = 64,
        growth_factor: float = 2.0,
    ):
        if target_staleness < 0:
            raise ConfigurationError("target_staleness must be non-negative")
        if min_batch < 1:
            raise ConfigurationError("min_batch must be >= 1")
        if max_batch < min_batch:
            raise ConfigurationError("max_batch must be >= min_batch")
        if growth_factor <= 1.0:
            raise ConfigurationError("growth_factor must exceed 1")
        self._target = float(target_staleness)
        self._min = int(min_batch)
        self._max = int(max_batch)
        self._growth = float(growth_factor)

    @property
    def target_staleness(self) -> float:
        return self._target

    def next_batch_size(self, current: int, interleaved_updates: int) -> int:
        current = max(int(current), self._min)
        if interleaved_updates > self._target:
            grown = max(int(current * self._growth), current + 1)
            return min(grown, self._max)
        return max(current - 1, self._min)
