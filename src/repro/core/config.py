"""Configuration objects for the device and server runtimes."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.privacy.budget import PrivacyBudget
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class DeviceConfig:
    """Inputs of Algorithm 1 (device side).

    Attributes
    ----------
    batch_size:
        Minibatch size b: the device checks out once this many samples are
        buffered.
    buffer_capacity:
        Max buffer size B; collection pauses at this level to prevent
        resource outage (Algorithm 1, Routine 1).
    budget:
        Per-sample privacy levels (ε_g, ε_e, ε_yk).
    holdout_fraction:
        Remark 2: probability a sample is set aside as held-out test data —
        its error is counted but its gradient never enters the average.
    max_checkout_retries:
        How many failed check-outs a device tolerates before dropping the
        current oversized buffer back to capacity (Remark 1's "retries
        later" is the normal path; this is a final safety valve, 0 = never
        drop).
    gradient_noise:
        "laplace" (Eq. 10, the default) or "gaussian" (footnote 1's
        (ε, δ) variant).
    gaussian_delta:
        δ for the Gaussian variant (ignored for Laplace).
    """

    batch_size: int
    buffer_capacity: int
    budget: PrivacyBudget
    holdout_fraction: float = 0.0
    max_checkout_retries: int = 0
    gradient_noise: str = "laplace"
    gaussian_delta: float = 1e-6

    def __post_init__(self):
        if self.gradient_noise not in ("laplace", "gaussian"):
            raise ConfigurationError(
                f"gradient_noise must be 'laplace' or 'gaussian', got "
                f"{self.gradient_noise!r}"
            )
        if not (0.0 < self.gaussian_delta < 1.0):
            raise ConfigurationError(
                f"gaussian_delta must be in (0, 1), got {self.gaussian_delta!r}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.buffer_capacity < self.batch_size:
            raise ConfigurationError(
                f"buffer_capacity ({self.buffer_capacity}) must be >= "
                f"batch_size ({self.batch_size})"
            )
        if not (0.0 <= self.holdout_fraction < 1.0):
            raise ConfigurationError(
                f"holdout_fraction must be in [0, 1), got {self.holdout_fraction}"
            )
        if self.max_checkout_retries < 0:
            raise ConfigurationError("max_checkout_retries must be >= 0")

    @classmethod
    def default(
        cls,
        batch_size: int,
        num_classes: int,
        epsilon: float = math.inf,
        buffer_factor: int = 10,
    ) -> "DeviceConfig":
        """Convenience constructor: budget from a total ε, B = factor·b."""
        from repro.privacy.budget import split_budget

        return cls(
            batch_size=batch_size,
            buffer_capacity=batch_size * max(buffer_factor, 1),
            budget=split_budget(epsilon, num_classes),
        )


@dataclass(frozen=True)
class ServerConfig:
    """Inputs of Algorithm 2 (server side).

    Attributes
    ----------
    max_iterations:
        T_max — hard cap on the number of applied updates.
    target_error:
        ρ — stop when the DP-monitored global error estimate falls below it
        (``None`` disables the error-based stop).
    min_samples_for_error_stop:
        Do not trust the error estimate before this many samples have been
        counted (the DP counts are noisy early on).
    """

    max_iterations: int
    target_error: Optional[float] = None
    min_samples_for_error_stop: int = 100

    def __post_init__(self):
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.target_error is not None and not (0.0 <= self.target_error <= 1.0):
            raise ConfigurationError(
                f"target_error must be in [0, 1], got {self.target_error}"
            )
        if self.min_samples_for_error_stop < 0:
            raise ConfigurationError("min_samples_for_error_stop must be >= 0")
