"""Device-server wire protocol (Fig. 2 workflow).

Four message types cover the whole exchange:

1. :class:`CheckoutRequest` — device asks for the current parameters
   (step 2 of Fig. 2).
2. :class:`CheckoutResponse` — server returns ``w`` after authenticating
   (step 3).
3. :class:`CheckinMessage` — device uploads the sanitized statistics
   ``(ĝ, n_s, n̂_e, n̂_y^k)`` (step 4).
4. :class:`CheckinAck` — server confirms the update was applied (step 5).

Messages are immutable dataclasses; ``payload_floats`` reports the size
used by the Section IV-B2 communication accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Tuple

import numpy as np

from repro.privacy.mechanism import ReleaseRecord
from repro.utils.exceptions import ProtocolError


class CheckoutRequest(NamedTuple):
    """A device's request for the current model parameters.

    (A NamedTuple — immutable like the other protocol messages, but
    constructed without per-field ``object.__setattr__``: one is built
    per check-out round.)
    """

    device_id: int
    token: str
    request_time: float

    @property
    def payload_floats(self) -> int:
        """Requests carry no numeric payload."""
        return 0


@dataclass(frozen=True)
class CheckoutResponse:
    """Server's reply: the current parameters and the server iteration."""

    device_id: int
    parameters: np.ndarray
    server_iteration: int
    issued_time: float

    def __post_init__(self):
        parameters = self.parameters
        # Fast path: a float64 ndarray needs no coercion (and no frozen
        # field rewrite) — the per-round case on the server hot path.
        if type(parameters) is not np.ndarray or parameters.dtype != np.float64:
            parameters = np.asarray(parameters, dtype=np.float64)
            object.__setattr__(self, "parameters", parameters)
        if parameters.ndim != 1:
            raise ProtocolError(f"parameters must be a flat vector, got {parameters.shape}")

    @property
    def payload_floats(self) -> int:
        """One parameter vector."""
        return int(self.parameters.shape[0])


@dataclass(frozen=True)
class CheckinMessage:
    """Sanitized device statistics: ``(ĝ, n_s, n̂_e, n̂_y^k)``.

    Attributes
    ----------
    gradient:
        The sanitized averaged gradient ĝ (Eq. 10), flat.
    num_samples:
        n_s, the exact number of samples averaged (not privatized: it
        reveals only volume, not content; the paper transmits it in clear).
    noisy_error_count:
        n̂_e, discrete-Laplace-perturbed misclassification count (Eq. 11).
    noisy_label_counts:
        n̂_y^k for k = 1..C (Eq. 12).
    checkout_iteration:
        Server iteration at which the parameters used were issued —
        available to delay-aware update rules.
    releases:
        Privacy-accounting records for the mechanisms applied.
    checkin_seq:
        Per-device monotone sequence number for idempotent re-submission
        (Remark 1): retry-capable clients number their check-ins so the
        server can recognize a replay of an already-applied message and
        answer with the original ack instead of applying it twice.  The
        default ``-1`` means "untracked" — the in-process simulation path
        never sets it and is unaffected.
    """

    device_id: int
    token: str
    gradient: np.ndarray
    num_samples: int
    noisy_error_count: int
    noisy_label_counts: np.ndarray
    checkout_iteration: int
    releases: Tuple[ReleaseRecord, ...] = field(default_factory=tuple)
    checkin_seq: int = -1

    def __post_init__(self):
        gradient = self.gradient
        # Fast paths mirror CheckoutResponse: already-coerced arrays (the
        # per-check-in case) skip the asarray and frozen field rewrite.
        if type(gradient) is not np.ndarray or gradient.dtype != np.float64:
            gradient = np.asarray(gradient, dtype=np.float64)
            object.__setattr__(self, "gradient", gradient)
        if gradient.ndim != 1:
            raise ProtocolError(f"gradient must be a flat vector, got {gradient.shape}")
        counts = self.noisy_label_counts
        if type(counts) is not np.ndarray or counts.dtype != np.int64:
            counts = np.asarray(counts, dtype=np.int64)
            object.__setattr__(self, "noisy_label_counts", counts)
        if counts.ndim != 1:
            raise ProtocolError(f"label counts must be 1-D, got {counts.shape}")
        if self.num_samples <= 0:
            raise ProtocolError(f"num_samples must be positive, got {self.num_samples}")

    @property
    def payload_floats(self) -> int:
        """Gradient plus the C + 2 scalar counters."""
        return int(self.gradient.shape[0] + self.noisy_label_counts.shape[0] + 2)


class CheckinAck(NamedTuple):
    """Server's acknowledgement of an applied check-in.

    (A NamedTuple — one is built per applied check-in.)

    ``checkin_seq`` echoes the message's sequence number (``-1`` when the
    sender did not number it); ``duplicate`` is True when the server
    recognized a replay of an already-applied message and answered with
    the original ack's iteration instead of applying it again.
    """

    device_id: int
    server_iteration: int
    checkin_seq: int = -1
    duplicate: bool = False

    @property
    def payload_floats(self) -> int:
        return 1
