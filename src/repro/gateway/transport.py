"""Event-driven gateway tier for the simulator.

A :class:`GatewayTransport` implements the PR 4 transport seam with a
middle tier: every device link runs through its assigned gateway, so
each protocol leg crosses **two** hops — device↔gateway (that device's
edge link) and gateway↔server (the gateway's backhaul) — each with its
own delay/outage model from the gateway's
:class:`~repro.gateway.topology.GatewayProfile`.

Check-ins do not travel per-message past the gateway.  Each gateway node
owns a :class:`~repro.gateway.aggregator.GatewayAggregator` clocked by
the event queue: device check-ins accumulate there, and a size threshold,
an armed deadline timer, or a capacity bound flushes the whole buffer
upstream as **one** batch event.  The simulator receives that batch
through a single ``deliver_batch`` callback and applies it with the
PR 5 ``_apply_checkin_run`` machinery — which is what keeps a
transparent (pass-through, zero-delay, reliable) gateway bit-identical
to no gateway at all: one extra hop event per check-in, same arrival
timestamps, same application order, same RNG draws (zero-delay models
and :class:`~repro.network.outage.NoOutage` consume none).

Stall windows model a gateway whose backhaul is down: requests and
check-outs in transit are held until the window closes, buffered
check-ins stop flushing (the aggregator suspends), and arrivals beyond
``capacity`` are dropped at the gateway's edge — an entire crowd
segment stalls at once, then bursts.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.protocol import CheckinMessage
from repro.gateway.aggregator import GatewayAggregator
from repro.gateway.topology import GatewayProfile, TwoTierTopology
from repro.network.channel import ChannelStats
from repro.network.events import EventHandle, EventQueue
from repro.network.transport import DeviceLink, Transport
from repro.utils.rng import RngFactory

#: The simulator's batch sink: receives each flushed gateway batch.
DeliverBatch = Callable[[List[CheckinMessage]], None]


class _GatewayNode:
    """One gateway: an aggregator plus its backhaul link state.

    The node owns the gateway-side RNG stream (backhaul delays/outages
    and nothing else draw from it), the deadline timer on the event
    queue, and the stall bookkeeping that suspends/resumes the
    aggregator around the profile's ``stall_windows``.
    """

    __slots__ = (
        "index", "profile", "_queue", "_deliver", "_rng", "aggregator",
        "uplink_stats", "checkins_lost", "capacity_drops", "_timer",
        "_resume_until", "_on_deadline_handler", "_on_resume_handler",
        "_receive_handler",
    )

    def __init__(
        self,
        index: int,
        profile: GatewayProfile,
        queue: EventQueue,
        deliver_batch: DeliverBatch,
        rng: np.random.Generator,
    ):
        self.index = index
        self.profile = profile
        self._queue = queue
        self._deliver = deliver_batch
        self._rng = rng
        self.aggregator = GatewayAggregator(
            self._depart,
            flush_size=profile.flush_size,
            flush_deadline=profile.flush_deadline,
            capacity=profile.capacity,
            clock=lambda: queue.now,
        )
        #: The gateway→server check-in hop: one message per flushed batch.
        self.uplink_stats = ChannelStats()
        #: Check-ins lost when the backhaul dropped a whole batch.
        self.checkins_lost = 0
        #: Check-ins dropped at the edge: stalled gateway at capacity.
        self.capacity_drops = 0
        self._timer: Optional[EventHandle] = None
        self._resume_until: Optional[float] = None
        self._on_deadline_handler = self._on_deadline
        self._on_resume_handler = self._on_resume
        self._receive_handler = self._receive

    # -- check-in path -------------------------------------------------- #

    def _receive(self, message: CheckinMessage, origin_stats: ChannelStats) -> None:
        """A device's check-in reached the gateway (device hop done)."""
        now = self._queue.now
        if self.profile.in_stall(now) and not self.aggregator.suspended:
            self.aggregator.suspend()
            self._ensure_resume(self.profile.stall_release(now))
        if (
            self.aggregator.suspended
            and self.aggregator.capacity is not None
            and self.aggregator.pending >= self.aggregator.capacity
        ):
            # Edge buffer overflow while the backhaul is down: the drop is
            # charged to the originating device's check-in leg, so it
            # lands in the run's communication accounting like any other
            # lost message.
            origin_stats.messages_dropped += 1
            self.capacity_drops += 1
            return
        self.aggregator.add(message)
        self._arm_deadline()

    def _depart(self, messages: List[CheckinMessage]) -> None:
        """Aggregator upstream: one batch leaves on the backhaul."""
        self._cancel_timer()
        now = self._queue.now
        self.uplink_stats.messages_sent += 1
        self.uplink_stats.payload_floats += sum(
            m.payload_floats for m in messages
        )
        if self.profile.server_outage.attempt_fails(self._rng, now):
            # The backhaul drops the whole batch: every pooled check-in
            # is lost at once — the failure-amplification the capacity /
            # flush-size knobs trade against.
            self.uplink_stats.messages_dropped += 1
            self.checkins_lost += len(messages)
            return None
        delay = self.profile.server_delays.checkin.sample(self._rng)
        self.uplink_stats.total_delay += delay
        self._queue.schedule(
            now + delay, self._deliver, tag="gateway-flush", args=(messages,)
        )
        return None  # asynchronous: acks are never known at the gateway

    # -- deadline timer ------------------------------------------------- #

    def _arm_deadline(self) -> None:
        at = self.aggregator.deadline_at
        if at is None:
            self._cancel_timer()
            return
        if (
            self._timer is not None
            and not self._timer.cancelled
            and self._timer.time == at
        ):
            return
        self._cancel_timer()
        self._timer = self._queue.schedule(
            at, self._on_deadline_handler, tag="gateway-deadline"
        )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_deadline(self) -> None:
        self._timer = None
        now = self._queue.now
        if self.profile.in_stall(now):
            self.aggregator.suspend()
            self._ensure_resume(self.profile.stall_release(now))
            return
        self.aggregator.flush_if_due()

    # -- stall windows -------------------------------------------------- #

    def _ensure_resume(self, release: float) -> None:
        if self._resume_until is not None and self._resume_until >= release:
            return
        self._resume_until = release
        self._queue.schedule(release, self._on_resume_handler, tag="gateway-resume")

    def _on_resume(self) -> None:
        if self._resume_until is not None and self._queue.now < self._resume_until:
            return  # superseded by a later resume
        self._resume_until = None
        now = self._queue.now
        if self.profile.in_stall(now):
            # Window boundaries may touch: released straight into the
            # next stall.
            self._ensure_resume(self.profile.stall_release(now))
            return
        self.aggregator.resume()
        self._arm_deadline()

    # -- end-of-run drain ------------------------------------------------ #

    def drain(self) -> bool:
        """Make progress on stranded check-ins; True if any work remains.

        Called by the simulator when the event queue runs dry: a final
        shutdown flush for buffers that never hit a trigger (no deadline
        configured, trailing trickle below ``flush_size``).  During a
        stall the flush waits for the release event instead.
        """
        if self.aggregator.pending == 0:
            return False
        now = self._queue.now
        if self.profile.in_stall(now):
            self.aggregator.suspend()
            self._ensure_resume(self.profile.stall_release(now))
            return True
        if self.aggregator.suspended:
            return True  # a resume event is already on the queue
        self._cancel_timer()
        self.aggregator.flush()
        return True


class _GatewayLeg:
    """One request/check-out leg of a device's link: two hops in one send.

    Both hops are resolved at send time — device-hop outage and delay
    from the device's network RNG, backhaul outage (evaluated at the
    gateway arrival time) and delay from the gateway's RNG, plus the
    stall hold — and the delivery is scheduled directly at the final
    arrival time.  A drop on either hop fails the send synchronously,
    which preserves the simulator's Remark 1 recovery contract
    (``send(...) -> False`` reschedules the trigger chain).
    """

    __slots__ = ("_node", "_rng", "_leg", "_down", "_name", "stats")

    def __init__(
        self,
        node: _GatewayNode,
        rng: np.random.Generator,
        leg: str,
        down: bool,
        name: str,
    ):
        self._node = node
        self._rng = rng
        self._leg = leg  # "request" | "checkout": picks the LinkDelays slot
        self._down = down  # True: server→device (check-out direction)
        self._name = name
        self.stats = ChannelStats()

    def send(
        self,
        deliver: Callable[..., None],
        payload_floats: int = 0,
        on_drop: Optional[Callable[..., None]] = None,
        args: tuple = (),
        drop_args: tuple = (),
    ) -> bool:
        self.stats.messages_sent += 1
        self.stats.payload_floats += int(payload_floats)
        node = self._node
        profile = node.profile
        queue = node._queue
        now = queue.now
        device_delay = getattr(profile.device_delays, self._leg)
        server_delay = getattr(profile.server_delays, self._leg)
        if self._down:
            # Server → gateway (backhaul, held while stalled) → device.
            dropped = profile.server_outage.attempt_fails(node._rng, now)
            if not dropped:
                hop1 = profile.stall_release(now) + server_delay.sample(node._rng)
                dropped = profile.device_outage.attempt_fails(self._rng, hop1)
                if not dropped:
                    arrival = hop1 + device_delay.sample(self._rng)
        else:
            # Device → gateway → server; the backhaul outage and stall are
            # evaluated at the gateway arrival time.
            dropped = profile.device_outage.attempt_fails(self._rng, now)
            if not dropped:
                hop1 = now + device_delay.sample(self._rng)
                dropped = profile.server_outage.attempt_fails(node._rng, hop1)
                if not dropped:
                    arrival = profile.stall_release(hop1) + server_delay.sample(
                        node._rng
                    )
        if dropped:
            self.stats.messages_dropped += 1
            if on_drop is not None:
                on_drop(*drop_args)
            return False
        self.stats.total_delay += arrival - now
        queue.schedule(arrival, deliver, tag=self._name, args=args)
        return True


class _GatewayUplink:
    """The check-in leg: device hop into the gateway's aggregator.

    ``send`` carries the simulator's per-message delivery contract
    (``args=(actor, message)``) but the per-message ``deliver`` callback
    is intentionally unused past this point: the message's onward journey
    is the gateway's batch flush, delivered through the transport-level
    ``deliver_batch``.  The message is taken from ``args[-1]`` — the
    documented coupling to the simulator's send convention.
    """

    __slots__ = ("_node", "_rng", "_name", "stats")

    def __init__(self, node: _GatewayNode, rng: np.random.Generator, name: str):
        self._node = node
        self._rng = rng
        self._name = name
        self.stats = ChannelStats()

    def send(
        self,
        deliver: Callable[..., None],
        payload_floats: int = 0,
        on_drop: Optional[Callable[..., None]] = None,
        args: tuple = (),
        drop_args: tuple = (),
    ) -> bool:
        message: CheckinMessage = args[-1]
        node = self._node
        self.stats.messages_sent += 1
        self.stats.payload_floats += int(payload_floats)
        if node.profile.device_outage.attempt_fails(self._rng, node._queue.now):
            self.stats.messages_dropped += 1
            if on_drop is not None:
                on_drop(*drop_args)
            return False
        delay = node.profile.device_delays.checkin.sample(self._rng)
        self.stats.total_delay += delay
        node._queue.schedule_after(
            delay, node._receive_handler, tag=self._name,
            args=(message, self.stats),
        )
        return True


class GatewayLink(DeviceLink):
    """A device's three legs, all routed through its gateway."""

    __slots__ = ("gateway_index", "request", "checkout", "checkin")

    def __init__(self, node: _GatewayNode, rng: np.random.Generator, device_id: int):
        self.gateway_index = node.index
        self.request = _GatewayLeg(
            node, rng, "request", down=False, name=f"request-{device_id}"
        )
        self.checkout = _GatewayLeg(
            node, rng, "checkout", down=True, name=f"checkout-{device_id}"
        )
        self.checkin = _GatewayUplink(node, rng, name=f"checkin-{device_id}")

    @property
    def messages_dropped(self) -> int:
        return (
            self.request.stats.messages_dropped
            + self.checkout.stats.messages_dropped
            + self.checkin.stats.messages_dropped
        )


class GatewayTransport(Transport):
    """Two-tier transport: device links run through aggregating gateways.

    Parameters
    ----------
    queue:
        The shared simulation event queue.
    topology:
        Gateway count, device assignment, and per-gateway profiles.
    num_devices:
        M; resolves the device→gateway assignment up front.
    deliver_batch:
        Simulator callback receiving each flushed check-in batch (the
        batch analogue of the per-message check-in arrival handler).
    rng_factory:
        Source of the per-gateway RNG streams (``"gateway"``, index g).
    """

    synchronous = False

    def __init__(
        self,
        queue: EventQueue,
        topology: TwoTierTopology,
        num_devices: int,
        deliver_batch: DeliverBatch,
        rng_factory: RngFactory,
    ):
        self._queue = queue
        self._topology = topology
        self._assignment = topology.assign(num_devices)
        self._nodes: Tuple[_GatewayNode, ...] = tuple(
            _GatewayNode(
                g,
                topology.profile_for(g),
                queue,
                deliver_batch,
                rng_factory.generator("gateway", g),
            )
            for g in range(topology.num_gateways)
        )

    @property
    def topology(self) -> TwoTierTopology:
        return self._topology

    @property
    def assignment(self) -> np.ndarray:
        """The resolved device→gateway map (index m → gateway)."""
        return self._assignment

    @property
    def nodes(self) -> Tuple[_GatewayNode, ...]:
        return self._nodes

    @property
    def checkins_lost(self) -> int:
        """Check-ins lost inside the tier (dropped batches + capacity
        drops are charged to device links; this counts batch losses)."""
        return sum(node.checkins_lost for node in self._nodes)

    @property
    def pending_checkins(self) -> int:
        """Check-ins currently buffered across all gateways."""
        return sum(node.aggregator.pending for node in self._nodes)

    def connect(
        self, device_id: int, rng: Optional[np.random.Generator] = None
    ) -> GatewayLink:
        if rng is None:
            rng = np.random.default_rng()
        node = self._nodes[int(self._assignment[device_id])]
        return GatewayLink(node, rng, device_id)

    def drain_stranded(self) -> bool:
        """Flush every gateway's leftovers; True if any progress was made.

        No short-circuiting: each node gets its drain step each round, so
        the simulator's ``run`` loop converges in a bounded number of
        passes (flush → deliver → possibly re-buffer never cycles, as
        delivered batches leave the tier for good).
        """
        progressed = False
        for node in self._nodes:
            if node.drain():
                progressed = True
        return progressed
