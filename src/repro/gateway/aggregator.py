"""Check-in pooling: many device uploads, one upstream batch.

A :class:`GatewayAggregator` is the engine of the edge gateway tier
(ROADMAP: "the server sees thousands of gateways, not millions of
sockets").  Devices hand it their sanitized
:class:`~repro.core.protocol.CheckinMessage`\\ s one at a time; the
aggregator buffers them and flushes the whole buffer **upstream** as a
single batched ``handle_checkins`` call when either trigger fires:

* **size** — the buffer reached ``flush_size`` messages;
* **deadline** — ``flush_deadline`` time units elapsed since the first
  buffered message (so a trickle of uploads is never stranded);

whichever comes first.  ``capacity`` bounds the buffer: an active
aggregator force-flushes when the buffer hits it (back-pressure), so no
upstream batch ever exceeds ``capacity`` messages.

The aggregator is deliberately transport-agnostic: ``upstream`` is any
callable taking a list of messages and returning the per-message acks
(or ``None`` when delivery is asynchronous), and ``clock`` is any
monotonic time source.  The same class therefore serves two worlds:

* **simulation** — :mod:`repro.gateway.transport` embeds one per
  simulated gateway with ``clock=queue.now`` and an ``upstream`` that
  schedules the batch's delivery on the event queue;
* **HTTP** — :class:`repro.gateway.edge.EdgeGateway` embeds one with
  the wall clock and an ``upstream`` that POSTs the batch to a live
  ``/v1/checkins`` endpoint.

``suspend``/``resume`` model a gateway whose upstream link is down (a
stall window): while suspended nothing flushes — messages keep
accumulating — and ``resume`` flushes immediately if the backlog
already satisfies a trigger.  Callers that must bound a suspended
buffer (the simulator's per-gateway ``capacity`` drop semantics) check
:attr:`pending` against :attr:`capacity` before adding.

If ``upstream`` raises, the in-flight batch is put back at the front of
the buffer before the exception propagates: messages stay in gateway
custody and the next flush retries them, preserving per-device order —
the batched analogue of Remark 1's keep-and-retry.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.protocol import CheckinAck, CheckinMessage
from repro.obs.metrics import NULL_REGISTRY, default_size_buckets
from repro.utils.exceptions import ConfigurationError

#: ``upstream`` contract: list of messages in, per-message acks out
#: (``None`` for asynchronous delivery — acks are not yet known).
Upstream = Callable[[List[CheckinMessage]], Optional[Sequence[Optional[CheckinAck]]]]


@dataclass
class AggregatorStats:
    """Lifetime counters of one aggregator."""

    checkins_added: int = 0
    flushes: int = 0
    messages_flushed: int = 0
    largest_flush: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    capacity_flushes: int = 0
    #: flushes whose upstream raised — the batch went back into gateway
    #: custody (re-queued at the front) for the next flush to retry.
    custody_requeues: int = 0

    @property
    def mean_flush_size(self) -> float:
        """Average messages per upstream batch (0 when none flushed)."""
        return self.messages_flushed / self.flushes if self.flushes else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict view of the counters (:mod:`repro.obs` idiom)."""
        out: Dict[str, float] = asdict(self)
        out["mean_flush_size"] = self.mean_flush_size
        return out


class GatewayAggregator:
    """Pool device check-ins and flush them upstream in batches.

    Parameters
    ----------
    upstream:
        Receives each flushed batch; returns the per-message acks, or
        ``None`` when delivery is asynchronous.
    flush_size:
        Flush as soon as this many messages are buffered.
    flush_deadline:
        Flush at most this long (in ``clock`` units) after the first
        buffered message; ``None`` disables the deadline trigger.  The
        deadline is polled — event-driven hosts arm a timer off
        :attr:`deadline_at`, wall-clock hosts call :meth:`flush_if_due`.
    capacity:
        Hard buffer bound; an active aggregator force-flushes on
        reaching it, so upstream batches never exceed it.
    clock:
        Zero-arg monotonic time source (defaults to
        :func:`time.monotonic`; the simulator passes the event queue's
        clock).

    Examples
    --------
    >>> batches = []
    >>> agg = GatewayAggregator(lambda ms: batches.append(len(ms)), flush_size=2)
    >>> from repro.core.protocol import CheckinMessage
    >>> import numpy as np
    >>> msg = CheckinMessage(0, "t", np.zeros(2), 1, 0.0, np.zeros(2), 0)
    >>> agg.add(msg) is None       # buffered, below threshold
    True
    >>> _ = agg.add(msg)           # second message triggers the flush
    >>> batches
    [2]
    """

    def __init__(
        self,
        upstream: Upstream,
        *,
        flush_size: int = 32,
        flush_deadline: Optional[float] = None,
        capacity: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics=None,
    ):
        if flush_size < 1:
            raise ConfigurationError(f"flush_size must be >= 1, got {flush_size}")
        if flush_deadline is not None and flush_deadline < 0:
            raise ConfigurationError(
                f"flush_deadline must be non-negative, got {flush_deadline}"
            )
        if capacity is not None and capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._upstream = upstream
        self._flush_size = int(flush_size)
        self._flush_deadline = (
            None if flush_deadline is None else float(flush_deadline)
        )
        self._capacity = None if capacity is None else int(capacity)
        self._clock = clock if clock is not None else time.monotonic
        self._buffer: List[CheckinMessage] = []
        self._on_acks: List[Optional[Callable[[Optional[CheckinAck]], None]]] = []
        self._deadline_at: Optional[float] = None
        self._suspended = False
        self.stats = AggregatorStats()
        # Per-flush instrumentation only — add() stays uninstrumented
        # because the simulator drives it per check-in.
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_flushes = registry.counter("gateway_flushes_total")
        self._m_flush_size = registry.histogram(
            "gateway_flush_size", buckets=default_size_buckets()
        )
        self._m_custody_requeues = registry.counter(
            "gateway_custody_requeues_total"
        )

    # -- state views ---------------------------------------------------- #

    @property
    def pending(self) -> int:
        """Messages currently buffered."""
        return len(self._buffer)

    @property
    def flush_size(self) -> int:
        return self._flush_size

    @property
    def flush_deadline(self) -> Optional[float]:
        return self._flush_deadline

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def deadline_at(self) -> Optional[float]:
        """Clock time by which the current buffer must flush (or ``None``)."""
        return self._deadline_at

    @property
    def suspended(self) -> bool:
        """True while the upstream link is stalled (no flushing)."""
        return self._suspended

    def stats_snapshot(self) -> Dict[str, float]:
        """Uniform plain-dict counter snapshot (:mod:`repro.obs` idiom)."""
        return self.stats.snapshot()

    # -- pooling -------------------------------------------------------- #

    def add(
        self,
        message: CheckinMessage,
        on_ack: Optional[Callable[[Optional[CheckinAck]], None]] = None,
    ) -> Optional[List[Optional[CheckinAck]]]:
        """Buffer one check-in; flush if a trigger fires.

        Returns the flushed batch's acks when this add triggered a
        flush, ``None`` while the message merely joined the buffer (or
        when ``upstream`` delivers asynchronously).  ``on_ack``, if
        given, is called with this message's ack when its batch's acks
        become known.
        """
        self._buffer.append(message)
        self._on_acks.append(on_ack)
        self.stats.checkins_added += 1
        if self._deadline_at is None and self._flush_deadline is not None:
            self._deadline_at = self._clock() + self._flush_deadline
        if self._suspended:
            return None
        if self._capacity is not None and len(self._buffer) >= self._capacity:
            self.stats.capacity_flushes += 1
            return self.flush()
        if len(self._buffer) >= self._flush_size:
            self.stats.size_flushes += 1
            return self.flush()
        if self._deadline_at is not None and self._clock() >= self._deadline_at:
            self.stats.deadline_flushes += 1
            return self.flush()
        return None

    def flush(self) -> Optional[List[Optional[CheckinAck]]]:
        """Flush the whole buffer upstream as one batch.

        Returns the acks (``None`` for asynchronous upstreams, ``[]``
        when the buffer was empty).  On an upstream exception the batch
        is restored to the front of the buffer, then the exception
        propagates — nothing is lost, the next flush retries.
        """
        if not self._buffer:
            return []
        batch = self._buffer
        callbacks = self._on_acks
        self._buffer = []
        self._on_acks = []
        self._deadline_at = None
        try:
            acks = self._upstream(batch)
        except Exception:
            # Keep custody: re-queue ahead of anything added meanwhile.
            self._buffer = batch + self._buffer
            self._on_acks = callbacks + self._on_acks
            if self._buffer and self._flush_deadline is not None:
                self._deadline_at = self._clock() + self._flush_deadline
            self.stats.custody_requeues += 1
            self._m_custody_requeues.inc()
            raise
        self.stats.flushes += 1
        self.stats.messages_flushed += len(batch)
        self.stats.largest_flush = max(self.stats.largest_flush, len(batch))
        self._m_flushes.inc()
        self._m_flush_size.observe(len(batch))
        if acks is None:
            return None
        acks = list(acks)
        for callback, ack in zip(callbacks, acks):
            if callback is not None:
                callback(ack)
        return acks

    def flush_if_due(self) -> Optional[List[Optional[CheckinAck]]]:
        """Flush iff the deadline has passed (wall-clock hosts poll this)."""
        if (
            not self._suspended
            and self._deadline_at is not None
            and self._clock() >= self._deadline_at
        ):
            self.stats.deadline_flushes += 1
            return self.flush()
        return None

    # -- stall handling ------------------------------------------------- #

    def suspend(self) -> None:
        """Stop flushing (the upstream link is down); adds keep buffering."""
        self._suspended = True

    def resume(self) -> Optional[List[Optional[CheckinAck]]]:
        """Upstream link restored: flush now if the backlog warrants it."""
        self._suspended = False
        n = len(self._buffer)
        if n == 0:
            return None
        if self._capacity is not None and n >= self._capacity:
            self.stats.capacity_flushes += 1
            return self.flush()
        if n >= self._flush_size:
            self.stats.size_flushes += 1
            return self.flush()
        if self._deadline_at is not None and self._clock() >= self._deadline_at:
            self.stats.deadline_flushes += 1
            return self.flush()
        return None
