"""Two-tier topology: which gateway each device talks through, and how.

The paper's deployment sketch has devices reaching the server through
intermediaries; this module makes that tier explicit.  A
:class:`TwoTierTopology` declares G gateways, assigns each of the M
devices to exactly one (a static map, or a named policy from
:data:`repro.registry.GATEWAY_ASSIGNMENTS` — ``round_robin``, ``block``,
``hash``), and gives every gateway a :class:`GatewayProfile` describing
its two link tiers *separately*:

* **device↔gateway** — ``device_delays`` / ``device_outage``: the short
  edge hop each device message traverses first;
* **gateway↔server** — ``server_delays`` / ``server_outage``: the
  backhaul hop batches traverse, plus ``stall_windows`` during which the
  backhaul is down and the gateway's whole crowd segment stalls at once
  (messages accumulate at the gateway instead of being lost).

``flush_size`` / ``flush_deadline`` / ``capacity`` parameterize the
gateway's :class:`~repro.gateway.aggregator.GatewayAggregator`.  The
whole topology serializes to plain JSON (:meth:`TwoTierTopology.to_dict`
/ :meth:`~TwoTierTopology.from_dict`), so experiment arms can declare
gateway arms as data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.network.latency import LinkDelays, UniformDelay
from repro.network.outage import BernoulliOutage, NoOutage, OutageModel
from repro.registry import GATEWAY_ASSIGNMENTS
from repro.utils.exceptions import ConfigurationError


def _clean_windows(
    windows: Sequence[Tuple[float, float]]
) -> Tuple[Tuple[float, float], ...]:
    cleaned = []
    for start, end in windows:
        start, end = float(start), float(end)
        if start < 0:
            raise ConfigurationError(f"stall window start must be >= 0, got {start}")
        if end <= start:
            raise ConfigurationError(
                f"stall window end must exceed start, got [{start}, {end})"
            )
        cleaned.append((start, end))
    cleaned.sort()
    for (_, prev_end), (next_start, _) in zip(cleaned, cleaned[1:]):
        if next_start < prev_end:
            raise ConfigurationError("stall windows must not overlap")
    return tuple(cleaned)


@dataclass(frozen=True)
class GatewayProfile:
    """One gateway's aggregation policy and per-hop link properties.

    Attributes
    ----------
    flush_size:
        Buffered check-ins that trigger an upstream flush.
    flush_deadline:
        Max time (time units) a buffered check-in waits before a flush
        is forced; ``None`` = size-only flushing.
    capacity:
        Max check-ins the gateway can hold.  While the backhaul is
        stalled, arrivals beyond capacity are **dropped** (edge buffer
        overflow); an unstalled gateway instead force-flushes at
        capacity, so upstream batches are bounded by it.
    device_delays / device_outage:
        The device↔gateway hop of each leg (request, check-out,
        check-in).
    server_delays / server_outage:
        The gateway↔server hop.  A check-in batch is one message on
        this hop: if the outage model drops it, the whole batch is lost.
    stall_windows:
        Half-open ``[start, end)`` intervals during which the backhaul
        is down: requests/check-outs in transit are held until the
        window ends, and the aggregator suspends — the gateway's entire
        crowd segment stalls at once, then bursts.
    """

    flush_size: int = 32
    flush_deadline: Optional[float] = None
    capacity: Optional[int] = None
    device_delays: LinkDelays = field(default_factory=LinkDelays.zero)
    device_outage: OutageModel = field(default_factory=NoOutage)
    server_delays: LinkDelays = field(default_factory=LinkDelays.zero)
    server_outage: OutageModel = field(default_factory=NoOutage)
    stall_windows: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self):
        if self.flush_size < 1:
            raise ConfigurationError(
                f"flush_size must be >= 1, got {self.flush_size}"
            )
        if self.flush_deadline is not None and self.flush_deadline < 0:
            raise ConfigurationError(
                f"flush_deadline must be non-negative, got {self.flush_deadline}"
            )
        if self.capacity is not None and self.capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {self.capacity}"
            )
        object.__setattr__(
            self, "stall_windows", _clean_windows(self.stall_windows)
        )

    @classmethod
    def pass_through(cls) -> "GatewayProfile":
        """A fully transparent gateway: every check-in flushes alone,
        both hops are instant and reliable — the configuration under
        which a gateway run is bit-identical to no gateway at all."""
        return cls(flush_size=1)

    @property
    def is_transparent(self) -> bool:
        """True when this gateway cannot change observable behaviour:
        pass-through flushing, zero delays, reliable hops, no stalls."""
        return (
            self.flush_size == 1
            and self.capacity is None
            and self.device_delays.is_zero
            and self.server_delays.is_zero
            and isinstance(self.device_outage, NoOutage)
            and isinstance(self.server_outage, NoOutage)
            and not self.stall_windows
        )

    # -- stall geometry ------------------------------------------------- #

    def in_stall(self, time: float) -> bool:
        """Whether the backhaul is down at ``time``."""
        return any(start <= time < end for start, end in self.stall_windows)

    def stall_release(self, time: float) -> float:
        """End of the stall window covering ``time`` (``time`` if none)."""
        for start, end in self.stall_windows:
            if start <= time < end:
                return end
        return time


@dataclass(frozen=True)
class TwoTierTopology:
    """G gateways plus the device→gateway assignment.

    Attributes
    ----------
    num_gateways:
        G.
    assignment:
        Either a named policy from
        :data:`repro.registry.GATEWAY_ASSIGNMENTS` (``"round_robin"``,
        ``"block"``, ``"hash"``) or an explicit static map — a sequence
        of gateway indices, one per device.
    assignment_kwargs:
        Extra kwargs for a named policy.
    profile:
        Default :class:`GatewayProfile` for every gateway.
    profiles:
        Per-gateway overrides, keyed by gateway index.

    Examples
    --------
    >>> topo = TwoTierTopology(num_gateways=3)
    >>> topo.assign(7).tolist()
    [0, 1, 2, 0, 1, 2, 0]
    >>> TwoTierTopology(num_gateways=2, assignment=(0, 0, 1)).assign(3).tolist()
    [0, 0, 1]
    """

    num_gateways: int
    assignment: Union[str, Tuple[int, ...]] = "round_robin"
    assignment_kwargs: Mapping[str, Any] = field(default_factory=dict)
    profile: GatewayProfile = field(default_factory=GatewayProfile)
    profiles: Mapping[int, GatewayProfile] = field(default_factory=dict)

    def __post_init__(self):
        if self.num_gateways < 1:
            raise ConfigurationError(
                f"num_gateways must be >= 1, got {self.num_gateways}"
            )
        if not isinstance(self.assignment, str):
            object.__setattr__(
                self, "assignment", tuple(int(g) for g in self.assignment)
            )
        object.__setattr__(self, "assignment_kwargs", dict(self.assignment_kwargs))
        profiles = {int(k): v for k, v in dict(self.profiles).items()}
        for index in profiles:
            if not (0 <= index < self.num_gateways):
                raise ConfigurationError(
                    f"profile override for gateway {index} out of range "
                    f"[0, {self.num_gateways})"
                )
        object.__setattr__(self, "profiles", profiles)

    def profile_for(self, gateway_index: int) -> GatewayProfile:
        """The profile governing one gateway."""
        return self.profiles.get(gateway_index, self.profile)

    @property
    def is_transparent(self) -> bool:
        """True when no gateway can change observable behaviour."""
        return self.profile.is_transparent and all(
            p.is_transparent for p in self.profiles.values()
        )

    def assign(self, num_devices: int) -> np.ndarray:
        """Resolve the device→gateway map for ``num_devices`` devices."""
        if isinstance(self.assignment, str):
            mapping = GATEWAY_ASSIGNMENTS.create(
                self.assignment,
                num_devices=num_devices,
                num_gateways=self.num_gateways,
                **self.assignment_kwargs,
            )
        else:
            mapping = self.assignment
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (num_devices,):
            raise ConfigurationError(
                f"gateway assignment covers {mapping.shape[0] if mapping.ndim == 1 else '?'} "
                f"devices, expected {num_devices}"
            )
        if mapping.size and (mapping.min() < 0 or mapping.max() >= self.num_gateways):
            raise ConfigurationError(
                f"gateway assignment references gateways outside "
                f"[0, {self.num_gateways})"
            )
        return mapping

    # -- JSON form (experiment specs) ----------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form; inverse of :meth:`from_dict`.

        Only topologies built from the JSON-expressible subset (uniform
        delays, Bernoulli outages) round-trip; richer models raise.
        """
        out: Dict[str, Any] = {"num_gateways": self.num_gateways}
        if isinstance(self.assignment, str):
            if self.assignment != "round_robin":
                out["assignment"] = self.assignment
            if self.assignment_kwargs:
                out["assignment_kwargs"] = dict(self.assignment_kwargs)
        else:
            out["assignment"] = list(self.assignment)
        out.update(_profile_to_dict(self.profile))
        if self.profiles:
            raise ConfigurationError(
                "per-gateway profile overrides have no JSON spec form"
            )
        return out

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], delay_scale: float = 1.0
    ) -> "TwoTierTopology":
        """Build a topology from its JSON form.

        ``delay_scale`` multiplies every delay/deadline/window value, so
        specs can quote them in Δ multiples (the experiment layer passes
        ``delay_in_sample_units(1.0)``) while the profile stores time
        units.
        """
        known = {
            "num_gateways", "assignment", "assignment_kwargs", "flush_size",
            "flush_deadline", "capacity", "device_delay", "device_drop",
            "server_delay", "server_drop", "stall_windows",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown gateway spec fields: {sorted(unknown)}"
            )
        scale = float(delay_scale)

        def delays(key: str) -> LinkDelays:
            tau = float(data.get(key, 0.0)) * scale
            return LinkDelays.uniform(tau) if tau > 0 else LinkDelays.zero()

        def outage(key: str) -> OutageModel:
            p = float(data.get(key, 0.0))
            return BernoulliOutage(p) if p > 0 else NoOutage()

        deadline = data.get("flush_deadline")
        profile = GatewayProfile(
            flush_size=int(data.get("flush_size", 32)),
            flush_deadline=None if deadline is None else float(deadline) * scale,
            capacity=(
                None if data.get("capacity") is None else int(data["capacity"])
            ),
            device_delays=delays("device_delay"),
            device_outage=outage("device_drop"),
            server_delays=delays("server_delay"),
            server_outage=outage("server_drop"),
            stall_windows=tuple(
                (float(s) * scale, float(e) * scale)
                for s, e in data.get("stall_windows", ())
            ),
        )
        assignment = data.get("assignment", "round_robin")
        if not isinstance(assignment, str):
            assignment = tuple(int(g) for g in assignment)
        return cls(
            num_gateways=int(data["num_gateways"]),
            assignment=assignment,
            assignment_kwargs=data.get("assignment_kwargs", {}),
            profile=profile,
        )


def _profile_to_dict(profile: GatewayProfile) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    if profile.flush_size != 32:
        out["flush_size"] = profile.flush_size
    if profile.flush_deadline is not None:
        out["flush_deadline"] = profile.flush_deadline
    if profile.capacity is not None:
        out["capacity"] = profile.capacity
    for key, delays in (
        ("device_delay", profile.device_delays),
        ("server_delay", profile.server_delays),
    ):
        if not delays.is_zero:
            legs = (delays.request, delays.checkout, delays.checkin)
            if not all(isinstance(leg, UniformDelay) for leg in legs):
                raise ConfigurationError(
                    f"{key}: only uniform delays have a JSON spec form"
                )
            maxima = {leg.maximum for leg in legs}
            if len(maxima) != 1:
                raise ConfigurationError(
                    f"{key}: per-leg delay mixes have no JSON spec form"
                )
            out[key] = maxima.pop()
    for key, model in (
        ("device_drop", profile.device_outage),
        ("server_drop", profile.server_outage),
    ):
        if isinstance(model, NoOutage):
            continue
        if not isinstance(model, BernoulliOutage):
            raise ConfigurationError(
                f"{key}: only Bernoulli outages have a JSON spec form"
            )
        out[key] = model.drop_probability
    if profile.stall_windows:
        out["stall_windows"] = [list(w) for w in profile.stall_windows]
    return out
