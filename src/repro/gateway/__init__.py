"""Edge gateway tier: batch-aggregating intermediaries between devices
and the server.

The paper's crowd reaches the server through edge infrastructure; this
package makes that tier explicit so the server sees thousands of
gateways instead of millions of device sockets:

* :class:`~repro.gateway.aggregator.GatewayAggregator` — the
  transport-agnostic pooling engine: buffer device check-ins, flush
  upstream as one batch on size threshold or deadline, whichever fires
  first.
* :class:`~repro.gateway.topology.TwoTierTopology` /
  :class:`~repro.gateway.topology.GatewayProfile` — configuration:
  device→gateway assignment (static map or a named policy from
  :data:`repro.registry.GATEWAY_ASSIGNMENTS`) plus per-gateway link
  properties, modelled separately per hop.
* :class:`~repro.gateway.transport.GatewayTransport` — the simulator
  plug-in on the PR 4 transport seam: two-hop event-driven legs and
  event-queue-clocked flushes.
* :class:`~repro.gateway.edge.EdgeGateway` — the live-service
  counterpart: pools :class:`~repro.serve.remote.RemoteDevice` uploads
  into single ``POST /v1/checkins`` requests against a running
  ``repro-serve``.
"""

from repro.gateway.aggregator import AggregatorStats, GatewayAggregator
from repro.gateway.topology import GatewayProfile, TwoTierTopology

__all__ = [
    "AggregatorStats",
    "GatewayAggregator",
    "GatewayProfile",
    "TwoTierTopology",
]
