"""Live-service edge gateway: batch device uploads over one HTTP pipe.

An :class:`EdgeGateway` is the deployment-side counterpart of the
simulator's gateway node: it fronts a crowd segment of
:class:`~repro.serve.remote.RemoteDevice`\\ s against a running
``repro-serve`` and collapses their per-round traffic into aggregate
requests:

* **uplink** — device check-ins pool in a
  :class:`~repro.gateway.aggregator.GatewayAggregator` (wall-clock
  deadline) and leave as single batched ``POST /v1/checkins`` requests;
* **downlink** — with ``share_checkouts=True`` (default) the gateway
  checks out *once* per flush epoch under its own enrollment and hands
  every device the same cached parameters until the next flush advances
  them, so a segment of D devices costs ``2`` HTTP requests per epoch
  instead of ``2·D``.

Sharing check-outs is exactly the staleness model of the paper: every
device in the epoch computes against the same w(t₀) and the server
applies the batch later.  A **sequential** pass-through gateway
(``flush_size=1``) degenerates to fetch → compute → flush → invalidate
per round, which is bit-identical to per-device HTTP traffic (the
benchmark's parity arm pins this against a local
:class:`~repro.network.transport.DirectTransport` run).

``share_checkouts=False`` forwards each device's own checkout request
upstream unchanged — full per-device downlink traffic, batched uplink
only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.protocol import CheckinAck, CheckinMessage, CheckoutRequest, CheckoutResponse
from repro.gateway.aggregator import GatewayAggregator
from repro.serve import wire
from repro.serve.client import RemoteServiceError, ServiceClient

#: Default enrollment id for a gateway's shared check-outs — far outside
#: any realistic device-id range, so it never collides with a crowd
#: device enrolled on the same service.
GATEWAY_DEVICE_ID = 2**31 - 1


class EdgeGateway:
    """Pool a crowd segment's rounds into aggregate service requests.

    Parameters
    ----------
    client_or_url:
        The target service — a :class:`~repro.serve.client.ServiceClient`
        or a base URL string.
    flush_size / flush_deadline / capacity:
        Aggregator knobs (see
        :class:`~repro.gateway.aggregator.GatewayAggregator`); the
        deadline is wall-clock seconds here — hosts without their own
        tick should call :meth:`flush_if_due` periodically.
    share_checkouts:
        Serve every device's checkout from one cached upstream checkout
        per flush epoch (made under the gateway's own enrollment).
        ``False`` forwards each device's request upstream unchanged.
    device_id:
        The gateway's own enrollment id for shared check-outs (default
        :data:`GATEWAY_DEVICE_ID`; pick distinct ids for multiple
        gateways on one service).
    shard_router:
        Optional :class:`~repro.shard.routing.ShardRouter` matching the
        upstream's sharded tier.  A mixed flush is pre-split into one
        uplink batch per owning shard, so every batch reaching the
        :class:`~repro.shard.frontend.ShardFrontEnd` is single-shard and
        takes its verbatim-passthrough fast path instead of being split
        and re-encoded there.  ``None`` (default) posts flushes whole.

    Single-threaded per instance, like :class:`RemoteDevice`: drive one
    gateway (and its devices) from one thread, or add external locking.
    """

    def __init__(
        self,
        client_or_url,
        *,
        flush_size: int = 32,
        flush_deadline: Optional[float] = None,
        capacity: Optional[int] = None,
        share_checkouts: bool = True,
        device_id: int = GATEWAY_DEVICE_ID,
        shard_router=None,
        metrics=None,
    ):
        if isinstance(client_or_url, ServiceClient):
            self._client = client_or_url
        else:
            self._client = ServiceClient(str(client_or_url))
        self._share = bool(share_checkouts)
        self._device_id = int(device_id)
        self._router = shard_router
        self._token: Optional[str] = None
        self._cached: Optional[CheckoutResponse] = None
        self._stopped = False
        self._last_result: Optional[wire.CheckinBatchResult] = None
        #: HTTP requests this gateway has made upstream (checkouts + batches).
        self.requests_made = 0
        #: Flushes that were pre-split into per-shard uplink batches.
        self.shard_splits = 0
        self.aggregator = GatewayAggregator(
            self._post_batch,
            flush_size=flush_size,
            flush_deadline=flush_deadline,
            capacity=capacity,
            metrics=metrics,
        )

    # -- state views ----------------------------------------------------- #

    @property
    def client(self) -> ServiceClient:
        return self._client

    @property
    def stopped(self) -> bool:
        """True once the server reported the task has ended."""
        return self._stopped

    @property
    def pending(self) -> int:
        """Check-ins buffered, not yet flushed upstream."""
        return self.aggregator.pending

    @property
    def stats(self):
        """The aggregator's lifetime counters."""
        return self.aggregator.stats

    @property
    def last_result(self) -> Optional[wire.CheckinBatchResult]:
        """The most recent batch result (server iteration + stop state)."""
        return self._last_result

    def stats_snapshot(self) -> Dict[str, Any]:
        """Uniform plain-dict counter snapshot (:mod:`repro.obs` idiom):
        the gateway's own counters merged with its aggregator's."""
        out = self.aggregator.stats_snapshot()
        out["requests_made"] = self.requests_made
        out["shard_splits"] = self.shard_splits
        out["pending"] = self.aggregator.pending
        return out

    # -- downlink: shared check-outs -------------------------------------- #

    def checkout(self, request: CheckoutRequest) -> CheckoutResponse:
        """Serve one device's checkout, from cache when sharing.

        The returned response keeps the device's own ``device_id`` and
        ``issued_time``; with sharing enabled the parameter vector is
        the gateway's cached epoch checkout (devices treat checkout
        parameters as read-only, which :class:`~repro.core.device.Device`
        does).  Raises the same typed
        :class:`~repro.serve.client.RemoteServiceError` (409 ``stopped``)
        a direct client call would, so device-side Remark 1 handling is
        unchanged.
        """
        if self._stopped:
            raise RemoteServiceError(
                wire.ErrorCode.STOPPED,
                "task has stopped (observed by this gateway)",
                http_status=409,
            )
        if not self._share:
            return self._forward_checkout(request)
        if self._cached is None:
            if self._token is None:
                self._token = self._client.join(self._device_id)
                self.requests_made += 1
            upstream = CheckoutRequest(
                device_id=self._device_id,
                token=self._token,
                request_time=request.request_time,
            )
            self._cached = self._forward_checkout(upstream)
        base = self._cached
        return CheckoutResponse(
            device_id=request.device_id,
            parameters=base.parameters,
            server_iteration=base.server_iteration,
            issued_time=request.request_time,
        )

    def _forward_checkout(self, request: CheckoutRequest) -> CheckoutResponse:
        try:
            response = self._client.checkout(request)
        except RemoteServiceError as error:
            if error.code == wire.ErrorCode.STOPPED:
                self._stopped = True
            raise
        self.requests_made += 1
        return response

    # -- uplink: batched check-ins ---------------------------------------- #

    def add(self, message: CheckinMessage, on_ack=None):
        """Pool one check-in; flush upstream if a trigger fires.

        Same contract as :meth:`GatewayAggregator.add
        <repro.gateway.aggregator.GatewayAggregator.add>`.
        """
        return self.aggregator.add(message, on_ack=on_ack)

    def flush(self) -> Optional[List[Optional[CheckinAck]]]:
        """Force-flush the buffer upstream now."""
        return self.aggregator.flush()

    def flush_if_due(self) -> Optional[List[Optional[CheckinAck]]]:
        """Flush iff the wall-clock deadline has passed."""
        return self.aggregator.flush_if_due()

    def _post_batch(self, messages: List[CheckinMessage]):
        """Aggregator upstream: ``POST /v1/checkins`` for the batch.

        With a ``shard_router``, a mixed flush goes up as one sub-batch
        per owning shard (acks merged back into flush order); a
        single-shard flush — and every flush without a router — is one
        request.  A 409 (task stopped) rejects the affected batch as
        all-``None`` acks — mirroring :meth:`ServerCore.handle_checkins
        <repro.core.server_core.ServerCore.handle_checkins>` refusing
        every message after the stop.  Transient failures propagate; the
        aggregator keeps custody of the flush and the next flush retries
        it (the batched Remark 1; replayed sub-batches that already
        landed are deduped by the server's ledger).
        """
        if self._router is None:
            return self._post_single(messages)
        groups = self._router.split(
            messages, device_id_of=lambda message: message.device_id
        )
        if len(groups) == 1:
            return self._post_single(messages)
        self.shard_splits += 1
        acks: List[Optional[CheckinAck]] = [None] * len(messages)
        iteration_total = 0
        stopped_flags: List[bool] = []
        stop_reason: Optional[str] = None
        for shard in sorted(groups):
            entries = groups[shard]
            try:
                result = self._client.checkins([m for _, m in entries])
            except RemoteServiceError as error:
                if error.code == wire.ErrorCode.STOPPED:
                    # This shard's task ended; its acks stay None.
                    self.requests_made += 1
                    stopped_flags.append(True)
                    continue
                raise
            self.requests_made += 1
            for (index, _), ack in zip(entries, result.acks):
                acks[index] = ack
            iteration_total += result.server_iteration
            stopped_flags.append(result.stopped)
            if result.stopped and stop_reason is None:
                stop_reason = result.stop_reason
        self._cached = None
        all_stopped = bool(stopped_flags) and all(stopped_flags)
        self._last_result = wire.CheckinBatchResult(
            tuple(acks),
            iteration_total,
            all_stopped,
            stop_reason if all_stopped and stop_reason is not None else "running",
        )
        if all_stopped:
            self._stopped = True
        return acks

    def _post_single(self, messages: List[CheckinMessage]):
        try:
            result = self._client.checkins(messages)
        except RemoteServiceError as error:
            if error.code == wire.ErrorCode.STOPPED:
                self._stopped = True
                self._cached = None
                self.requests_made += 1
                return [None] * len(messages)
            raise
        self.requests_made += 1
        # The server just applied updates: the cached epoch checkout is
        # stale, so the next device checkout starts a new epoch.
        self._cached = None
        self._last_result = result
        if result.stopped:
            self._stopped = True
        return list(result.acks)
