"""Scalability models of Section IV-B: computation, communication, latency.

These closed-form calculators quantify the three comparisons the paper
makes between the centralized, crowd, and decentralized approaches:

* **Computation load** (IV-B1): floating-point work per sample on the
  device and on the server.
* **Communication load** (IV-B2): float volume per sample over the
  network — the centralized approach ships N features, Crowd-ML ships
  N/b gradients up and N/b parameter vectors down.
* **Communication latency** (IV-B3): the expected number of interleaved
  server updates ("staleness") per check-out/check-in round trip,
  ≈ (τ_co + τ_ci)·M·F_s / b.

The simulator measures the same quantities empirically
(:class:`repro.simulation.trace.RunTrace`), so model and measurement can
be compared directly (see ``benchmarks/test_ablation_staleness.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.utils.validation import check_non_negative, check_positive, check_positive_int


class Approach(Enum):
    """The three system architectures of Section IV."""

    CENTRALIZED = "centralized"
    CROWD = "crowd"
    DECENTRALIZED = "decentralized"


@dataclass(frozen=True)
class SystemShape:
    """Dimensions of one deployment.

    Attributes
    ----------
    num_devices:
        M.
    num_features:
        D (feature dimension).
    num_classes:
        C (parameter vector is C·D floats for the linear models).
    batch_size:
        b (Crowd-ML minibatch; 1 for the other approaches).
    sampling_rate:
        F_s — samples per second per device.
    """

    num_devices: int
    num_features: int
    num_classes: int
    batch_size: int = 1
    sampling_rate: float = 1.0

    def __post_init__(self):
        check_positive_int(self.num_devices, "num_devices")
        check_positive_int(self.num_features, "num_features")
        check_positive_int(self.num_classes, "num_classes")
        check_positive_int(self.batch_size, "batch_size")
        check_positive(self.sampling_rate, "sampling_rate")

    @property
    def parameter_floats(self) -> int:
        """Size of w for the linear model family."""
        return self.num_features * self.num_classes


def device_flops_per_sample(shape: SystemShape, approach: Approach) -> float:
    """Approximate on-device floating-point work per collected sample.

    Centralized: one Laplace draw per feature coordinate (input
    perturbation).  Crowd: one gradient (≈ 2·C·D multiply-adds for scores
    + C·D for the outer product) plus the amortized noise draw.
    Decentralized: a gradient plus a local SGD update.
    """
    scores = 2.0 * shape.parameter_floats
    outer = shape.parameter_floats
    gradient = scores + outer
    if approach is Approach.CENTRALIZED:
        return 2.0 * shape.num_features  # noise draw + add, per coordinate
    if approach is Approach.CROWD:
        noise_amortized = 2.0 * shape.parameter_floats / shape.batch_size
        return gradient + noise_amortized
    # Decentralized: gradient + parameter update.
    return gradient + 2.0 * shape.parameter_floats


def server_flops_per_sample(shape: SystemShape, approach: Approach) -> float:
    """Approximate server work per collected sample.

    Centralized: the server computes the gradient itself.  Crowd: one SGD
    update (2·C·D) amortized over b samples.  Decentralized: zero.
    """
    gradient = 3.0 * shape.parameter_floats
    if approach is Approach.CENTRALIZED:
        return gradient + 2.0 * shape.parameter_floats
    if approach is Approach.CROWD:
        return 2.0 * shape.parameter_floats / shape.batch_size
    return 0.0


def uplink_floats_per_sample(shape: SystemShape, approach: Approach) -> float:
    """Float volume device → server per collected sample (IV-B2)."""
    if approach is Approach.CENTRALIZED:
        return float(shape.num_features + 1)  # features + label
    if approach is Approach.CROWD:
        payload = shape.parameter_floats + shape.num_classes + 2
        return payload / shape.batch_size
    return 0.0


def downlink_floats_per_sample(shape: SystemShape, approach: Approach) -> float:
    """Float volume server → device per collected sample."""
    if approach is Approach.CROWD:
        return shape.parameter_floats / shape.batch_size
    return 0.0


def total_network_floats_per_sample(shape: SystemShape, approach: Approach) -> float:
    """Both directions combined — the paper's b/2-reduction claim lives
    here: crowd ≈ 2·C·D/b vs centralized ≈ D."""
    return uplink_floats_per_sample(shape, approach) + downlink_floats_per_sample(
        shape, approach
    )


def expected_staleness(
    shape: SystemShape, checkout_delay: float, checkin_delay: float
) -> float:
    """Expected interleaved updates per round trip (Section IV-B3).

        staleness ≈ (τ_co + τ_ci) · M · F_s / b

    ``checkout_delay`` and ``checkin_delay`` are the *mean* delays of the
    two legs following the check-out request.
    """
    check_non_negative(checkout_delay, "checkout_delay")
    check_non_negative(checkin_delay, "checkin_delay")
    crowd_rate = shape.num_devices * shape.sampling_rate
    return (checkout_delay + checkin_delay) * crowd_rate / shape.batch_size


def staleness_for_uniform_delay(shape: SystemShape, tau: float) -> float:
    """Staleness under the paper's uniform-[0, τ] legs (mean τ/2 each)."""
    check_non_negative(tau, "tau")
    return expected_staleness(shape, tau / 2.0, tau / 2.0)
