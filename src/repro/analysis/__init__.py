"""Analytic models of Section IV: privacy-performance and scalability."""

from repro.analysis.energy import (
    EnergyProfile,
    battery_lifetime_hours,
    compute_energy_per_sample,
    radio_energy_per_sample,
    total_energy_per_sample,
)
from repro.analysis.convergence import (
    GradientMoments,
    centralized_input_noise_power,
    convergence_rate_bound,
    crowd_gradient_moments,
    decentralized_error_inflation,
    minimum_batch_for_overhead,
)
from repro.analysis.scalability import (
    Approach,
    SystemShape,
    device_flops_per_sample,
    downlink_floats_per_sample,
    expected_staleness,
    server_flops_per_sample,
    staleness_for_uniform_delay,
    total_network_floats_per_sample,
    uplink_floats_per_sample,
)

__all__ = [
    "Approach",
    "EnergyProfile",
    "battery_lifetime_hours",
    "compute_energy_per_sample",
    "radio_energy_per_sample",
    "total_energy_per_sample",
    "GradientMoments",
    "SystemShape",
    "centralized_input_noise_power",
    "convergence_rate_bound",
    "crowd_gradient_moments",
    "decentralized_error_inflation",
    "device_flops_per_sample",
    "downlink_floats_per_sample",
    "expected_staleness",
    "minimum_batch_for_overhead",
    "server_flops_per_sample",
    "staleness_for_uniform_delay",
    "total_network_floats_per_sample",
    "uplink_floats_per_sample",
]
