"""Device energy model — the practical face of Section IV-B1/B2.

The deployment section reports "no battery problem was observed" at the
activity task's low sampling rate.  This model makes that claim checkable
for any configuration: it combines the computation-load estimates
(:mod:`repro.analysis.scalability`) with a radio-energy profile to give
joules per sample and an estimated battery lifetime per approach.

The defaults are order-of-magnitude figures for a 2014-era smartphone
(Cortex-A-class core ≈ 1 nJ/flop effective; cellular radio ≈ 100 nJ per
transmitted float64 including protocol overhead, with a wake-up cost that
amortizes over a message).  The *comparisons* between approaches are
robust to the exact constants, which is what the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.scalability import (
    Approach,
    SystemShape,
    device_flops_per_sample,
    downlink_floats_per_sample,
    uplink_floats_per_sample,
)
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class EnergyProfile:
    """Per-operation energy costs of one device class (joules)."""

    joules_per_flop: float = 1e-9
    joules_per_float_tx: float = 1e-7
    joules_per_float_rx: float = 5e-8
    radio_wakeup_joules: float = 5e-3

    def __post_init__(self):
        check_non_negative(self.joules_per_flop, "joules_per_flop")
        check_non_negative(self.joules_per_float_tx, "joules_per_float_tx")
        check_non_negative(self.joules_per_float_rx, "joules_per_float_rx")
        check_non_negative(self.radio_wakeup_joules, "radio_wakeup_joules")


def compute_energy_per_sample(
    shape: SystemShape, approach: Approach, profile: EnergyProfile
) -> float:
    """CPU joules per collected sample."""
    return device_flops_per_sample(shape, approach) * profile.joules_per_flop


def radio_energy_per_sample(
    shape: SystemShape, approach: Approach, profile: EnergyProfile
) -> float:
    """Radio joules per collected sample (tx + rx + amortized wake-ups).

    Crowd-ML wakes the radio ~3 times per minibatch (request, check-out,
    check-in); centralized once per sample; decentralized never.
    """
    tx = uplink_floats_per_sample(shape, approach) * profile.joules_per_float_tx
    rx = downlink_floats_per_sample(shape, approach) * profile.joules_per_float_rx
    if approach is Approach.CENTRALIZED:
        wakeups = profile.radio_wakeup_joules
    elif approach is Approach.CROWD:
        wakeups = 3.0 * profile.radio_wakeup_joules / shape.batch_size
    else:
        wakeups = 0.0
    return tx + rx + wakeups


def total_energy_per_sample(
    shape: SystemShape, approach: Approach, profile: EnergyProfile
) -> float:
    """CPU + radio joules per collected sample."""
    return compute_energy_per_sample(shape, approach, profile) + radio_energy_per_sample(
        shape, approach, profile
    )


def battery_lifetime_hours(
    shape: SystemShape,
    approach: Approach,
    profile: EnergyProfile,
    battery_joules: float = 3.7 * 3600 * 2.0,  # ~2 Ah at 3.7 V
    overhead_watts: float = 0.0,
) -> float:
    """Hours until the learning workload alone drains the battery.

    ``overhead_watts`` adds a constant platform draw (screen off, sensors
    on); with the paper's F_s ≈ 1/352 Hz the workload term is negligible —
    the "no battery problem" observation, quantified.
    """
    check_positive(battery_joules, "battery_joules")
    check_non_negative(overhead_watts, "overhead_watts")
    per_sample = total_energy_per_sample(shape, approach, profile)
    watts = per_sample * shape.sampling_rate + overhead_watts
    if watts <= 0.0:
        return float("inf")
    return battery_joules / watts / 3600.0
