"""Privacy-performance analysis of Section IV-A.

The convergence penalty of SGD is proportional to the second moment of the
gradient estimate, ``G² = sup_t E[‖ĝ(t)‖²]`` (Shamir & Zhang).  Eq. (13)
decomposes Crowd-ML's G² into sampling noise ``E[‖g‖²]/b`` and mechanism
noise ``32·D/(b·ε_g)²``; the centralized approach instead inflates every
*input* with constant-variance noise that no b can shrink.

This module turns those formulas into comparable "privacy overhead"
estimates, plus the decentralized approach's sample-size penalty
(√M / log M per VC theory).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.privacy.sensitivity import (
    gradient_noise_power,
    sampling_noise_power,
)
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class GradientMoments:
    """Eq. (13) decomposition for one (b, ε, D) configuration."""

    sampling_power: float
    mechanism_power: float

    @property
    def total(self) -> float:
        """G² — the convergence-controlling second moment."""
        return self.sampling_power + self.mechanism_power

    @property
    def privacy_overhead(self) -> float:
        """Fraction of G² caused by the privacy mechanism."""
        if self.total == 0.0:
            return 0.0
        return self.mechanism_power / self.total


def crowd_gradient_moments(
    per_sample_power: float,
    dimension: int,
    batch_size: int,
    epsilon: float,
) -> GradientMoments:
    """Eq. (13) for Crowd-ML: both terms shrink with b.

    ``dimension`` is the length of the released gradient (C·D for the
    linear models).
    """
    return GradientMoments(
        sampling_power=sampling_noise_power(per_sample_power, batch_size),
        mechanism_power=gradient_noise_power(dimension, batch_size, epsilon),
    )


def centralized_input_noise_power(dimension: int, epsilon_feature: float) -> float:
    """Per-sample feature-noise power of the centralized approach.

    Eq. (15) adds Laplace(2/ε_x) per coordinate: power = D · 8/ε_x².
    Constant in any minibatch size — the structural disadvantage of
    Section IV-A.
    """
    check_positive_int(dimension, "dimension")
    if math.isinf(epsilon_feature):
        return 0.0
    check_positive(epsilon_feature, "epsilon_feature")
    return dimension * 8.0 / epsilon_feature**2


def minimum_batch_for_overhead(
    per_sample_power: float,
    dimension: int,
    epsilon: float,
    max_overhead: float = 0.5,
) -> int:
    """Smallest b for which the mechanism term is ≤ ``max_overhead`` of G².

    Solves 32·D/(b·ε)² ≤ max_overhead/(1−max_overhead) · E[‖g‖²]/b for b,
    i.e. the minibatch needed to make privacy "cheap" at level ε.

    >>> minimum_batch_for_overhead(1.0, 500, 10.0, 0.5) >= 1
    True
    """
    check_positive(per_sample_power, "per_sample_power")
    check_positive_int(dimension, "dimension")
    if math.isinf(epsilon):
        return 1
    check_positive(epsilon, "epsilon")
    if not (0.0 < max_overhead < 1.0):
        raise ValueError(f"max_overhead must be in (0, 1), got {max_overhead}")
    ratio = max_overhead / (1.0 - max_overhead)
    # mechanism/sampling = 32 D / (b eps^2 E[g^2]) <= ratio.
    b = 32.0 * dimension / (epsilon**2 * per_sample_power * ratio)
    return max(1, math.ceil(b))


def decentralized_error_inflation(num_devices: int) -> float:
    """Estimation-error inflation of the decentralized approach.

    Section IV-A cites VC theory: a 1/M-times smaller sample makes the
    estimation-error upper bound √(M)/log(M)-times larger (for M ≥ 2).
    """
    check_positive_int(num_devices, "num_devices")
    if num_devices < 2:
        return 1.0
    return math.sqrt(num_devices) / math.log(num_devices)


def convergence_rate_bound(
    gradient_second_moment: float,
    domain_radius: float,
    iterations: int,
) -> float:
    """Standard projected-SGD bound  E[l(w̄) − l(w*)] ≤ R·G/√T.

    With the Eq. (13) G² plugged in, this is the quantitative form of the
    paper's "privacy costs performance through G²" argument.
    """
    check_positive(gradient_second_moment, "gradient_second_moment")
    check_positive(domain_radius, "domain_radius")
    check_positive_int(iterations, "iterations")
    return domain_radius * math.sqrt(gradient_second_moment) / math.sqrt(iterations)
