"""Versioned wire schema for the remote Crowd-ML service API.

Every HTTP body exchanged with :class:`~repro.serve.service.CrowdService`
is one **envelope**::

    {"protocol": 2, "kind": "<kind>", "body": {...}}

The ``protocol`` stamp (:data:`PROTOCOL_VERSION`) lets either side reject
a peer speaking a different schema *before* interpreting the body; the
``kind`` tag names the payload so a single endpoint can dispatch and a
mis-routed request fails loudly.  Protocol messages inside bodies reuse
the :mod:`repro.core.codec` payload format — the serve layer adds only
the envelope, the batch shapes, and typed errors; it never invents a
second encoding for gradients or parameters.

Request/response kinds
----------------------

=====================  =============================================
kind                   body
=====================  =============================================
``join_request``       ``{"device_id": int}``
``join_response``      ``{"device_id": int, "token": str,
                       "last_checkin_seq": int?}``
``checkout_request``   codec ``checkout_request`` payload
``checkout_response``  codec ``checkout_response`` payload
``checkin_batch``      ``{"messages": [codec checkin payload, ...]}``
``checkin_result``     ``{"acks": [codec ack | null, ...],
                       "server_iteration": int, "stopped": bool,
                       "stop_reason": str}``
``status``             server counters + optional parameter vector
``error``              ``{"code": str, "message": str}``
=====================  =============================================

Typed errors
------------

Decoding problems raise :class:`WireError` carrying a machine-readable
:class:`ErrorCode` and the HTTP status the service maps it to.  The
service encodes the same triple back as an ``error`` envelope, so remote
clients re-raise the *same* typed error a local caller would have seen
(auth failures, stopped-task rejections) instead of a bare HTTP status.

Fidelity notes
--------------

* Floats survive exactly.  Gradient/parameter vectors travel packed
  (base64 of the little-endian float64 buffer, see
  :func:`repro.core.codec.pack_float_array`) and reconstruct the
  identical doubles; scalar floats serialize via ``repr``, which
  round-trips every finite IEEE-754 double bit for bit.  A sequential
  training run over this wire format therefore matches an in-process
  run float for float.  Decoders also accept plain JSON lists for the
  packed fields (the portable client form).
* :attr:`~repro.core.protocol.CheckinMessage.releases` (device-side
  privacy accounting records) do **not** travel — the codec omits them
  by design, mirroring the paper's deployment where the server only
  sees the sanitized statistics.  A server-side accountant attached to
  a remotely hosted core will therefore record no spend.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.codec import decode_message, encode_message, pack_float_array
from repro.core.protocol import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
)
from repro.core.stopping import StopDecision, StopReason
from repro.utils.exceptions import ProtocolError

#: Version stamp carried by every envelope.  Bump on any incompatible
#: change to the envelope or body schemas.  History: 1 = JSON float
#: lists for all arrays; 2 = gradient/parameter vectors travel packed
#: (base64 float64, ROADMAP's binary wire encoding) — a v1 decoder
#: cannot read v2 bodies, so the stamp moved.
PROTOCOL_VERSION = 2

#: Hard cap on the number of check-ins one batch envelope may carry —
#: a malformed (or hostile) client cannot make the server materialize an
#: unbounded message list before validation rejects it.
MAX_BATCH_MESSAGES = 10_000


class ErrorCode:
    """Machine-readable error codes carried by ``error`` envelopes."""

    VERSION_MISMATCH = "version_mismatch"
    MALFORMED = "malformed"
    AUTH_FAILED = "auth_failed"
    STOPPED = "stopped"
    NOT_FOUND = "not_found"
    METHOD_NOT_ALLOWED = "method_not_allowed"
    PAYLOAD_TOO_LARGE = "payload_too_large"
    INTERNAL = "internal"
    UNREACHABLE = "unreachable"
    #: The request was understood but no healthy worker can serve it
    #: right now (a sharded front end mid-failover).  Mapped to 503, so
    #: retrying clients back off and replay — by which time the
    #: supervisor has usually respawned the shard.
    UNAVAILABLE = "unavailable"


#: HTTP status the service answers with for each error code.
HTTP_STATUS = {
    ErrorCode.VERSION_MISMATCH: 426,
    ErrorCode.MALFORMED: 400,
    ErrorCode.AUTH_FAILED: 401,
    ErrorCode.STOPPED: 409,
    ErrorCode.NOT_FOUND: 404,
    ErrorCode.METHOD_NOT_ALLOWED: 405,
    ErrorCode.PAYLOAD_TOO_LARGE: 413,
    ErrorCode.INTERNAL: 500,
    ErrorCode.UNAVAILABLE: 503,
}


class WireError(ProtocolError):
    """A request or response that violates the wire schema.

    Attributes
    ----------
    code:
        One of the :class:`ErrorCode` constants.
    http_status:
        The HTTP status this error maps to (500 for unknown codes).
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.http_status = HTTP_STATUS.get(code, 500)


@dataclass(frozen=True)
class CheckinBatchResult:
    """Decoded ``checkin_result`` body: per-message acks + server state.

    ``epoch`` is the answering worker's incarnation epoch on a sharded
    tier (``-1`` on an unsharded service, which omits the field) — the
    front end uses it to refuse answers from a fenced zombie.
    """

    acks: Tuple[Optional[CheckinAck], ...]
    server_iteration: int
    stopped: bool
    stop_reason: str
    epoch: int = -1

    @property
    def stop_decision(self) -> StopDecision:
        """The server's stopping state as a local :class:`StopDecision`."""
        return StopDecision(self.stopped, StopReason(self.stop_reason))


@dataclass(frozen=True)
class ServiceStatus:
    """Decoded ``status`` body: one snapshot of the hosted core."""

    protocol_version: int
    iteration: int
    stopped: bool
    stop_reason: str
    checkouts_served: int
    rejected_messages: int
    registered_devices: int
    num_parameters: int
    duplicates_suppressed: int = 0
    parameters: Optional[np.ndarray] = None
    #: Worker incarnation epoch (``-1`` = unsharded service).
    epoch: int = -1
    #: Per-shard detail rows from an aggregating front end (``None`` on
    #: a plain worker status).
    shards: Optional[Tuple[Dict[str, Any], ...]] = None
    #: Seconds since this process started serving (``None`` on statuses
    #: from services predating the field).
    uptime_seconds: Optional[float] = None
    #: Serving process's PID — distinguishes incarnations after failover.
    pid: Optional[int] = None

    @property
    def stop_decision(self) -> StopDecision:
        return StopDecision(self.stopped, StopReason(self.stop_reason))


# --------------------------------------------------------------------- #
# Envelope plumbing                                                     #
# --------------------------------------------------------------------- #


def encode_envelope(kind: str, body: Dict[str, Any]) -> str:
    """Wrap ``body`` in a versioned envelope and serialize to JSON."""
    return json.dumps(
        {"protocol": PROTOCOL_VERSION, "kind": kind, "body": body},
        separators=(",", ":"),
    )


def parse_envelope(
    raw: Union[str, bytes], expected_kind: Optional[str] = None
) -> Tuple[str, Dict[str, Any]]:
    """Parse and validate an envelope; returns ``(kind, body)``.

    Raises :class:`WireError` with :data:`ErrorCode.MALFORMED` for
    anything that is not a well-formed envelope (bad UTF-8, truncated
    JSON, non-dict payloads, missing fields, an unexpected ``kind``) and
    :data:`ErrorCode.VERSION_MISMATCH` for an envelope whose protocol
    stamp differs — or is missing entirely, which is an unknown (ancient)
    protocol rather than a merely malformed body.
    """
    if isinstance(raw, bytes):
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireError(ErrorCode.MALFORMED, f"body is not UTF-8: {error}")
    try:
        envelope = json.loads(raw)
    except json.JSONDecodeError as error:
        raise WireError(ErrorCode.MALFORMED, f"invalid JSON: {error}")
    if not isinstance(envelope, dict):
        raise WireError(
            ErrorCode.MALFORMED,
            f"envelope must be an object, got {type(envelope).__name__}",
        )
    version = envelope.get("protocol")
    # Strict: the stamp must be the exact int (1.0 and True satisfy
    # == but are not valid stamps).  The version check runs before any
    # body interpretation, so a future schema can change everything but
    # this stamp.
    if (type(version) is not int) or version != PROTOCOL_VERSION:
        raise WireError(
            ErrorCode.VERSION_MISMATCH,
            f"protocol version {version!r} != supported {PROTOCOL_VERSION}",
        )
    kind = envelope.get("kind")
    body = envelope.get("body")
    if not isinstance(kind, str) or not isinstance(body, dict):
        raise WireError(ErrorCode.MALFORMED, "envelope needs string 'kind' and object 'body'")
    if expected_kind is not None and kind != expected_kind:
        raise WireError(
            ErrorCode.MALFORMED, f"expected {expected_kind!r} envelope, got {kind!r}"
        )
    return kind, body


def _decode_body_message(body: Dict[str, Any], expected_type: type):
    """Decode a codec payload inside a body, normalizing failures."""
    try:
        message = decode_message(body)
    except WireError:
        raise
    except ProtocolError as error:
        raise WireError(ErrorCode.MALFORMED, str(error))
    if not isinstance(message, expected_type):
        raise WireError(
            ErrorCode.MALFORMED,
            f"expected a {expected_type.__name__} payload, got {type(message).__name__}",
        )
    return message


# --------------------------------------------------------------------- #
# join                                                                  #
# --------------------------------------------------------------------- #


def encode_join_request(device_id: int) -> str:
    return encode_envelope("join_request", {"device_id": int(device_id)})


def decode_join_request(raw: Union[str, bytes]) -> int:
    _, body = parse_envelope(raw, "join_request")
    try:
        return int(body["device_id"])
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(ErrorCode.MALFORMED, f"malformed join_request: {error}")


def encode_join_response(
    device_id: int, token: str, last_checkin_seq: int = -1
) -> str:
    """``last_checkin_seq`` is the highest check-in sequence the server
    has already applied for this device (``-1`` = none).  A retry-capable
    client resumes numbering *after* it, so a device re-joining a server
    that restored from a snapshot doesn't reuse sequence numbers the
    dedupe ledger would silently swallow.  Encoded only when set, so the
    join bytes of seq-unaware deployments are unchanged.
    """
    body: Dict[str, Any] = {"device_id": int(device_id), "token": str(token)}
    if last_checkin_seq >= 0:
        body["last_checkin_seq"] = int(last_checkin_seq)
    return encode_envelope("join_response", body)


def decode_join_response(raw: Union[str, bytes]) -> Tuple[int, str]:
    _, body = parse_envelope(raw, "join_response")
    try:
        return int(body["device_id"]), str(body["token"])
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(ErrorCode.MALFORMED, f"malformed join_response: {error}")


def decode_join_response_seq(raw: Union[str, bytes]) -> Tuple[int, str, int]:
    """Like :func:`decode_join_response`, plus the server's
    ``last_checkin_seq`` for the device (``-1`` when absent)."""
    _, body = parse_envelope(raw, "join_response")
    try:
        return (
            int(body["device_id"]),
            str(body["token"]),
            int(body.get("last_checkin_seq", -1)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(ErrorCode.MALFORMED, f"malformed join_response: {error}")


# --------------------------------------------------------------------- #
# checkout                                                              #
# --------------------------------------------------------------------- #


def encode_checkout_request(request: CheckoutRequest) -> str:
    return encode_envelope("checkout_request", encode_message(request))


def decode_checkout_request(raw: Union[str, bytes]) -> CheckoutRequest:
    _, body = parse_envelope(raw, "checkout_request")
    return _decode_body_message(body, CheckoutRequest)


def encode_checkout_response(response: CheckoutResponse) -> str:
    return encode_envelope("checkout_response", encode_message(response))


def encode_parameters_fragment(parameters: np.ndarray) -> str:
    """The JSON fragment for a parameter vector (a packed string).

    This is the expensive part of a ``checkout_response`` (the encoded
    vector dominates the payload); the service caches it per server
    iteration and splices it into responses via
    :func:`encode_checkout_response_cached`.
    """
    return json.dumps(pack_float_array(parameters), separators=(",", ":"))


def encode_checkout_response_cached(
    device_id: int, parameters_fragment: str, server_iteration: int,
    issued_time: float,
) -> str:
    """Byte-identical to :func:`encode_checkout_response`, without
    re-encoding the parameter vector.

    ``parameters_fragment`` must come from
    :func:`encode_parameters_fragment` for the same parameters the
    response would carry; the per-request fields (``device_id``,
    ``issued_time``) are spliced around it.  The equality with the
    reference encoder is pinned by a test — any change to the envelope
    or body layout must keep the two in lockstep.
    """
    return (
        f'{{"protocol":{PROTOCOL_VERSION},"kind":"checkout_response",'
        f'"body":{{"type":"checkout_response","device_id":{int(device_id)},'
        f'"parameters":{parameters_fragment},'
        f'"server_iteration":{int(server_iteration)},'
        f'"issued_time":{json.dumps(float(issued_time))}}}}}'
    )


def decode_checkout_response(raw: Union[str, bytes]) -> CheckoutResponse:
    _, body = parse_envelope(raw, "checkout_response")
    return _decode_body_message(body, CheckoutResponse)


# --------------------------------------------------------------------- #
# batch check-in                                                        #
# --------------------------------------------------------------------- #


def encode_checkin_batch(messages: Sequence[CheckinMessage]) -> str:
    return encode_envelope(
        "checkin_batch", {"messages": [encode_message(m) for m in messages]}
    )


def decode_checkin_batch(raw: Union[str, bytes]) -> List[CheckinMessage]:
    _, body = parse_envelope(raw, "checkin_batch")
    messages = body.get("messages")
    if not isinstance(messages, list):
        raise WireError(ErrorCode.MALFORMED, "checkin_batch needs a 'messages' list")
    if not messages:
        raise WireError(ErrorCode.MALFORMED, "checkin_batch carries no messages")
    if len(messages) > MAX_BATCH_MESSAGES:
        raise WireError(
            ErrorCode.MALFORMED,
            f"checkin_batch carries {len(messages)} messages "
            f"(limit {MAX_BATCH_MESSAGES})",
        )
    decoded = []
    for entry in messages:
        if not isinstance(entry, dict):
            raise WireError(
                ErrorCode.MALFORMED,
                f"checkin_batch entries must be objects, got {type(entry).__name__}",
            )
        decoded.append(_decode_body_message(entry, CheckinMessage))
    return decoded


def encode_checkin_result(
    acks: Sequence[Optional[CheckinAck]],
    server_iteration: int,
    stop: StopDecision,
    epoch: int = -1,
) -> str:
    body: Dict[str, Any] = {
        "acks": [None if ack is None else encode_message(ack) for ack in acks],
        "server_iteration": int(server_iteration),
        "stopped": bool(stop.stopped),
        "stop_reason": stop.reason.value,
    }
    if epoch >= 0:
        # Only sharded workers stamp an epoch, so unsharded result bytes
        # are unchanged.
        body["epoch"] = int(epoch)
    return encode_envelope("checkin_result", body)


def decode_checkin_result(raw: Union[str, bytes]) -> CheckinBatchResult:
    _, body = parse_envelope(raw, "checkin_result")
    try:
        raw_acks = body["acks"]
        server_iteration = int(body["server_iteration"])
        stopped = bool(body["stopped"])
        stop_reason = str(body["stop_reason"])
        epoch = int(body.get("epoch", -1))
        StopReason(stop_reason)  # must be a known reason
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(ErrorCode.MALFORMED, f"malformed checkin_result: {error}")
    if not isinstance(raw_acks, list):
        raise WireError(ErrorCode.MALFORMED, "checkin_result needs an 'acks' list")
    acks: List[Optional[CheckinAck]] = []
    for entry in raw_acks:
        if entry is None:
            acks.append(None)
        elif isinstance(entry, dict):
            acks.append(_decode_body_message(entry, CheckinAck))
        else:
            raise WireError(
                ErrorCode.MALFORMED,
                f"ack entries must be objects or null, got {type(entry).__name__}",
            )
    return CheckinBatchResult(
        tuple(acks), server_iteration, stopped, stop_reason, epoch
    )


# --------------------------------------------------------------------- #
# status                                                                #
# --------------------------------------------------------------------- #


def encode_status(
    iteration: int,
    stop: StopDecision,
    checkouts_served: int,
    rejected_messages: int,
    registered_devices: int,
    num_parameters: int,
    duplicates_suppressed: int = 0,
    parameters: Optional[np.ndarray] = None,
    epoch: int = -1,
    shards: Optional[Sequence[Dict[str, Any]]] = None,
    uptime_seconds: Optional[float] = None,
    pid: Optional[int] = None,
) -> str:
    body: Dict[str, Any] = {
        "protocol_version": PROTOCOL_VERSION,
        "iteration": int(iteration),
        "stopped": bool(stop.stopped),
        "stop_reason": stop.reason.value,
        "checkouts_served": int(checkouts_served),
        "rejected_messages": int(rejected_messages),
        "registered_devices": int(registered_devices),
        "num_parameters": int(num_parameters),
        "duplicates_suppressed": int(duplicates_suppressed),
    }
    if parameters is not None:
        body["parameters"] = np.asarray(parameters, dtype=np.float64).tolist()
    if epoch >= 0:
        body["epoch"] = int(epoch)
    if shards is not None:
        body["shards"] = [dict(entry) for entry in shards]
    if uptime_seconds is not None:
        body["uptime_seconds"] = float(uptime_seconds)
    if pid is not None:
        body["pid"] = int(pid)
    return encode_envelope("status", body)


def decode_status(raw: Union[str, bytes]) -> ServiceStatus:
    _, body = parse_envelope(raw, "status")
    try:
        parameters = body.get("parameters")
        if parameters is not None:
            parameters = np.asarray(parameters, dtype=np.float64)
            if parameters.ndim != 1:
                raise ValueError(f"parameters must be flat, got shape {parameters.shape}")
        shards = body.get("shards")
        if shards is not None:
            if not isinstance(shards, list) or not all(
                isinstance(entry, dict) for entry in shards
            ):
                raise ValueError("'shards' must be a list of objects")
            shards = tuple(shards)
        status = ServiceStatus(
            protocol_version=int(body["protocol_version"]),
            iteration=int(body["iteration"]),
            stopped=bool(body["stopped"]),
            stop_reason=str(body["stop_reason"]),
            checkouts_served=int(body["checkouts_served"]),
            rejected_messages=int(body["rejected_messages"]),
            registered_devices=int(body["registered_devices"]),
            num_parameters=int(body["num_parameters"]),
            duplicates_suppressed=int(body.get("duplicates_suppressed", 0)),
            parameters=parameters,
            epoch=int(body.get("epoch", -1)),
            shards=shards,
            uptime_seconds=(
                float(body["uptime_seconds"])
                if body.get("uptime_seconds") is not None else None
            ),
            pid=int(body["pid"]) if body.get("pid") is not None else None,
        )
        StopReason(status.stop_reason)
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(ErrorCode.MALFORMED, f"malformed status: {error}")
    return status


# --------------------------------------------------------------------- #
# errors                                                                #
# --------------------------------------------------------------------- #


def encode_error(code: str, message: str) -> str:
    return encode_envelope("error", {"code": str(code), "message": str(message)})


def decode_error(raw: Union[str, bytes]) -> WireError:
    """Decode an ``error`` envelope back into the typed exception."""
    _, body = parse_envelope(raw, "error")
    try:
        return WireError(str(body["code"]), str(body["message"]))
    except (KeyError, TypeError) as error:
        raise WireError(ErrorCode.MALFORMED, f"malformed error envelope: {error}")
