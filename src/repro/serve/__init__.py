"""Remote service API: the versioned wire protocol + HTTP deployment path.

* :mod:`repro.serve.wire` — the versioned envelope schema
  (:data:`~repro.serve.wire.PROTOCOL_VERSION`, typed error payloads).
* :class:`CrowdService` — stdlib HTTP host owning a
  :class:`~repro.core.server_core.ServerCore`
  (``/v1/checkout``, ``/v1/checkins``, ``/v1/status``, ``/v1/join``).
* :class:`ServiceClient` — the JSON-over-HTTP client.
* :class:`HttpTransport` / :class:`RemoteDevice` /
  :class:`RemoteServerCore` — the pieces that let the unchanged device
  runtime (and the whole :class:`~repro.simulation.simulator.CrowdSimulator`
  via ``SimulationConfig(transport="http", server_url=...)``) drive a
  live server.
* ``repro-serve`` (:mod:`repro.serve.cli`) — launch a service from the
  command line.
"""

from repro.serve.client import (
    RemoteAuthenticationError,
    RemoteServiceError,
    ServiceClient,
)
from repro.serve.remote import (
    HttpLink,
    HttpTransport,
    RemoteDevice,
    RemoteServerCore,
)
from repro.serve.service import CrowdService
from repro.serve.wire import (
    PROTOCOL_VERSION,
    CheckinBatchResult,
    ErrorCode,
    ServiceStatus,
    WireError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "CheckinBatchResult",
    "CrowdService",
    "ErrorCode",
    "HttpLink",
    "HttpTransport",
    "RemoteAuthenticationError",
    "RemoteDevice",
    "RemoteServerCore",
    "RemoteServiceError",
    "ServiceClient",
    "ServiceStatus",
    "WireError",
]
