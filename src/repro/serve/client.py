"""HTTP client for a remote :class:`~repro.serve.service.CrowdService`.

:class:`ServiceClient` speaks the :mod:`repro.serve.wire` envelopes over
plain ``urllib`` — no third-party HTTP stack — and converts ``error``
envelopes back into typed exceptions, so callers handle a remote
rejection exactly like a local :class:`~repro.core.server_core.ServerCore`
raise: :class:`RemoteAuthenticationError` for bad tokens,
:class:`RemoteServiceError` with :attr:`~RemoteServiceError.code` for
everything else.
"""

from __future__ import annotations

import urllib.error
import urllib.request
from typing import Optional, Sequence

from repro.core.protocol import CheckinMessage, CheckoutRequest, CheckoutResponse
from repro.serve import wire
from repro.utils.exceptions import AuthenticationError, ProtocolError


class RemoteServiceError(ProtocolError):
    """A request the remote service rejected (or could not be reached).

    Attributes
    ----------
    code:
        The wire :class:`~repro.serve.wire.ErrorCode` the server sent
        (``"unreachable"`` when no HTTP response arrived at all).
    http_status:
        The HTTP status of the response, ``None`` when unreachable.
    """

    def __init__(self, code: str, message: str, http_status: Optional[int] = None):
        super().__init__(message)
        self.code = code
        self.http_status = http_status


class RemoteAuthenticationError(RemoteServiceError, AuthenticationError):
    """The remote service refused the device's credentials."""


def _raise_for_error(payload: bytes, http_status: int) -> None:
    """Convert an ``error`` envelope into the matching typed exception."""
    try:
        error = wire.decode_error(payload)
    except wire.WireError:
        raise RemoteServiceError(
            wire.ErrorCode.MALFORMED,
            f"server answered HTTP {http_status} with an unparseable body",
            http_status,
        )
    if error.code == wire.ErrorCode.AUTH_FAILED:
        raise RemoteAuthenticationError(error.code, str(error), http_status)
    raise RemoteServiceError(error.code, str(error), http_status)


class ServiceClient:
    """Thin, stateless JSON-over-HTTP client for one service endpoint.

    Thread-safe: each call opens its own connection, so any number of
    device threads may share one client.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8900`` (trailing slashes are stripped).
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self._base_url = str(base_url).rstrip("/")
        self._timeout = float(timeout)

    @property
    def base_url(self) -> str:
        return self._base_url

    def _call(self, method: str, path: str, payload: Optional[str] = None) -> bytes:
        request = urllib.request.Request(
            self._base_url + path,
            data=None if payload is None else payload.encode("utf-8"),
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            body = error.read()
            _raise_for_error(body, error.code)
        except urllib.error.URLError as error:
            raise RemoteServiceError(
                wire.ErrorCode.UNREACHABLE,
                f"cannot reach {self._base_url}: {error.reason}",
            )

    # -- service API ---------------------------------------------------- #

    def join(self, device_id: int) -> str:
        """Enroll ``device_id`` with the remote registry; returns its token."""
        raw = self._call("POST", "/v1/join", wire.encode_join_request(device_id))
        _, token = wire.decode_join_response(raw)
        return token

    def checkout(self, request: CheckoutRequest) -> CheckoutResponse:
        """Server Routine 1 over HTTP: fetch the current parameters."""
        raw = self._call("POST", "/v1/checkout", wire.encode_checkout_request(request))
        return wire.decode_checkout_response(raw)

    def checkins(self, messages: Sequence[CheckinMessage]) -> wire.CheckinBatchResult:
        """Upload a batch of check-ins; returns acks + server stop state."""
        raw = self._call("POST", "/v1/checkins", wire.encode_checkin_batch(messages))
        return wire.decode_checkin_result(raw)

    def status(self, include_parameters: bool = False) -> wire.ServiceStatus:
        """Fetch the server's counters (and optionally the full w)."""
        path = "/v1/status"
        if include_parameters:
            path += "?parameters=1"
        return wire.decode_status(self._call("GET", path))
