"""HTTP client for a remote :class:`~repro.serve.service.CrowdService`.

:class:`ServiceClient` speaks the :mod:`repro.serve.wire` envelopes over
pooled stdlib :class:`http.client.HTTPConnection` sockets — no
third-party HTTP stack — and converts ``error`` envelopes back into
typed exceptions, so callers handle a remote rejection exactly like a
local :class:`~repro.core.server_core.ServerCore` raise:
:class:`RemoteAuthenticationError` for bad tokens,
:class:`RemoteServiceError` with :attr:`~RemoteServiceError.code` for
everything else.

Connection discipline
---------------------

Each thread keeps one persistent connection to the endpoint (the server
speaks HTTP/1.1 keep-alive), so a training run costs ~1 TCP handshake
per thread instead of one per request; the
:attr:`~ServiceClient.requests_sent` / :attr:`~ServiceClient.connections_opened`
counters make the reuse ratio observable (the serve-throughput benchmark
records it).  A pooled socket can go stale between requests — the server
restarted, an idle timeout fired, a proxy hung up.  Sending on a stale
*reused* socket fails instantly and deterministically, so the client
transparently reconnects and replays that request once; this is **not**
counted as a retry (no state reached the server).

Retries
-------

With ``retries > 0`` the client additionally retries *transient*
failures — connection refused/reset on a fresh socket, timeouts, and
5xx ``internal`` answers — with exponential backoff plus jitter.  4xx
typed errors (auth, malformed, stopped, version mismatch) never retry:
the server answered, the answer is the answer.  Retrying a request whose
*response* was lost can re-submit an already-applied check-in; that is
safe if and only if messages carry ``checkin_seq`` (the server's dedupe
ledger answers the replay with the original ack) — which is exactly what
:class:`~repro.serve.remote.RemoteDevice` does.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from typing import Any, Dict, Optional, Sequence, Tuple
from urllib.parse import urlparse

from repro.core.protocol import CheckinMessage, CheckoutRequest, CheckoutResponse
from repro.obs.metrics import NULL_REGISTRY
from repro.serve import wire
from repro.utils.exceptions import AuthenticationError, ProtocolError

#: Errors that mean "the pooled socket died between requests" — eligible
#: for the transparent reconnect-and-replay (RemoteDisconnected covers
#: the common FIN-between-requests case; BadStatusLine a half-closed
#: pipe that garbled the status line).
_STALE_SOCKET_ERRORS = (
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
    ConnectionResetError,
    BrokenPipeError,
)


class RemoteServiceError(ProtocolError):
    """A request the remote service rejected (or could not be reached).

    Attributes
    ----------
    code:
        The wire :class:`~repro.serve.wire.ErrorCode` the server sent
        (``"unreachable"`` when no HTTP response arrived at all).
    http_status:
        The HTTP status of the response, ``None`` when unreachable.
    """

    def __init__(self, code: str, message: str, http_status: Optional[int] = None):
        super().__init__(message)
        self.code = code
        self.http_status = http_status


class RemoteAuthenticationError(RemoteServiceError, AuthenticationError):
    """The remote service refused the device's credentials."""


def _raise_for_error(payload: bytes, http_status: int) -> None:
    """Convert an ``error`` envelope into the matching typed exception."""
    try:
        error = wire.decode_error(payload)
    except wire.WireError:
        raise RemoteServiceError(
            wire.ErrorCode.MALFORMED,
            f"server answered HTTP {http_status} with an unparseable body",
            http_status,
        )
    if error.code == wire.ErrorCode.AUTH_FAILED:
        raise RemoteAuthenticationError(error.code, str(error), http_status)
    raise RemoteServiceError(error.code, str(error), http_status)


def _retryable(error: RemoteServiceError) -> bool:
    """Transient: worth another attempt.  Typed 4xx answers are final."""
    if error.code == wire.ErrorCode.UNREACHABLE:
        return True
    return error.http_status is not None and error.http_status >= 500


class ServiceClient:
    """Pooled, retrying JSON-over-HTTP client for one service endpoint.

    Thread-safe: each thread gets its own pooled connection, so any
    number of device threads may share one client.

    Parameters
    ----------
    base_url:
        e.g. ``http://127.0.0.1:8900`` (trailing slashes are stripped).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts for *transient* failures (0 = fail fast, the
        historical behaviour).  See the module docstring for what
        retries — and what makes retried check-ins idempotent.
    backoff / backoff_max:
        First retry sleeps ``backoff`` seconds (plus jitter), doubling
        per attempt up to ``backoff_max``.
    jitter:
        Uniform multiplicative jitter fraction on each sleep (0.25 =
        up to +25%), decorrelating a thundering herd of retriers.
    retry_rng:
        Source of the jitter draws: a :class:`random.Random`, an int
        seed, or ``None`` (default) for an unseeded generator.  Chaos
        campaigns seed it so a test's backoff schedule — and therefore
        its interleaving against injected faults — is deterministic.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 0,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.25,
        retry_rng=None,
        metrics=None,
    ):
        self._base_url = str(base_url).rstrip("/")
        parsed = urlparse(self._base_url)
        if parsed.scheme != "http" or parsed.hostname is None:
            raise ProtocolError(
                f"base_url must be http://host[:port], got {base_url!r}"
            )
        self._host = parsed.hostname
        self._port = parsed.port if parsed.port is not None else 80
        self._timeout = float(timeout)
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._retries = int(retries)
        self._backoff = float(backoff)
        self._backoff_max = float(backoff_max)
        self._jitter = float(jitter)
        if retry_rng is None:
            self._rng = random.Random()
        elif isinstance(retry_rng, random.Random):
            self._rng = retry_rng
        else:
            self._rng = random.Random(retry_rng)
        self._local = threading.local()
        self._counter_lock = threading.Lock()
        self.requests_sent = 0
        self.connections_opened = 0
        self.reconnects = 0
        self.retries_used = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_requests = registry.counter("client_requests_total")
        self._m_connections = registry.counter("client_connections_opened_total")
        self._m_reconnects = registry.counter("client_reconnects_total")
        self._m_retries = registry.counter("client_retries_total")

    @property
    def base_url(self) -> str:
        return self._base_url

    @property
    def retries(self) -> int:
        return self._retries

    @property
    def reuse_ratio(self) -> float:
        """Requests per connection — ≫1 means keep-alive is working."""
        if self.connections_opened == 0:
            return 0.0
        return self.requests_sent / self.connections_opened

    # -- connection pool (one per thread) ------------------------------- #

    def _connection(self) -> Tuple[http.client.HTTPConnection, bool]:
        """This thread's pooled connection; ``(conn, was_reused)``."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, True
        conn = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        self._local.conn = conn
        with self._counter_lock:
            self.connections_opened += 1
        self._m_connections.inc()
        return conn, False

    def _discard(self) -> None:
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        """Close the calling thread's pooled connection (if any)."""
        self._discard()

    # -- request plumbing ----------------------------------------------- #

    def _roundtrip(
        self, conn: http.client.HTTPConnection, method: str, path: str,
        body: Optional[bytes],
    ) -> Tuple[int, bytes]:
        conn.request(
            method, path, body=body, headers={"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        data = response.read()  # must drain fully before the socket is reused
        if response.will_close:
            self._discard()
        with self._counter_lock:
            self.requests_sent += 1
        self._m_requests.inc()
        return response.status, data

    def _call_once(self, method: str, path: str, body: Optional[bytes]) -> bytes:
        conn, reused = self._connection()
        try:
            status, data = self._roundtrip(conn, method, path, body)
        except _STALE_SOCKET_ERRORS as error:
            self._discard()
            if not reused:
                # A fresh socket that dies mid-exchange is a real
                # transient failure, not keep-alive staleness.
                raise RemoteServiceError(
                    wire.ErrorCode.UNREACHABLE,
                    f"connection to {self._base_url} failed: {error}",
                )
            # The pooled socket went stale between requests; nothing
            # reached the server on this attempt.  Replay once on a
            # fresh connection, transparently.
            with self._counter_lock:
                self.reconnects += 1
            self._m_reconnects.inc()
            conn, _ = self._connection()
            try:
                status, data = self._roundtrip(conn, method, path, body)
            except OSError as retry_error:
                self._discard()
                raise RemoteServiceError(
                    wire.ErrorCode.UNREACHABLE,
                    f"cannot reach {self._base_url}: {retry_error}",
                )
        except OSError as error:
            self._discard()
            raise RemoteServiceError(
                wire.ErrorCode.UNREACHABLE,
                f"cannot reach {self._base_url}: {error}",
            )
        if status != 200:
            _raise_for_error(data, status)
        return data

    def _call(
        self,
        method: str,
        path: str,
        payload: Optional[str] = None,
        raw_body: Optional[bytes] = None,
    ) -> bytes:
        body = raw_body if payload is None else payload.encode("utf-8")
        delay = self._backoff
        for attempt in range(self._retries + 1):
            try:
                return self._call_once(method, path, body)
            except RemoteServiceError as error:
                if attempt >= self._retries or not _retryable(error):
                    raise
            with self._counter_lock:
                self.retries_used += 1
            self._m_retries.inc()
            time.sleep(delay * (1.0 + self._jitter * self._rng.random()))
            delay = min(delay * 2.0, self._backoff_max)
        raise AssertionError("unreachable")  # pragma: no cover

    def call_raw(self, method: str, path: str, payload: Optional[bytes] = None) -> bytes:
        """One request with the full pooling/reconnect/retry discipline,
        exchanging **raw bytes** — no envelope encode or decode.

        This is the forwarding seam for proxies that relay
        already-encoded envelopes verbatim (the sharded front end): the
        upstream's 200 body comes back byte-identical, and a non-200
        raises the same typed errors the high-level API raises.
        """
        return self._call(method, path, raw_body=payload)

    # -- service API ---------------------------------------------------- #

    def join(self, device_id: int) -> str:
        """Enroll ``device_id`` with the remote registry; returns its token."""
        token, _ = self.join_info(device_id)
        return token

    def join_info(self, device_id: int) -> Tuple[str, int]:
        """Enroll and return ``(token, last_checkin_seq)``.

        ``last_checkin_seq`` is the highest sequence number the server
        has already applied for this device (``-1`` for a new device) —
        a retrying client resumes its numbering after it, so rejoining
        a resumed server never collides with the dedupe ledger.
        """
        raw = self._call("POST", "/v1/join", wire.encode_join_request(device_id))
        _, token, last_seq = wire.decode_join_response_seq(raw)
        return token, last_seq

    def checkout(self, request: CheckoutRequest) -> CheckoutResponse:
        """Server Routine 1 over HTTP: fetch the current parameters."""
        raw = self._call("POST", "/v1/checkout", wire.encode_checkout_request(request))
        return wire.decode_checkout_response(raw)

    def checkins(self, messages: Sequence[CheckinMessage]) -> wire.CheckinBatchResult:
        """Upload a batch of check-ins; returns acks + server stop state."""
        raw = self._call("POST", "/v1/checkins", wire.encode_checkin_batch(messages))
        return wire.decode_checkin_result(raw)

    def status(self, include_parameters: bool = False) -> wire.ServiceStatus:
        """Fetch the server's counters (and optionally the full w)."""
        path = "/v1/status"
        if include_parameters:
            path += "?parameters=1"
        return wire.decode_status(self._call("GET", path))

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Scrape the remote ``GET /v1/metrics?format=json`` document."""
        raw = self._call("GET", "/v1/metrics?format=json")
        return json.loads(raw.decode("utf-8"))

    def stats_snapshot(self) -> Dict[str, Any]:
        """Uniform plain-dict counter snapshot (:mod:`repro.obs` idiom)."""
        with self._counter_lock:
            requests = self.requests_sent
            connections = self.connections_opened
            reconnects = self.reconnects
            retries = self.retries_used
        return {
            "requests_sent": requests,
            "connections_opened": connections,
            "reconnects": reconnects,
            "retries_used": retries,
            "reuse_ratio": requests / connections if connections else 0.0,
        }
