"""``repro-serve`` — launch a Crowd-ML service from the command line.

Builds a :class:`~repro.core.server_core.ServerCore` (model from the
:data:`~repro.registry.MODELS` registry, the paper's projected SGD with
the c/√t schedule) and hosts it with
:class:`~repro.serve.service.CrowdService`::

    repro-serve --num-features 50 --num-classes 10 \\
                --learning-rate-constant 30 --max-iterations 100000 \\
                --port 8900

    # ephemeral port: parse the announced URL from the first stdout line
    repro-serve --num-features 50 --num-classes 10 --port 0

    # durable: checkpoint every update, resume after any crash
    repro-serve --num-features 50 --num-classes 10 --port 8900 \\
                --state-dir /var/lib/crowdml --checkpoint-every 1

    # sharded: 4 supervised workers behind one front end, per-shard
    # snapshots in shard-<k>/ subdirs, health-checked fenced failover
    repro-serve --num-features 50 --num-classes 10 --port 8900 \\
                --state-dir /var/lib/crowdml --workers 4

The first line printed is always ``serving on http://HOST:PORT`` (flushed
immediately), so scripts and CI can scrape the bound port.

Durability: with ``--state-dir`` the service checkpoints the full core
state write-ahead (see :mod:`repro.persist`); on startup it resumes from
the newest valid snapshot in that directory (torn files are skipped), so
a SIGKILLed server restarted with the same flags picks the run up where
the last durable checkpoint left it.  SIGINT/SIGTERM shut down
gracefully — the listener stops, in-flight requests drain, and a final
snapshot is flushed; exit code 0 means the shutdown was clean, 3 that
the drain timed out or the final flush failed (state is whatever the
last successful checkpoint captured).

The optimizer mirrors :class:`~repro.simulation.simulator.CrowdSimulator`
exactly (same schedule, same projection), so a remote run against a
matching spec reproduces an in-process run bit for bit — see
``examples/remote_round.py`` and ``examples/durable_round.py``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

import repro
from repro.core.auth import DeviceRegistry
from repro.core.config import ServerConfig
from repro.core.server_core import ServerCore
from repro.optim import paper_sgd
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.persist.checkpoint import Checkpointer, CheckpointPolicy, SnapshotStore
from repro.persist.snapshot import restore_core
from repro.registry import MODELS, SHARD_ROUTING
from repro.serve.service import CrowdService
from repro.serve.wire import PROTOCOL_VERSION
from repro.utils.exceptions import ReproError


def _build_obs(args: argparse.Namespace, name: str):
    """Registry + tracer a parsed command line asks for (or ``None``s)."""
    metrics = None
    tracer = None
    if args.metrics or args.trace_dir is not None:
        metrics = MetricsRegistry(name=name)
        tracer = TraceRecorder(trace_dir=args.trace_dir, name=name)
    return metrics, tracer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a Crowd-ML task (ServerCore) over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8900,
                        help="bind port; 0 picks a free ephemeral port")
    parser.add_argument("--model", default="logistic", choices=MODELS.names(),
                        help="model registry name (default logistic)")
    parser.add_argument("--num-features", type=int, required=True,
                        help="model input dimension d")
    parser.add_argument("--num-classes", type=int, required=True,
                        help="number of classes C (1 for regression)")
    parser.add_argument("--learning-rate-constant", type=float, default=1.0,
                        help="c in the eta(t) = c/sqrt(t) schedule")
    parser.add_argument("--projection-radius", type=float, default=100.0,
                        help="radius R of the parameter ball W")
    parser.add_argument("--no-projection", action="store_true",
                        help="serve unconstrained parameters (no ball W)")
    parser.add_argument("--max-iterations", type=int, default=10**9,
                        help="T_max stopping bound (default effectively unbounded)")
    parser.add_argument("--target-error", type=float, default=None,
                        help="rho stopping threshold (default: none)")
    parser.add_argument("--server-key", default="crowd-ml-server-key",
                        help="registry HMAC key minting device tokens")
    parser.add_argument("--register", type=int, default=0, metavar="M",
                        help="pre-register devices 0..M-1 at startup")
    parser.add_argument("--no-join", action="store_true",
                        help="disable POST /v1/join (closed deployment: use "
                             "--register or a provisioned --server-key)")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="durable state directory: checkpoint here and "
                             "resume from the newest valid snapshot at startup")
    parser.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                        help="checkpoint after every N applied updates "
                             "(default 1 = write-ahead each update; 0 "
                             "disables the count trigger)")
    parser.add_argument("--checkpoint-seconds", type=float, default=None,
                        metavar="S",
                        help="additionally checkpoint every S seconds of "
                             "wall clock (default: off)")
    parser.add_argument("--retain", type=int, default=4, metavar="K",
                        help="keep the newest K snapshots (default 4)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="run a sharded tier: N worker processes "
                             "(one ServerCore + shard-<k>/ snapshots each) "
                             "behind a health-checked front end on --port; "
                             "requires --state-dir (default 0 = single "
                             "unsharded service)")
    parser.add_argument("--shard-policy", default="stable_hash",
                        choices=SHARD_ROUTING.names(),
                        help="device->shard routing policy "
                             "(default stable_hash)")
    parser.add_argument("--shard-index", type=int, default=None, metavar="K",
                        help="worker mode: serve shard K of --shard-count "
                             "(normally set by the supervisor, not by hand)")
    parser.add_argument("--shard-count", type=int, default=0, metavar="N",
                        help="worker mode: total shards in the tier")
    parser.add_argument("--shard-epoch", type=int, default=-1, metavar="E",
                        help="worker mode: incarnation epoch this worker "
                             "writes at; refuses to start if the state "
                             "dir's fence has already passed it")
    parser.add_argument("--metrics", action="store_true",
                        help="enable the in-process metrics registry; "
                             "GET /v1/metrics serves Prometheus text "
                             "(?format=json for the raw snapshot).  The "
                             "endpoint always answers; without this flag "
                             "it reports an empty disabled registry")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="spool per-request phase traces as JSONL "
                             "into DIR (implies request tracing; without "
                             "it traces stay in a small in-memory ring "
                             "only when --metrics is set)")
    return parser


def build_service(args: argparse.Namespace) -> CrowdService:
    """Construct the core + service a parsed command line describes.

    With ``--state-dir``, the newest valid snapshot there supersedes the
    command-line task state (parameters, counters, registry — the flags
    still define the model shape, which the snapshot must match); the
    chosen resume point is recorded on the returned service as
    ``service.resumed_from`` (``None`` for a fresh start).
    """
    model = MODELS.create(
        args.model, num_features=args.num_features, num_classes=args.num_classes
    )
    router = None
    if args.shard_index is not None:
        if args.shard_count < 1 or not 0 <= args.shard_index < args.shard_count:
            raise ReproError(
                f"--shard-index {args.shard_index} needs "
                f"0 <= index < --shard-count ({args.shard_count})"
            )
        from repro.shard.routing import ShardRouter

        router = ShardRouter(args.shard_count, policy=args.shard_policy)
    shard_epoch = args.shard_epoch if args.shard_epoch >= 0 else None
    checkpointer = None
    resumed_from = None
    core = None
    if args.state_dir is not None:
        store = SnapshotStore(args.state_dir, retain=args.retain,
                              epoch=shard_epoch)
        if shard_epoch is not None:
            fence = store.fence_epoch()
            if fence > shard_epoch:
                # A newer incarnation owns this shard; starting anyway
                # would only serve answers the front end must refuse.
                raise ReproError(
                    f"state dir {store.state_dir} is fenced at epoch "
                    f"{fence}; this incarnation (epoch {shard_epoch}) is "
                    f"superseded"
                )
        policy = CheckpointPolicy(
            every_n_updates=args.checkpoint_every if args.checkpoint_every > 0
            else None,
            every_seconds=args.checkpoint_seconds,
        )
        checkpointer = Checkpointer(store, policy)
        loaded = store.load_latest()
        if loaded is not None:
            snapshot, resumed_from = loaded
            core = restore_core(snapshot, model)
            checkpointer.note_restored(core)
    if core is None:
        # The one shared construction CrowdSimulator also uses —
        # bit-parity of remote runs against in-process runs rests on it.
        optimizer = paper_sgd(
            model.init_parameters(),
            learning_rate_constant=args.learning_rate_constant,
            projection_radius=None if args.no_projection else args.projection_radius,
        )
        core = ServerCore(
            model,
            optimizer,
            config=ServerConfig(
                max_iterations=args.max_iterations, target_error=args.target_error
            ),
            registry=DeviceRegistry(server_key=args.server_key),
        )
        for device_id in range(args.register):
            # A shard worker enrolls only the devices it owns — tokens
            # are pure HMAC of (server key, device id), so the front
            # end's routing and the worker's registry always agree.
            if router is not None and router.shard_of(device_id) != args.shard_index:
                continue
            core.register_device(device_id)
        if checkpointer is not None:
            # Prime the state dir so even a crash before the first
            # check-in resumes the exact initial task state.
            checkpointer.checkpoint(core)
    worker_name = (
        f"shard-{args.shard_index}" if args.shard_index is not None else "serve"
    )
    metrics, tracer = _build_obs(args, worker_name)
    service = CrowdService(
        core, host=args.host, port=args.port, allow_join=not args.no_join,
        checkpointer=checkpointer, shard_epoch=shard_epoch,
        metrics=metrics, tracer=tracer,
    )
    service.resumed_from = resumed_from
    return service


def _worker_base_args(args: argparse.Namespace) -> List[str]:
    """The ``repro-serve`` flags every shard worker incarnation shares.

    Per-incarnation flags (``--port``, ``--state-dir``, ``--shard-epoch``)
    are supplied by :meth:`~repro.shard.worker.ShardWorker.spawn`;
    ``--shard-index`` is appended per worker by :func:`run_sharded`.
    """
    base = [
        "--host", args.host,
        "--model", args.model,
        "--num-features", str(args.num_features),
        "--num-classes", str(args.num_classes),
        "--learning-rate-constant", str(args.learning_rate_constant),
        "--projection-radius", str(args.projection_radius),
        "--max-iterations", str(args.max_iterations),
        "--server-key", args.server_key,
        "--checkpoint-every", str(args.checkpoint_every),
        "--retain", str(args.retain),
        "--shard-count", str(args.workers),
        "--shard-policy", args.shard_policy,
    ]
    if args.no_projection:
        base.append("--no-projection")
    if args.target_error is not None:
        base += ["--target-error", str(args.target_error)]
    if args.checkpoint_seconds is not None:
        base += ["--checkpoint-seconds", str(args.checkpoint_seconds)]
    if args.register:
        base += ["--register", str(args.register)]
    if args.no_join:
        base.append("--no-join")
    if args.metrics:
        base.append("--metrics")
    if args.trace_dir is not None:
        base += ["--trace-dir", args.trace_dir]
    return base


def run_sharded(args: argparse.Namespace) -> int:
    """``--workers N``: supervise N shard workers behind one front end."""
    from repro.shard import ShardFrontEnd, ShardRouter, ShardSupervisor, ShardWorker

    if args.state_dir is None:
        print("repro-serve: --workers requires --state-dir (the tier is "
              "durable by construction)", file=sys.stderr)
        return 2
    if args.shard_index is not None:
        print("repro-serve: --workers and --shard-index are mutually "
              "exclusive (front end vs worker mode)", file=sys.stderr)
        return 2
    # Children run `python -m repro.serve.cli`; make sure they can import
    # repro even if only the parent had it on its path.
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    base = _worker_base_args(args)
    workers = [
        ShardWorker(
            shard,
            os.path.join(args.state_dir, f"shard-{shard}"),
            base + ["--shard-index", str(shard)],
            env=env,
        )
        for shard in range(args.workers)
    ]
    # One shared registry for the parent process: the supervisor's
    # failover counters and the front end's request metrics land in the
    # same scrape; per-shard worker metrics arrive over HTTP and are
    # merged in by the front end's /v1/metrics aggregation.
    metrics, _ = _build_obs(args, "frontend")
    supervisor = ShardSupervisor(workers, metrics=metrics)
    try:
        supervisor.start()
    except ReproError as error:
        print(f"repro-serve: shard tier failed to start: {error}",
              file=sys.stderr)
        return 2
    router = ShardRouter(args.workers, policy=args.shard_policy)
    frontend = ShardFrontEnd(router, supervisor, host=args.host, port=args.port,
                             metrics=metrics)
    print(f"serving on {frontend.url}", flush=True)
    print(
        f"sharded tier: {args.workers} workers policy={args.shard_policy} "
        f"protocol=v{PROTOCOL_VERSION}",
        flush=True,
    )
    for shard, (url, epoch) in sorted(supervisor.endpoints().items()):
        print(f"shard {shard} at {url} epoch {epoch}", flush=True)

    def _shutdown(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _shutdown)
    dirty = False
    try:
        frontend.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        frontend.stop()
        if not frontend.drain(timeout=10.0):
            print("repro-serve: front-end drain timed out", file=sys.stderr)
            dirty = True
        codes = supervisor.stop(graceful=True)
        for shard, code in sorted(codes.items()):
            if code not in (0, None):
                print(f"repro-serve: shard {shard} worker exited {code}",
                      file=sys.stderr)
                dirty = True
        print(
            f"served {frontend.requests_served} requests "
            f"({frontend.total_errors} errors) across {args.workers} shards",
            file=sys.stderr,
        )
    return 3 if dirty else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers > 0:
        return run_sharded(args)
    try:
        service = build_service(args)
    except ReproError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 2
    # The announcement line is a stable contract: scripts scrape the
    # bound (possibly ephemeral) port from it.
    print(f"serving on {service.url}", flush=True)
    print(
        f"model={args.model} d={args.num_features} C={args.num_classes} "
        f"protocol=v{PROTOCOL_VERSION} join={'off' if args.no_join else 'on'}",
        flush=True,
    )
    if args.shard_index is not None:
        print(
            f"shard {args.shard_index}/{args.shard_count} "
            f"policy={args.shard_policy} epoch={args.shard_epoch}",
            flush=True,
        )
    if service.resumed_from is not None:
        print(
            f"resumed iteration {service.core.iteration} "
            f"from {service.resumed_from}",
            flush=True,
        )

    def _shutdown(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _shutdown)
    dirty = False
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
        # Graceful half of durability: requests already inside a handler
        # get their responses, then the final state is made durable.
        if not service.drain(timeout=10.0):
            print("repro-serve: shutdown drain timed out", file=sys.stderr)
            dirty = True
        try:
            service.checkpoint_now()
        except (ReproError, OSError) as error:
            print(f"repro-serve: final snapshot failed: {error}", file=sys.stderr)
            dirty = True
        print(
            f"served {service.requests_served} requests "
            f"({service.total_errors} errors)",
            file=sys.stderr,
        )
    return 3 if dirty else 0


if __name__ == "__main__":
    sys.exit(main())
