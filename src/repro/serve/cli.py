"""``repro-serve`` — launch a Crowd-ML service from the command line.

Builds a :class:`~repro.core.server_core.ServerCore` (model from the
:data:`~repro.registry.MODELS` registry, the paper's projected SGD with
the c/√t schedule) and hosts it with
:class:`~repro.serve.service.CrowdService`::

    repro-serve --num-features 50 --num-classes 10 \\
                --learning-rate-constant 30 --max-iterations 100000 \\
                --port 8900

    # ephemeral port: parse the announced URL from the first stdout line
    repro-serve --num-features 50 --num-classes 10 --port 0

The first line printed is always ``serving on http://HOST:PORT`` (flushed
immediately), so scripts and CI can scrape the bound port.  Stop with
SIGINT/SIGTERM; the listener shuts down cleanly.

The optimizer mirrors :class:`~repro.simulation.simulator.CrowdSimulator`
exactly (same schedule, same projection), so a remote run against a
matching spec reproduces an in-process run bit for bit — see
``examples/remote_round.py``.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from repro.core.auth import DeviceRegistry
from repro.core.config import ServerConfig
from repro.core.server_core import ServerCore
from repro.optim import paper_sgd
from repro.registry import MODELS
from repro.serve.service import CrowdService
from repro.serve.wire import PROTOCOL_VERSION
from repro.utils.exceptions import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a Crowd-ML task (ServerCore) over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8900,
                        help="bind port; 0 picks a free ephemeral port")
    parser.add_argument("--model", default="logistic", choices=MODELS.names(),
                        help="model registry name (default logistic)")
    parser.add_argument("--num-features", type=int, required=True,
                        help="model input dimension d")
    parser.add_argument("--num-classes", type=int, required=True,
                        help="number of classes C (1 for regression)")
    parser.add_argument("--learning-rate-constant", type=float, default=1.0,
                        help="c in the eta(t) = c/sqrt(t) schedule")
    parser.add_argument("--projection-radius", type=float, default=100.0,
                        help="radius R of the parameter ball W")
    parser.add_argument("--no-projection", action="store_true",
                        help="serve unconstrained parameters (no ball W)")
    parser.add_argument("--max-iterations", type=int, default=10**9,
                        help="T_max stopping bound (default effectively unbounded)")
    parser.add_argument("--target-error", type=float, default=None,
                        help="rho stopping threshold (default: none)")
    parser.add_argument("--server-key", default="crowd-ml-server-key",
                        help="registry HMAC key minting device tokens")
    parser.add_argument("--register", type=int, default=0, metavar="M",
                        help="pre-register devices 0..M-1 at startup")
    parser.add_argument("--no-join", action="store_true",
                        help="disable POST /v1/join (closed deployment: use "
                             "--register or a provisioned --server-key)")
    return parser


def build_service(args: argparse.Namespace) -> CrowdService:
    """Construct the core + service a parsed command line describes."""
    model = MODELS.create(
        args.model, num_features=args.num_features, num_classes=args.num_classes
    )
    # The one shared construction CrowdSimulator also uses — bit-parity
    # of remote runs against in-process runs rests on it.
    optimizer = paper_sgd(
        model.init_parameters(),
        learning_rate_constant=args.learning_rate_constant,
        projection_radius=None if args.no_projection else args.projection_radius,
    )
    core = ServerCore(
        model,
        optimizer,
        config=ServerConfig(
            max_iterations=args.max_iterations, target_error=args.target_error
        ),
        registry=DeviceRegistry(server_key=args.server_key),
    )
    for device_id in range(args.register):
        core.register_device(device_id)
    return CrowdService(
        core, host=args.host, port=args.port, allow_join=not args.no_join
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        service = build_service(args)
    except ReproError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 2
    # The announcement line is a stable contract: scripts scrape the
    # bound (possibly ephemeral) port from it.
    print(f"serving on {service.url}", flush=True)
    print(
        f"model={args.model} d={args.num_features} C={args.num_classes} "
        f"protocol=v{PROTOCOL_VERSION} join={'off' if args.no_join else 'on'}",
        flush=True,
    )

    def _shutdown(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _shutdown)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
        print(
            f"served {service.requests_served} requests "
            f"({service.total_errors} errors)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
