"""``repro-serve`` — launch a Crowd-ML service from the command line.

Builds a :class:`~repro.core.server_core.ServerCore` (model from the
:data:`~repro.registry.MODELS` registry, the paper's projected SGD with
the c/√t schedule) and hosts it with
:class:`~repro.serve.service.CrowdService`::

    repro-serve --num-features 50 --num-classes 10 \\
                --learning-rate-constant 30 --max-iterations 100000 \\
                --port 8900

    # ephemeral port: parse the announced URL from the first stdout line
    repro-serve --num-features 50 --num-classes 10 --port 0

    # durable: checkpoint every update, resume after any crash
    repro-serve --num-features 50 --num-classes 10 --port 8900 \\
                --state-dir /var/lib/crowdml --checkpoint-every 1

The first line printed is always ``serving on http://HOST:PORT`` (flushed
immediately), so scripts and CI can scrape the bound port.

Durability: with ``--state-dir`` the service checkpoints the full core
state write-ahead (see :mod:`repro.persist`); on startup it resumes from
the newest valid snapshot in that directory (torn files are skipped), so
a SIGKILLed server restarted with the same flags picks the run up where
the last durable checkpoint left it.  SIGINT/SIGTERM shut down
gracefully — the listener stops, in-flight requests drain, and a final
snapshot is flushed; exit code 0 means the shutdown was clean, 3 that
the drain timed out or the final flush failed (state is whatever the
last successful checkpoint captured).

The optimizer mirrors :class:`~repro.simulation.simulator.CrowdSimulator`
exactly (same schedule, same projection), so a remote run against a
matching spec reproduces an in-process run bit for bit — see
``examples/remote_round.py`` and ``examples/durable_round.py``.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from repro.core.auth import DeviceRegistry
from repro.core.config import ServerConfig
from repro.core.server_core import ServerCore
from repro.optim import paper_sgd
from repro.persist.checkpoint import Checkpointer, CheckpointPolicy, SnapshotStore
from repro.persist.snapshot import restore_core
from repro.registry import MODELS
from repro.serve.service import CrowdService
from repro.serve.wire import PROTOCOL_VERSION
from repro.utils.exceptions import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a Crowd-ML task (ServerCore) over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8900,
                        help="bind port; 0 picks a free ephemeral port")
    parser.add_argument("--model", default="logistic", choices=MODELS.names(),
                        help="model registry name (default logistic)")
    parser.add_argument("--num-features", type=int, required=True,
                        help="model input dimension d")
    parser.add_argument("--num-classes", type=int, required=True,
                        help="number of classes C (1 for regression)")
    parser.add_argument("--learning-rate-constant", type=float, default=1.0,
                        help="c in the eta(t) = c/sqrt(t) schedule")
    parser.add_argument("--projection-radius", type=float, default=100.0,
                        help="radius R of the parameter ball W")
    parser.add_argument("--no-projection", action="store_true",
                        help="serve unconstrained parameters (no ball W)")
    parser.add_argument("--max-iterations", type=int, default=10**9,
                        help="T_max stopping bound (default effectively unbounded)")
    parser.add_argument("--target-error", type=float, default=None,
                        help="rho stopping threshold (default: none)")
    parser.add_argument("--server-key", default="crowd-ml-server-key",
                        help="registry HMAC key minting device tokens")
    parser.add_argument("--register", type=int, default=0, metavar="M",
                        help="pre-register devices 0..M-1 at startup")
    parser.add_argument("--no-join", action="store_true",
                        help="disable POST /v1/join (closed deployment: use "
                             "--register or a provisioned --server-key)")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="durable state directory: checkpoint here and "
                             "resume from the newest valid snapshot at startup")
    parser.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                        help="checkpoint after every N applied updates "
                             "(default 1 = write-ahead each update; 0 "
                             "disables the count trigger)")
    parser.add_argument("--checkpoint-seconds", type=float, default=None,
                        metavar="S",
                        help="additionally checkpoint every S seconds of "
                             "wall clock (default: off)")
    parser.add_argument("--retain", type=int, default=4, metavar="K",
                        help="keep the newest K snapshots (default 4)")
    return parser


def build_service(args: argparse.Namespace) -> CrowdService:
    """Construct the core + service a parsed command line describes.

    With ``--state-dir``, the newest valid snapshot there supersedes the
    command-line task state (parameters, counters, registry — the flags
    still define the model shape, which the snapshot must match); the
    chosen resume point is recorded on the returned service as
    ``service.resumed_from`` (``None`` for a fresh start).
    """
    model = MODELS.create(
        args.model, num_features=args.num_features, num_classes=args.num_classes
    )
    checkpointer = None
    resumed_from = None
    core = None
    if args.state_dir is not None:
        store = SnapshotStore(args.state_dir, retain=args.retain)
        policy = CheckpointPolicy(
            every_n_updates=args.checkpoint_every if args.checkpoint_every > 0
            else None,
            every_seconds=args.checkpoint_seconds,
        )
        checkpointer = Checkpointer(store, policy)
        loaded = store.load_latest()
        if loaded is not None:
            snapshot, resumed_from = loaded
            core = restore_core(snapshot, model)
            checkpointer.note_restored(core)
    if core is None:
        # The one shared construction CrowdSimulator also uses —
        # bit-parity of remote runs against in-process runs rests on it.
        optimizer = paper_sgd(
            model.init_parameters(),
            learning_rate_constant=args.learning_rate_constant,
            projection_radius=None if args.no_projection else args.projection_radius,
        )
        core = ServerCore(
            model,
            optimizer,
            config=ServerConfig(
                max_iterations=args.max_iterations, target_error=args.target_error
            ),
            registry=DeviceRegistry(server_key=args.server_key),
        )
        for device_id in range(args.register):
            core.register_device(device_id)
        if checkpointer is not None:
            # Prime the state dir so even a crash before the first
            # check-in resumes the exact initial task state.
            checkpointer.checkpoint(core)
    service = CrowdService(
        core, host=args.host, port=args.port, allow_join=not args.no_join,
        checkpointer=checkpointer,
    )
    service.resumed_from = resumed_from
    return service


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        service = build_service(args)
    except ReproError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 2
    # The announcement line is a stable contract: scripts scrape the
    # bound (possibly ephemeral) port from it.
    print(f"serving on {service.url}", flush=True)
    print(
        f"model={args.model} d={args.num_features} C={args.num_classes} "
        f"protocol=v{PROTOCOL_VERSION} join={'off' if args.no_join else 'on'}",
        flush=True,
    )
    if service.resumed_from is not None:
        print(
            f"resumed iteration {service.core.iteration} "
            f"from {service.resumed_from}",
            flush=True,
        )

    def _shutdown(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _shutdown)
    dirty = False
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
        # Graceful half of durability: requests already inside a handler
        # get their responses, then the final state is made durable.
        if not service.drain(timeout=10.0):
            print("repro-serve: shutdown drain timed out", file=sys.stderr)
            dirty = True
        try:
            service.checkpoint_now()
        except (ReproError, OSError) as error:
            print(f"repro-serve: final snapshot failed: {error}", file=sys.stderr)
            dirty = True
        print(
            f"served {service.requests_served} requests "
            f"({service.total_errors} errors)",
            file=sys.stderr,
        )
    return 3 if dirty else 0


if __name__ == "__main__":
    sys.exit(main())
