"""The remote deployment path: drive real devices against a live server.

Three pieces close the loop that :mod:`repro.network.transport` opened:

* :class:`HttpTransport` — a :class:`~repro.network.transport.Transport`
  whose links carry the Fig. 2 legs over HTTP.  Like
  :class:`~repro.network.transport.DirectTransport` it is synchronous
  (a round trip completes inside the send call); unlike it, the server
  side lives in another process.
* :class:`RemoteServerCore` — a client-side proxy exposing the
  :class:`~repro.core.server_core.ServerCore` protocol surface
  (``register_device`` / ``handle_checkout`` / ``handle_checkins`` /
  ``serve_round`` / ``stopped`` …) over a
  :class:`~repro.serve.client.ServiceClient`.  This is what lets
  :class:`~repro.simulation.simulator.CrowdSimulator` run **unchanged**
  against a live service: ``SimulationConfig(transport="http",
  server_url=...)`` swaps the core out from under it and nothing else
  moves.
* :class:`RemoteDevice` — a standalone client runtime pairing one
  :class:`~repro.core.device.Device` (Algorithm 1, untouched) with an
  :class:`HttpLink`; real deployments (and the concurrent smoke tests)
  drive many of these from independent threads.

Parity: a sequential run through this path is **bit-identical** to a
:class:`DirectTransport` run of the same spec — floats round-trip
exactly through the JSON wire format and the server applies the same
updates in the same order.  With concurrent clients the arrival order
at the server is scheduling-dependent, so only aggregate invariants
(iterations == accepted check-ins, zero server errors) are guaranteed;
see README "Serving" for the full caveat list.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.core.device import Device
from repro.core.protocol import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
)
from repro.core.server_core import RoundOutcome
from repro.core.stopping import StopDecision, StopReason
from repro.models.base import Model
from repro.network.transport import DirectLink, Transport
from repro.serve.client import RemoteServiceError, ServiceClient
from repro.serve import wire
from repro.utils.exceptions import ConfigurationError, ProtocolError

if TYPE_CHECKING:
    from repro.gateway.edge import EdgeGateway


class HttpLink(DirectLink):
    """One device's legs over HTTP: per-leg counters + the shared client.

    Counter semantics match :class:`DirectLink` — ``note_*`` records one
    sent message per leg — so communication accounting is identical
    across direct, simulated, and HTTP runs.
    """

    __slots__ = ("client",)

    def __init__(self, client: ServiceClient):
        super().__init__()
        self.client = client


class HttpTransport(Transport):
    """Transport whose round trips travel to a live ``CrowdService``.

    Synchronous like :class:`DirectTransport`: the caller blocks for the
    whole checkout→compute→check-in chain, so nothing interleaves within
    one client's round trip (the server may interleave *other clients'*
    updates — exactly the asynchrony of a real deployment).
    """

    synchronous = True

    def __init__(self, client_or_url):
        if isinstance(client_or_url, ServiceClient):
            self._client = client_or_url
        else:
            self._client = ServiceClient(str(client_or_url))

    @property
    def client(self) -> ServiceClient:
        return self._client

    def connect(
        self, device_id: int, rng: Optional[np.random.Generator] = None
    ) -> HttpLink:
        return HttpLink(self._client)


class RemoteDevice:
    """One live device: Algorithm 1 locally, Fig. 2 legs over HTTP.

    Wraps an ordinary :class:`~repro.core.device.Device` — sampling,
    buffering, gradients, and sanitization are exactly the in-process
    code — and runs its check-out/check-in round against the link's
    remote service.  Thread-safe across *instances* (one per device);
    a single instance must be driven from one thread.

    With a ``gateway`` (an :class:`~repro.gateway.edge.EdgeGateway`
    fronting the same service), the device's traffic routes through the
    edge tier instead: check-outs come from the gateway's shared epoch
    cache and check-ins pool in its aggregator, leaving as batched
    uploads.  Without one, every round falls back to **one message per
    round trip** — a ``POST /v1/checkout`` plus a single-message
    ``POST /v1/checkins`` per check-in, the pre-gateway behaviour (and
    the reason the per-device HTTP path is bounded by request latency;
    see the serve-throughput benchmark).
    """

    def __init__(
        self,
        device: Device,
        link: HttpLink,
        gateway: Optional["EdgeGateway"] = None,
        first_checkin_seq: int = 0,
    ):
        self.device = device
        self.link = link
        self.gateway = gateway
        self._stopped = False
        self._pending_checkin: Optional[CheckinMessage] = None
        self._last_gateway_ack: Optional[CheckinAck] = None
        self.rounds_completed = 0
        if first_checkin_seq < 0:
            raise ConfigurationError(
                f"first_checkin_seq must be >= 0, got {first_checkin_seq}"
            )
        # Every check-in this device produces is stamped with the next
        # sequence number (Remark 1 idempotency): a retry — whether from
        # _pending_checkin custody here or an EdgeGateway's buffer —
        # re-sends the *same* stamped message, so a server that already
        # applied it answers with the original ack instead of a second
        # update.
        self._next_checkin_seq = int(first_checkin_seq)

    @classmethod
    def join(
        cls,
        transport: HttpTransport,
        device_id: int,
        model,
        config,
        rng: np.random.Generator,
        gateway: Optional["EdgeGateway"] = None,
    ) -> "RemoteDevice":
        """Enroll with the remote registry and build the device runtime.

        The join response carries the server's last applied sequence
        number for this device (``-1`` for a fresh enrollment), and
        numbering resumes after it — so re-joining a server that
        restored from a snapshot cannot reuse sequence numbers its
        dedupe ledger would swallow.
        """
        token, last_seq = transport.client.join_info(device_id)
        link = transport.connect(device_id)
        return cls(
            Device(device_id, model, config, token, rng),
            link,
            gateway,
            first_checkin_seq=last_seq + 1,
        )

    @property
    def stopped(self) -> bool:
        """True once the server reported the task has ended."""
        return self._stopped

    def observe(self, features: np.ndarray, label) -> bool:
        """Routine 1; returns True when a check-out is due."""
        return self.device.observe(features, label)

    def run_round(self, now: float = 0.0) -> Optional[CheckinAck]:
        """One full Fig. 2 round trip, if the buffer warrants one.

        Returns the server's ack, or ``None`` when no check-out was due,
        the check-in was rejected, or the task has stopped (check
        :attr:`stopped` to distinguish).  Remark 1 semantics for both
        legs: a lost/rejected check-out leaves the buffer intact for a
        later retry, and a check-in lost to a transient transport
        failure is *kept* (the buffer was already consumed computing
        it) and re-uploaded at the next call before any new round.

        Gateway routing: with a configured :attr:`gateway` the check-in
        joins the gateway's pool instead of being POSTed — the return
        value is this message's ack when the add happened to trigger the
        flush, ``None`` while it is merely buffered (the ack arrives
        through the pool's flush and is counted in
        :attr:`rounds_completed` then).  Retry custody also moves to the
        gateway: a failed batch stays buffered *there*, so
        ``_pending_checkin`` is never set on this path.  Without a
        gateway the fallback is one message per round, as above.
        """
        device = self.device
        gateway = self.gateway
        if not self._stopped and gateway is not None and gateway.stopped:
            self._stopped = True
        if self._stopped:
            return None
        if self._pending_checkin is not None:
            # Re-upload a check-in stranded by an earlier transport
            # failure before generating any new one — server update
            # order per device stays the device's compute order.
            ack = self._upload(self._pending_checkin)
            if self._stopped or not device.wants_checkout:
                return ack
        if not device.wants_checkout:
            return None
        device.mark_checkout_requested()
        request = CheckoutRequest(
            device_id=device.device_id, token=device.token, request_time=float(now)
        )
        self.link.note_request(request.payload_floats)
        try:
            if gateway is not None:
                response = gateway.checkout(request)
            else:
                response = self.link.client.checkout(request)
        except RemoteServiceError as error:
            device.on_checkout_failed()
            if error.code == wire.ErrorCode.STOPPED:
                self._stopped = True
                return None
            raise
        self.link.note_checkout(response.payload_floats)
        result = device.complete_checkout(
            response.parameters, response.server_iteration
        )
        message = replace(result.message, checkin_seq=self._next_checkin_seq)
        self._next_checkin_seq += 1
        self.link.note_checkin(message.payload_floats)
        if gateway is not None:
            self._last_gateway_ack = None
            gateway.add(message, on_ack=self._on_gateway_ack)
            if gateway.stopped:
                self._stopped = True
            return self._last_gateway_ack
        return self._upload(message)

    def _on_gateway_ack(self, ack: Optional[CheckinAck]) -> None:
        """Receive this device's ack when its gateway batch flushes."""
        self._last_gateway_ack = ack
        if ack is not None:
            self.rounds_completed += 1

    def _upload(self, message: CheckinMessage) -> Optional[CheckinAck]:
        """POST one check-in; on transient failure keep it for retry."""
        self._pending_checkin = message
        try:
            outcome = self.link.client.checkins([message])
        except RemoteServiceError as error:
            if error.code == wire.ErrorCode.STOPPED:
                # The task ended while the message was in flight: the
                # contribution is moot, not lost — drop it.
                self._pending_checkin = None
                self._stopped = True
                return None
            # Transient (unreachable, 5xx): the message stays pending
            # and the next run_round retries it.  Re-raise so the
            # caller sees the failure.
            raise
        self._pending_checkin = None
        if outcome.stopped:
            self._stopped = True
        ack = outcome.acks[0]
        if ack is not None:
            self.rounds_completed += 1
        return ack


class RemoteServerCore:
    """Client-side proxy with the :class:`ServerCore` protocol surface.

    Single-message endpoints keep the wire semantics (reject by
    raising); the batch endpoints mirror the core's non-raising ``None``
    slots.  ``iteration``/``stopped`` reflect the latest server state
    this client has *seen* — exact for a single sequential client,
    a lower bound under concurrency.

    With ``tag_checkins=True`` every check-in leaving this proxy is
    stamped with a per-device ``checkin_seq`` (numbering seeded from the
    join response), making re-submissions idempotent on the server.
    This is what makes a *retrying* :class:`ServiceClient` safe: a
    replayed check-in whose original response was lost is answered from
    the server's dedupe ledger instead of applied twice.
    :class:`~repro.simulation.simulator.CrowdSimulator` enables it
    whenever ``http_retries > 0``.  Off by default — untagged messages
    are byte-identical to the pre-sequencing wire format.
    """

    def __init__(self, client: ServiceClient, tag_checkins: bool = False):
        self._client = client
        self._tag_checkins = bool(tag_checkins)
        self._next_seqs: dict = {}
        status = client.status()
        if status.protocol_version != wire.PROTOCOL_VERSION:
            raise ConfigurationError(
                f"server speaks protocol {status.protocol_version}, "
                f"client speaks {wire.PROTOCOL_VERSION}"
            )
        self._num_parameters = status.num_parameters
        self._iteration = status.iteration
        self._stop = status.stop_decision

    @property
    def client(self) -> ServiceClient:
        return self._client

    def validate_model(self, model: Model) -> None:
        """Fail fast when the local task definition cannot match the server's."""
        if model.num_parameters != self._num_parameters:
            raise ConfigurationError(
                f"local model has {model.num_parameters} parameters but the "
                f"server task has {self._num_parameters}; point server_url at "
                f"a service hosting the same model"
            )

    # -- state views (as of the last exchange) -------------------------- #

    @property
    def iteration(self) -> int:
        """t as of the most recent server response seen by this client."""
        return self._iteration

    def stopping_decision(self) -> StopDecision:
        return self._stop

    @property
    def stopped(self) -> bool:
        return self._stop.stopped

    @property
    def parameters(self) -> np.ndarray:
        """Fetch the current w from the server (one status round trip)."""
        status = self._client.status(include_parameters=True)
        self._observe(status.iteration, status.stop_decision)
        return status.parameters

    def refresh(self) -> wire.ServiceStatus:
        """Re-poll ``/v1/status`` (e.g. to see stops caused by other clients)."""
        status = self._client.status()
        self._observe(status.iteration, status.stop_decision)
        return status

    def _observe(self, iteration: int, stop: StopDecision) -> None:
        if iteration > self._iteration:
            self._iteration = iteration
        if stop.stopped:
            self._stop = stop

    # -- protocol endpoints --------------------------------------------- #

    def register_device(self, device_id: int) -> str:
        """Enroll a device through ``POST /v1/join``; returns its token."""
        token, last_seq = self._client.join_info(device_id)
        if self._tag_checkins:
            self._next_seqs[int(device_id)] = last_seq + 1
        return token

    def _tag(self, message: CheckinMessage) -> CheckinMessage:
        """Stamp the next per-device sequence number (when tagging)."""
        if not self._tag_checkins or message.checkin_seq >= 0:
            return message
        device_id = int(message.device_id)
        seq = self._next_seqs.get(device_id, 0)
        self._next_seqs[device_id] = seq + 1
        return replace(message, checkin_seq=seq)

    def handle_checkout(self, request: CheckoutRequest) -> CheckoutResponse:
        response = self._client.checkout(request)
        self._observe(response.server_iteration, StopDecision.running())
        return response

    def handle_checkin(self, message: CheckinMessage) -> CheckinAck:
        """Single-message wire semantics: a rejected check-in raises."""
        result = self._client.checkins([self._tag(message)])
        self._observe(result.server_iteration, result.stop_decision)
        ack = result.acks[0]
        if ack is None:
            raise ProtocolError(
                f"server rejected check-in from device {message.device_id}"
            )
        return ack

    def handle_checkins(
        self, messages: Sequence[CheckinMessage]
    ) -> List[Optional[CheckinAck]]:
        """Batch-native: one ``POST /v1/checkins`` per call.

        Mirrors the core's non-raising contract: a batch the server
        refuses wholesale because the task already stopped (409) comes
        back as all-``None`` acks, exactly like ``ServerCore`` rejecting
        every message of the batch.
        """
        messages = [self._tag(m) for m in messages]
        try:
            result = self._client.checkins(messages)
        except RemoteServiceError as error:
            if error.code == wire.ErrorCode.STOPPED:
                self._stop = StopDecision(True, self._refresh_stop_reason())
                return [None] * len(messages)
            raise
        self._observe(result.server_iteration, result.stop_decision)
        return list(result.acks)

    def serve_round(
        self,
        requests: Sequence[CheckoutRequest],
        complete: Callable[..., Optional[CheckinMessage]],
        complete_args: tuple = (),
    ) -> RoundOutcome:
        """Fig. 2 rounds against the live server, one request at a time.

        Mirrors :meth:`ServerCore.serve_round` slot for slot: rejected
        or stale requests yield ``None`` without raising, each accepted
        check-in is applied before the next checkout is served (by the
        remote core, in request order for this client).
        """
        responses: List[Optional[CheckoutResponse]] = []
        messages: List[Optional[CheckinMessage]] = []
        acks: List[Optional[CheckinAck]] = []
        for request in requests:
            if self._stop.stopped:
                responses.append(None)
                messages.append(None)
                acks.append(None)
                continue
            try:
                response = self._client.checkout(request)
            except RemoteServiceError as error:
                if error.code in (wire.ErrorCode.STOPPED, wire.ErrorCode.AUTH_FAILED):
                    if error.code == wire.ErrorCode.STOPPED:
                        self._stop = StopDecision(True, self._refresh_stop_reason())
                    responses.append(None)
                    messages.append(None)
                    acks.append(None)
                    continue
                raise
            self._observe(response.server_iteration, StopDecision.running())
            responses.append(response)
            message = complete(response, *complete_args)
            if message is not None:
                message = self._tag(message)
            messages.append(message)
            if message is None:
                acks.append(None)
                continue
            try:
                result = self._client.checkins([message])
            except RemoteServiceError as error:
                if error.code == wire.ErrorCode.STOPPED:
                    self._stop = StopDecision(True, self._refresh_stop_reason())
                    acks.append(None)
                    continue
                raise
            self._observe(result.server_iteration, result.stop_decision)
            acks.append(result.acks[0])
        return RoundOutcome(
            tuple(responses), tuple(messages), tuple(acks), self._stop
        )

    def _refresh_stop_reason(self) -> StopReason:
        """One status poll to learn *why* the server stopped."""
        try:
            return StopReason(self._client.status().stop_reason)
        except (RemoteServiceError, ValueError):
            return StopReason.MAX_ITERATIONS
