"""``CrowdService`` — an HTTP host for a :class:`ServerCore`.

The transport-agnostic protocol core was designed so a real network
server could own it unchanged; this module is that server.  It is pure
stdlib (``http.server``), one thread per connection
(:class:`~http.server.ThreadingHTTPServer`), with every core access
serialized through a single lock — :class:`ServerCore` is a plain state
machine, so the lock *is* the arrival order, exactly like the event
queue's delivery order in simulation.

Routes (all bodies are :mod:`repro.serve.wire` envelopes except
``/v1/metrics``, which serves Prometheus text or a plain JSON snapshot
document)::

    POST /v1/join       enroll a device, returns its token (optional)
    POST /v1/checkout   Server Routine 1 — current parameters
    POST /v1/checkins   batch-native check-in → ServerCore.handle_checkins
    GET  /v1/status     counters + stopping state (?parameters=1 for w)
    GET  /v1/metrics    obs registry scrape (?format=json for the doc)

Observability (:mod:`repro.obs`) is opt-in: pass a
:class:`~repro.obs.metrics.MetricsRegistry` and/or
:class:`~repro.obs.trace.TraceRecorder` and every request is counted
and latency-bucketed per endpoint, lock waits are measured, and the
check-in path is phase-traced (decode → lock_wait → core_apply →
checkpoint → encode).  Without them the same call sites hit shared
no-op singletons, and ``GET /v1/metrics`` still answers 200 with an
``enabled: false`` document.

Malformed, version-mismatched, unauthenticated, or stale (task already
stopped) requests are answered with 4xx ``error`` envelopes; no request,
however garbled, takes the server down — an unexpected exception in a
handler is caught, counted, and answered as a 500 ``error`` envelope
while the service keeps serving.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.core.server_core import ServerCore
from repro.obs.metrics import NULL_REGISTRY, render_prometheus
from repro.obs.trace import NULL_TRACER
from repro.serve import wire
from repro.utils.exceptions import AuthenticationError, ProtocolError

#: Requests with a larger declared body are refused outright (413).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Metric label values for the per-endpoint series (fixed set, so label
#: cardinality is bounded whatever clients request).
_ENDPOINTS = ("join", "checkout", "checkins", "status", "metrics", "other")

_ROUTE_ENDPOINTS = {
    "/v1/join": "join",
    "/v1/checkout": "checkout",
    "/v1/checkins": "checkins",
    "/v1/status": "status",
    "/v1/metrics": "metrics",
}


class CrowdService:
    """Host one :class:`ServerCore` behind a loopback/LAN HTTP endpoint.

    Parameters
    ----------
    core:
        The protocol state machine to expose.  The service takes over
        all access to it; concurrent requests are serialized.
    host / port:
        Bind address.  ``port=0`` picks a free ephemeral port — read the
        chosen one from :attr:`port` / :attr:`url`.
    allow_join:
        Whether ``POST /v1/join`` enrolls new devices (the Web-portal
        join flow).  Disable for a closed deployment where the registry
        is provisioned out of band.
    checkpointer:
        Optional :class:`~repro.persist.checkpoint.Checkpointer`.  When
        set, the service checkpoints **write-ahead**: after a check-in
        batch mutates the core, the policy-gated snapshot is written
        while the core lock is still held and *before* the ack leaves
        the server.  With ``every_n_updates=1`` a crash can therefore
        only lose updates whose acks the clients never saw — which they
        retry, and the sequence-number dedupe applies exactly once.
        Registrations checkpoint unconditionally (tokens must never be
        handed out and then forgotten).  A failing snapshot write fails
        the request (500) rather than acknowledging undurable state.
    shard_epoch:
        Incarnation epoch of this worker on a sharded tier (``None`` =
        unsharded).  Stamped into every check-in result and status body
        so a front end can refuse answers from a fenced zombie
        incarnation; the matching fence on the *durable* side is the
        checkpointer's store opened with the same epoch
        (:class:`~repro.persist.checkpoint.SnapshotStore`).

    Examples
    --------
    >>> from repro.core.config import ServerConfig
    >>> from repro.models import MulticlassLogisticRegression
    >>> from repro.core.server_core import ServerCore
    >>> core = ServerCore(MulticlassLogisticRegression(2, 2),
    ...                   config=ServerConfig(max_iterations=10))
    >>> with CrowdService(core) as service:
    ...     service.url.startswith("http://127.0.0.1:")
    True
    """

    def __init__(
        self,
        core: ServerCore,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_join: bool = True,
        checkpointer=None,
        shard_epoch: Optional[int] = None,
        metrics=None,
        tracer=None,
    ):
        self._core = core
        self._allow_join = bool(allow_join)
        self._checkpointer = checkpointer
        self._shard_epoch = -1 if shard_epoch is None else int(shard_epoch)
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._started_at = time.time()
        if metrics is not None:
            # The service owns all access to the core (and drives the
            # checkpointer), so it is the natural place to (re)bind
            # their instruments into the shared registry.
            core.attach_metrics(metrics)
            if checkpointer is not None:
                checkpointer.attach_metrics(metrics)
        registry = self._metrics
        self._m_requests = {
            endpoint: registry.counter("service_requests_total", endpoint=endpoint)
            for endpoint in _ENDPOINTS
        }
        self._m_errors = {
            endpoint: registry.counter("service_errors_total", endpoint=endpoint)
            for endpoint in _ENDPOINTS
        }
        self._m_latency = {
            endpoint: registry.histogram(
                "service_request_seconds", endpoint=endpoint
            )
            for endpoint in _ENDPOINTS
        }
        self._m_lock_wait = registry.histogram("service_lock_wait_seconds")
        self._m_lock_wait_last = registry.gauge("service_last_lock_wait_seconds")
        self._m_inflight = registry.gauge("service_inflight_requests")
        self._lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._idle = threading.Condition(self._counter_lock)
        self._inflight = 0
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self.requests_served = 0
        #: error responses sent, keyed by wire error code.
        self.errors_returned: Dict[str, int] = {}
        # Checkout responses are dominated by the encoded parameter
        # vector, which only changes when an update advances the server
        # iteration: cache the encoded fragment keyed by iteration and
        # splice the per-request fields around it.
        self._encoded_parameters: Optional[tuple] = None
        service = self

        class _Handler(BaseHTTPRequestHandler):
            # Per-request handler bound to the enclosing service.
            protocol_version = "HTTP/1.1"

            def log_message(self, format, *args):  # noqa: A002 - stdlib signature
                pass  # keep request logs out of stdout; counters cover it

            def do_POST(self):
                service._dispatch(self, "POST")

            def do_GET(self):
                service._dispatch(self, "GET")

        self._http = ThreadingHTTPServer((host, int(port)), _Handler)
        self._http.daemon_threads = True

    # -- lifecycle ------------------------------------------------------ #

    @property
    def core(self) -> ServerCore:
        return self._core

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def total_errors(self) -> int:
        return sum(self.errors_returned.values())

    def start(self) -> "CrowdService":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise ProtocolError("service already started")
        self._serving = True
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="crowd-service", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro-serve`` entry point)."""
        try:
            self._serving = True
            self._http.serve_forever()
        finally:
            # An exception (e.g. SIGINT/SIGTERM) may land anywhere in
            # this frame — including *before* the serve loop's own
            # shutdown handshake is armed.  Resetting here means a
            # subsequent stop() never blocks waiting for a loop exit
            # that already happened (or never started).
            self._serving = False

    def stop(self) -> None:
        """Shut the listener down and release the port (idempotent).

        Safe at any lifecycle point: before the serve loop ever ran it
        only closes the bound socket — ``shutdown()`` would block forever
        waiting for a loop exit that can never happen.
        """
        if self._serving:
            self._http.shutdown()
            self._serving = False
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._http.server_close()

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait until no request is mid-dispatch; True if quiesced.

        Called after the listener stopped accepting: connections already
        inside a handler finish and get their responses before the
        process exits (the graceful-shutdown half of the durability
        story — the final snapshot must postdate every acked update).
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def checkpoint_now(self) -> Optional[str]:
        """Force a snapshot of the current core state (shutdown flush)."""
        if self._checkpointer is None:
            return None
        with self._lock:
            return self._checkpointer.checkpoint(self._core)

    def __enter__(self) -> "CrowdService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request plumbing ----------------------------------------------- #

    def _dispatch(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        """Route one request; every exit path sends exactly one response."""
        with self._idle:
            self._inflight += 1
        self._m_inflight.inc()
        try:
            self._dispatch_inner(handler, method)
        finally:
            self._m_inflight.dec()
            with self._idle:
                self._inflight -= 1
                if self._inflight == 0:
                    self._idle.notify_all()

    def _dispatch_inner(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        code = None
        content_type = "application/json"
        parsed = urlparse(handler.path)
        endpoint = _ROUTE_ENDPOINTS.get(parsed.path, "other")
        trace = self._tracer.begin(f"{method} {parsed.path}")
        start = time.perf_counter()
        try:
            result = self._handle(handler, method, parsed, trace)
            status, payload = result[0], result[1]
            if len(result) > 2:
                content_type = result[2]
        except wire.WireError as error:
            code = error.code
            status, payload = error.http_status, wire.encode_error(code, str(error))
        except AuthenticationError as error:
            code = wire.ErrorCode.AUTH_FAILED
            status, payload = 401, wire.encode_error(code, str(error))
        except ProtocolError as error:
            # Stopped-task rejections are raised as typed WireErrors by
            # the route handlers (checked under the core lock), so a
            # plain ProtocolError reaching here is a bad payload.
            code = wire.ErrorCode.MALFORMED
            status, payload = 400, wire.encode_error(code, str(error))
        except Exception as error:  # noqa: BLE001 - the server must survive
            code = wire.ErrorCode.INTERNAL
            status, payload = 500, wire.encode_error(
                code, f"{type(error).__name__}: {error}"
            )
        if code is not None:
            # Error paths may not have consumed the request body; on a
            # kept-alive connection the unread bytes would be parsed as
            # the next request line, so close instead of desyncing.
            handler.close_connection = True
        self._send(handler, status, payload, content_type)
        elapsed = time.perf_counter() - start
        with self._counter_lock:
            self.requests_served += 1
            if code is not None:
                self.errors_returned[code] = self.errors_returned.get(code, 0) + 1
        self._m_requests[endpoint].inc()
        if code is not None:
            self._m_errors[endpoint].inc()
        self._m_latency[endpoint].observe(elapsed)
        trace.finish(status)

    def _handle(self, handler: BaseHTTPRequestHandler, method: str, parsed, trace):
        route = (method, parsed.path)
        if route == ("POST", "/v1/join"):
            return self._handle_join(self._read_body(handler), trace)
        if route == ("POST", "/v1/checkout"):
            return self._handle_checkout(self._read_body(handler), trace)
        if route == ("POST", "/v1/checkins"):
            return self._handle_checkins(self._read_body(handler), trace)
        if route == ("GET", "/v1/status"):
            query = parse_qs(parsed.query)
            include = query.get("parameters", ["0"])[-1] not in ("", "0", "false")
            return self._handle_status(include, trace)
        if route == ("GET", "/v1/metrics"):
            query = parse_qs(parsed.query)
            return self._handle_metrics(query.get("format", ["text"])[-1])
        if parsed.path in _ROUTE_ENDPOINTS:
            raise wire.WireError(
                wire.ErrorCode.METHOD_NOT_ALLOWED,
                f"{method} not supported on {parsed.path}",
            )
        raise wire.WireError(wire.ErrorCode.NOT_FOUND, f"no route {parsed.path}")

    def _read_body(self, handler: BaseHTTPRequestHandler) -> bytes:
        try:
            length = int(handler.headers.get("Content-Length", "0"))
        except ValueError:
            raise wire.WireError(wire.ErrorCode.MALFORMED, "bad Content-Length header")
        if length < 0:
            raise wire.WireError(wire.ErrorCode.MALFORMED, "bad Content-Length header")
        if length > MAX_BODY_BYTES:
            raise wire.WireError(
                wire.ErrorCode.PAYLOAD_TOO_LARGE,
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} byte limit",
            )
        return handler.rfile.read(length)

    def _send(
        self,
        handler: BaseHTTPRequestHandler,
        status: int,
        payload: str,
        content_type: str = "application/json",
    ) -> None:
        body = payload.encode("utf-8")
        try:
            handler.send_response(status)
            handler.send_header("Content-Type", content_type)
            handler.send_header("Content-Length", str(len(body)))
            handler.end_headers()
            handler.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to answer

    # -- route handlers (hold the core lock) ---------------------------- #

    def _acquire_core_lock(self, trace):
        """Acquire the core lock, recording how long the caller waited."""
        wait_start = time.perf_counter()
        self._lock.acquire()
        waited = time.perf_counter() - wait_start
        self._m_lock_wait.observe(waited)
        self._m_lock_wait_last.set(waited)
        trace.add_phase("lock_wait", waited)

    def _handle_join(self, raw: bytes, trace):
        with trace.phase("decode"):
            device_id = wire.decode_join_request(raw)
        if not self._allow_join:
            raise AuthenticationError("join is disabled on this service")
        self._acquire_core_lock(trace)
        try:
            token = self._core.register_device(device_id)
            last_seq = self._core.applied_checkin_seq(device_id)
            if self._checkpointer is not None:
                # Unconditional: a token handed out must survive a crash,
                # or the device's traffic is rejected after resume.
                with trace.phase("checkpoint"):
                    self._checkpointer.checkpoint(self._core)
        finally:
            self._lock.release()
        with trace.phase("encode"):
            payload = wire.encode_join_response(device_id, token, last_seq)
        return 200, payload

    def _handle_checkout(self, raw: bytes, trace):
        with trace.phase("decode"):
            request = wire.decode_checkout_request(raw)
        self._acquire_core_lock(trace)
        try:
            if self._core.stopped:
                raise wire.WireError(
                    wire.ErrorCode.STOPPED,
                    "task has stopped; no further check-outs",
                )
            response = self._core.handle_checkout(request)
            # Parameters only change when an update advances the
            # iteration, so the iteration key makes the cached fragment
            # exactly as fresh as the response it came from.  Encoding
            # happens at most once per iteration (under the lock, so
            # concurrent checkouts of the same iteration share one
            # encode); the splice below is byte-identical to
            # encode_checkout_response (pinned by test).
            cached = self._encoded_parameters
            if cached is None or cached[0] != response.server_iteration:
                cached = (
                    response.server_iteration,
                    wire.encode_parameters_fragment(response.parameters),
                )
                self._encoded_parameters = cached
        finally:
            self._lock.release()
        with trace.phase("encode"):
            payload = wire.encode_checkout_response_cached(
                response.device_id, cached[1], response.server_iteration,
                response.issued_time,
            )
        return 200, payload

    def _handle_checkins(self, raw: bytes, trace):
        with trace.phase("decode"):
            messages = wire.decode_checkin_batch(raw)
        self._acquire_core_lock(trace)
        try:
            if self._core.stopped:
                # Stale traffic: the whole batch arrived after the task
                # ended — single-message wire semantics (409), so remote
                # devices see the same typed rejection as local callers.
                raise wire.WireError(
                    wire.ErrorCode.STOPPED,
                    "task has stopped; no further check-ins",
                )
            with trace.phase("core_apply"):
                acks = self._core.handle_checkins(messages)
                iteration = self._core.iteration
                stop = self._core.stopping_decision()
            if self._checkpointer is not None:
                # Write-ahead: durable before the ack leaves the server.
                with trace.phase("checkpoint"):
                    self._checkpointer.after_update(self._core)
        finally:
            self._lock.release()
        with trace.phase("encode"):
            payload = wire.encode_checkin_result(
                acks, iteration, stop, epoch=self._shard_epoch
            )
        return 200, payload

    def _handle_status(self, include_parameters: bool, trace):
        self._acquire_core_lock(trace)
        try:
            payload = wire.encode_status(
                iteration=self._core.iteration,
                stop=self._core.stopping_decision(),
                checkouts_served=self._core.checkouts_served,
                rejected_messages=self._core.rejected_messages,
                registered_devices=self._core.registry.num_registered,
                num_parameters=self._core.model.num_parameters,
                duplicates_suppressed=self._core.duplicates_suppressed,
                parameters=self._core.parameters if include_parameters else None,
                epoch=self._shard_epoch,
                uptime_seconds=time.time() - self._started_at,
                pid=os.getpid(),
            )
        finally:
            self._lock.release()
        return 200, payload

    def _handle_metrics(self, fmt: str):
        snapshot = self.metrics_snapshot()
        if fmt == "json":
            return 200, json.dumps(snapshot, sort_keys=True), "application/json"
        return 200, render_prometheus(snapshot), "text/plain; version=0.0.4"

    # -- observability views -------------------------------------------- #

    def metrics_snapshot(self) -> Dict[str, object]:
        """The registry's snapshot document, with scrape-time gauges.

        Core counters are mirrored into gauges at scrape time (plain-int
        reads, no lock needed for monitoring) so a scrape sees protocol
        state without a separate ``/v1/status`` round trip.
        """
        registry = self._metrics
        registry.gauge("core_iteration").set(self._core.iteration)
        registry.gauge("core_checkouts_served").set(self._core.checkouts_served)
        registry.gauge("core_rejected_messages").set(self._core.rejected_messages)
        registry.gauge("core_duplicates_suppressed").set(
            self._core.duplicates_suppressed
        )
        registry.gauge("service_uptime_seconds").set(
            time.time() - self._started_at
        )
        return registry.snapshot()

    def stats_snapshot(self) -> Dict[str, object]:
        """Uniform plain-dict counter snapshot (:mod:`repro.obs` idiom)."""
        with self._counter_lock:
            return {
                "requests_served": self.requests_served,
                "errors_returned": dict(self.errors_returned),
                "total_errors": sum(self.errors_returned.values()),
            }
